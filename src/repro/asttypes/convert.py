"""Converting C declaration syntax into meta-language types.

The macro language reuses C declaration syntax for meta-variables:
``@id xs[]`` declares a list of identifiers, a struct of AST members
declares a tuple, ``int i`` declares a C scalar, ``char *s`` /
``char s[N]`` declare strings.  This module turns parsed declarators
into ``(name, AstType)`` bindings, enforcing the paper's restrictions
("pointer and function declarators are not meaningful" on AST types).
"""

from __future__ import annotations

from repro.asttypes.types import (
    CHAR,
    FLOAT,
    INT,
    STRING,
    VOID,
    AstType,
    FuncType,
    ListType,
    TupleType,
    prim,
)
from repro.cast import ctypes, decls
from repro.cast.base import Node
from repro.errors import MacroTypeError


def base_type_of_specs(specs: decls.DeclSpecs) -> AstType:
    """The meta-language type denoted by declaration specifiers."""
    ts = specs.type_spec
    if ts is None:
        return INT  # implicit int, as in K&R C
    if isinstance(ts, ctypes.AstTypeSpec):
        return prim(ts.name)
    if isinstance(ts, ctypes.PrimitiveType):
        names = set(ts.names)
        if "void" in names:
            return VOID
        if "char" in names:
            return CHAR
        if names & {"float", "double"}:
            return FLOAT
        return INT
    if isinstance(ts, ctypes.StructOrUnionType):
        if ts.members is None:
            raise MacroTypeError(
                "struct tags are not meaningful meta-types; "
                "declare the tuple's members inline",
                ts.loc,
            )
        fields: list[tuple[str, AstType]] = []
        for member in ts.members:
            if not isinstance(member, decls.Declaration):
                raise MacroTypeError(
                    "tuple members must be plain declarations", ts.loc
                )
            for name, ftype in bindings_from_declaration(member):
                fields.append((name, ftype))
        return TupleType(tuple(fields))
    raise MacroTypeError(
        f"type specifier {type(ts).__name__} is not a meta-language type",
        ts.loc,
    )


def binding_from_declarator(
    base: AstType, declarator: Node
) -> tuple[str, AstType]:
    """Apply declarator structure to ``base``, yielding (name, type)."""
    if isinstance(declarator, decls.NameDeclarator):
        return declarator.name, base
    if isinstance(declarator, decls.ArrayDeclarator):
        name, inner = binding_from_declarator(base, declarator.inner)
        if inner.is_ast():
            return name, ListType(inner)
        if inner == CHAR:
            return name, STRING
        raise MacroTypeError(
            f"arrays of {inner} are not meaningful meta-types",
            declarator.loc,
        )
    if isinstance(declarator, decls.PointerDeclarator):
        name, inner = binding_from_declarator(base, declarator.inner)
        if inner.is_ast():
            raise MacroTypeError(
                "pointer declarators are not meaningful on AST types",
                declarator.loc,
            )
        if inner == CHAR:
            return name, STRING
        return name, inner
    if isinstance(declarator, decls.FuncDeclarator):
        name, result = binding_from_declarator(base, declarator.inner)
        params: list[AstType] = []
        for p in declarator.params:
            if isinstance(p, decls.ParamDecl):
                pbase = base_type_of_specs(p.specs)
                _, ptype = binding_from_declarator(pbase, p.declarator)
                params.append(ptype)
        return name, FuncType(tuple(params), result, declarator.variadic)
    raise MacroTypeError(
        f"declarator form {type(declarator).__name__} is not meaningful "
        "in meta-declarations",
        declarator.loc,
    )


def bindings_from_declaration(
    decl: decls.Declaration,
) -> list[tuple[str, AstType]]:
    """All ``(name, type)`` bindings introduced by a meta-declaration."""
    base = base_type_of_specs(decl.specs)
    out: list[tuple[str, AstType]] = []
    for item in decl.init_declarators:
        if isinstance(item, decls.InitDeclarator):
            out.append(binding_from_declarator(base, item.declarator))
        else:
            raise MacroTypeError(
                "meta-declarations cannot contain placeholders", decl.loc
            )
    return out


def is_meta_declaration(decl: decls.Declaration) -> bool:
    """True when a declaration's specifiers involve AST types.

    Function definitions / declarations whose return or parameter
    types mention ``@`` specifiers belong to the meta-program even
    without an explicit ``metadcl`` (the paper's ``@stmt
    paint_function(@stmt s)`` example carries no prefix).
    """
    from repro.cast.base import walk

    return any(isinstance(n, ctypes.AstTypeSpec) for n in walk(decl))
