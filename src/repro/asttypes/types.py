"""The AST type language of the macro system (paper section 2).

Primitive AST types are ``id``, ``exp``, ``stmt``, ``decl``, ``num``
and ``type_spec`` (extended with the declarator-level types
``declarator`` and ``init_declarator`` that Figure 2 exercises).
Combining types are **lists** (declared with C array syntax:
``@id xs[]``) and **tuples** (declared with C struct syntax).

The meta-language also manipulates ordinary C scalar values (loop
counters, strings for ``pstring``/``strcmp``), represented by
:class:`CType`, and functions (meta-functions, anonymous functions,
builtins), represented by :class:`FuncType`.

Subtyping is deliberately shallow — ``id`` and ``num`` are usable
where ``exp`` is expected (an identifier *is* an expression), lists
are covariant, everything else is by-name — because the paper's
parser disambiguates templates by the *exact* placeholder type
(Figure 2 distinguishes ``declarator`` from ``init_declarator`` from
``id``).
"""

from __future__ import annotations

from dataclasses import dataclass

#: The AST-specifier names accepted after ``@`` and in patterns.
PRIMITIVE_NAMES = (
    "id", "exp", "stmt", "decl", "num", "type_spec",
    "declarator", "init_declarator",
)


class AstType:
    """Base class of all meta-language types."""

    def is_ast(self) -> bool:
        """True for AST-valued types (primitives, lists, tuples)."""
        return True

    def is_usable_as(self, other: "AstType") -> bool:
        """Assignment compatibility: can a value of self stand for other?"""
        if other is ANY or self is ANY:
            return True
        return self == other


@dataclass(frozen=True, slots=True)
class PrimType(AstType):
    """One of the primitive AST types."""

    name: str

    def __post_init__(self) -> None:
        if self.name not in PRIMITIVE_NAMES:
            raise ValueError(f"unknown AST specifier {self.name!r}")

    def is_usable_as(self, other: AstType) -> bool:
        if AstType.is_usable_as(self, other):
            return True
        # An identifier or a number literal is an expression.
        if other == EXP and self.name in ("id", "num"):
            return True
        return False

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class ListType(AstType):
    """A homogeneous list of AST values (``@id xs[]``)."""

    element: AstType

    def is_usable_as(self, other: AstType) -> bool:
        if other is ANY or self is ANY:
            return True
        if isinstance(other, ListType):
            return self.element.is_usable_as(other.element)
        return False

    def __str__(self) -> str:
        return f"{self.element}[]"


@dataclass(frozen=True, slots=True)
class TupleType(AstType):
    """A named-field tuple of AST values (declared with struct syntax)."""

    fields: tuple[tuple[str, AstType], ...]

    def field_type(self, name: str) -> AstType | None:
        for fname, ftype in self.fields:
            if fname == name:
                return ftype
        return None

    def is_usable_as(self, other: AstType) -> bool:
        if other is ANY or self is ANY:
            return True
        if not isinstance(other, TupleType):
            return False
        if len(self.fields) != len(other.fields):
            return False
        return all(
            a[0] == b[0] and a[1].is_usable_as(b[1])
            for a, b in zip(self.fields, other.fields)
        )

    def __str__(self) -> str:
        inner = "; ".join(f"{t} {n}" for n, t in self.fields)
        return f"{{{inner}}}"


@dataclass(frozen=True, slots=True)
class CType(AstType):
    """An ordinary C scalar type usable in meta-code (``int``, strings…).

    The meta-interpreter supports the scalar subset macros need:
    ``int``, ``float``, ``char``, ``string`` and ``void``.
    """

    name: str

    def is_ast(self) -> bool:
        return False

    def is_usable_as(self, other: AstType) -> bool:
        if AstType.is_usable_as(self, other):
            return True
        # char is an int in C.
        if isinstance(other, CType):
            if self.name == "char" and other.name == "int":
                return True
            if self.name == "int" and other.name == "char":
                return True
        return False

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class FuncType(AstType):
    """A meta-function / anonymous-function / builtin type."""

    params: tuple[AstType, ...]
    result: AstType
    variadic: bool = False

    def is_ast(self) -> bool:
        return False

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.params)
        if self.variadic:
            params += ", ..."
        return f"({params}) -> {self.result}"


class _AnyType(AstType):
    """Wildcard used by polymorphic builtins; compatible with anything."""

    def is_ast(self) -> bool:
        return False

    def __repr__(self) -> str:
        return "ANY"

    def __str__(self) -> str:
        return "any"


#: Singleton wildcard type.
ANY = _AnyType()

# Convenient singletons for the primitives.
ID = PrimType("id")
EXP = PrimType("exp")
STMT = PrimType("stmt")
DECL = PrimType("decl")
NUM = PrimType("num")
TYPE_SPEC = PrimType("type_spec")
DECLARATOR = PrimType("declarator")
INIT_DECLARATOR = PrimType("init_declarator")

INT = CType("int")
FLOAT = CType("float")
CHAR = CType("char")
STRING = CType("string")
VOID = CType("void")

_PRIM_SINGLETONS = {
    "id": ID, "exp": EXP, "stmt": STMT, "decl": DECL, "num": NUM,
    "type_spec": TYPE_SPEC, "declarator": DECLARATOR,
    "init_declarator": INIT_DECLARATOR,
}


def prim(name: str) -> PrimType:
    """Look up the singleton for a primitive AST-specifier name."""
    try:
        return _PRIM_SINGLETONS[name]
    except KeyError:
        raise ValueError(f"unknown AST specifier {name!r}") from None


def list_of(element: AstType) -> ListType:
    """The list type over ``element``."""
    return ListType(element)
