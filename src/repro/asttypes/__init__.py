"""The AST type language and the definition-time meta type checker."""

from repro.asttypes.env import TypeEnv
from repro.asttypes.types import (
    ANY,
    DECL,
    DECLARATOR,
    EXP,
    ID,
    INIT_DECLARATOR,
    INT,
    NUM,
    STMT,
    STRING,
    TYPE_SPEC,
    VOID,
    AstType,
    CType,
    FuncType,
    ListType,
    PrimType,
    TupleType,
    list_of,
    prim,
)

__all__ = [
    "ANY", "AstType", "CType", "DECL", "DECLARATOR", "EXP", "FuncType",
    "ID", "INIT_DECLARATOR", "INT", "ListType", "NUM", "PrimType", "STMT",
    "STRING", "TYPE_SPEC", "TupleType", "TypeEnv", "VOID", "list_of", "prim",
]
