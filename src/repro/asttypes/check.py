"""Definition-time type analysis of meta-code.

This module is the "full type checking during macro processing" of the
paper: it infers the AST type of every meta-expression (most
importantly of placeholder expressions, *while the parser is running*)
and checks whole macro bodies when a ``syntax`` definition is parsed.
A macro that could build a syntactically invalid fragment is rejected
here — at definition time — which is the paper's central guarantee.
"""

from __future__ import annotations

from typing import Callable

from repro.asttypes.env import TypeEnv
from repro.asttypes.types import (
    ANY,
    DECL,
    DECLARATOR,
    EXP,
    ID,
    INIT_DECLARATOR,
    INT,
    NUM,
    STMT,
    STRING,
    TYPE_SPEC,
    VOID,
    AstType,
    CType,
    FuncType,
    ListType,
    TupleType,
    list_of,
)
from repro.cast import decls, nodes, stmts
from repro.cast.base import Node
from repro.errors import MacroTypeError

# ---------------------------------------------------------------------------
# Predefined AST component accessors (``stmt->declarations`` etc.)
# ---------------------------------------------------------------------------

COMPONENT_TYPES: dict[tuple[str, str], AstType] = {
    ("stmt", "declarations"): list_of(DECL),
    ("stmt", "statements"): list_of(STMT),
    ("stmt", "expression"): EXP,
    ("stmt", "cond"): EXP,
    ("stmt", "body"): STMT,
    ("stmt", "then"): STMT,
    ("stmt", "otherwise"): STMT,
    ("decl", "type_spec"): TYPE_SPEC,
    ("decl", "declarators"): list_of(INIT_DECLARATOR),
    ("decl", "name"): ID,
    ("exp", "left"): EXP,
    ("exp", "right"): EXP,
    ("exp", "operand"): EXP,
    ("exp", "func"): EXP,
    ("exp", "args"): list_of(EXP),
    ("exp", "op"): STRING,
    ("exp", "name"): ID,
    ("init_declarator", "declarator"): DECLARATOR,
    ("init_declarator", "init"): EXP,
    ("declarator", "name"): ID,
    ("id", "name"): STRING,
}

# ---------------------------------------------------------------------------
# Builtin function signatures
# ---------------------------------------------------------------------------

_BuiltinSig = Callable[[list[AstType], Node], AstType]


def _fixed(params: list[AstType], result: AstType) -> _BuiltinSig:
    def sig(arg_types: list[AstType], at: Node) -> AstType:
        if len(arg_types) != len(params):
            raise MacroTypeError(
                f"expected {len(params)} argument(s), got {len(arg_types)}",
                at.loc,
            )
        for i, (got, want) in enumerate(zip(arg_types, params)):
            if not got.is_usable_as(want):
                raise MacroTypeError(
                    f"argument {i + 1} has type {got}, expected {want}",
                    at.loc,
                )
        return result

    return sig


def _sig_gensym(arg_types: list[AstType], at: Node) -> AstType:
    if len(arg_types) > 1:
        raise MacroTypeError("gensym takes at most one argument", at.loc)
    if arg_types and not arg_types[0].is_usable_as(STRING):
        if not arg_types[0].is_usable_as(ID):
            raise MacroTypeError(
                "gensym prefix must be a string or identifier", at.loc
            )
    return ID


def _sig_length(arg_types: list[AstType], at: Node) -> AstType:
    _expect_list(arg_types, 1, at, "length")
    return INT


def _sig_list(arg_types: list[AstType], at: Node) -> AstType:
    if not arg_types:
        return ListType(ANY)
    element = arg_types[0]
    # Flatten: list() accepts both elements and lists of elements.
    if isinstance(element, ListType):
        element = element.element
    for t in arg_types[1:]:
        t_elem = t.element if isinstance(t, ListType) else t
        if not t_elem.is_usable_as(element) and not element.is_usable_as(t_elem):
            raise MacroTypeError(
                f"list elements disagree: {element} vs {t_elem}", at.loc
            )
    return ListType(element)


def _sig_map(arg_types: list[AstType], at: Node) -> AstType:
    if len(arg_types) != 2:
        raise MacroTypeError("map takes a function and a list", at.loc)
    fn, seq = arg_types
    if not isinstance(seq, ListType):
        raise MacroTypeError(f"map's second argument must be a list, got {seq}", at.loc)
    if isinstance(fn, FuncType):
        if len(fn.params) != 1:
            raise MacroTypeError("map's function must take one argument", at.loc)
        if not seq.element.is_usable_as(fn.params[0]):
            raise MacroTypeError(
                f"map's function takes {fn.params[0]}, list holds {seq.element}",
                at.loc,
            )
        return ListType(fn.result)
    if fn is ANY:
        return ListType(ANY)
    raise MacroTypeError(f"map's first argument must be a function, got {fn}", at.loc)


def _sig_append(arg_types: list[AstType], at: Node) -> AstType:
    if not arg_types:
        return ListType(ANY)
    result: AstType | None = None
    for t in arg_types:
        if not isinstance(t, ListType):
            raise MacroTypeError(f"append expects lists, got {t}", at.loc)
        if result is None or result.element is ANY:
            result = t
    assert result is not None
    return result


def _sig_cons(arg_types: list[AstType], at: Node) -> AstType:
    if len(arg_types) != 2:
        raise MacroTypeError("cons takes an element and a list", at.loc)
    head, tail = arg_types
    if not isinstance(tail, ListType):
        raise MacroTypeError(f"cons's second argument must be a list, got {tail}", at.loc)
    if tail.element is not ANY and not head.is_usable_as(tail.element):
        raise MacroTypeError(
            f"cons element {head} does not fit list of {tail.element}", at.loc
        )
    if tail.element is ANY:
        return ListType(head)
    return tail


def _sig_first(arg_types: list[AstType], at: Node) -> AstType:
    seq = _expect_list(arg_types, 1, at, "first")
    return seq.element


def _sig_rest(arg_types: list[AstType], at: Node) -> AstType:
    return _expect_list(arg_types, 1, at, "rest")


def _sig_nth(arg_types: list[AstType], at: Node) -> AstType:
    if len(arg_types) != 2 or not arg_types[1].is_usable_as(INT):
        raise MacroTypeError("nth takes a list and an int", at.loc)
    seq = arg_types[0]
    if not isinstance(seq, ListType):
        raise MacroTypeError(f"nth's first argument must be a list, got {seq}", at.loc)
    return seq.element


def _sig_reverse(arg_types: list[AstType], at: Node) -> AstType:
    return _expect_list(arg_types, 1, at, "reverse")


def _sig_symbolconc(arg_types: list[AstType], at: Node) -> AstType:
    if not arg_types:
        raise MacroTypeError("symbolconc needs at least one argument", at.loc)
    for t in arg_types:
        if not (t.is_usable_as(STRING) or t.is_usable_as(ID)):
            raise MacroTypeError(
                f"symbolconc parts must be strings or identifiers, got {t}",
                at.loc,
            )
    return ID


def _sig_error(arg_types: list[AstType], at: Node) -> AstType:
    if not arg_types or not arg_types[0].is_usable_as(STRING):
        raise MacroTypeError("error's first argument must be a string", at.loc)
    return VOID


def _expect_list(
    arg_types: list[AstType], count: int, at: Node, name: str
) -> ListType:
    if len(arg_types) != count or not isinstance(arg_types[0], ListType):
        raise MacroTypeError(f"{name} expects a list argument", at.loc)
    return arg_types[0]


#: name -> signature checker.  The meta-interpreter implements the same
#: set in :mod:`repro.meta.builtins`.
BUILTIN_SIGNATURES: dict[str, _BuiltinSig] = {
    "gensym": _sig_gensym,
    "concat_ids": _fixed([ID, ID], ID),
    "symbolconc": _sig_symbolconc,
    "length": _sig_length,
    "pstring": _fixed([ID], STRING),
    "id_name": _fixed([ID], STRING),
    "make_id": _fixed([STRING], ID),
    "make_num": _fixed([INT], NUM),
    "num_value": _fixed([NUM], INT),
    "list": _sig_list,
    "map": _sig_map,
    "append": _sig_append,
    "cons": _sig_cons,
    "first": _sig_first,
    "rest": _sig_rest,
    "nth": _sig_nth,
    "reverse": _sig_reverse,
    "is_empty": _sig_length,
    "simple_expression": _fixed([EXP], INT),
    "present": _fixed([ANY], INT),
    "type_of": _fixed([ID], TYPE_SPEC),
    "has_type": _fixed([ID], INT),
    "eval_const": _fixed([EXP], INT),
    "same_id": _fixed([ID, ID], INT),
    "strcmp": _fixed([STRING, STRING], INT),
    "strlen": _fixed([STRING], INT),
    "ast_to_string": _fixed([ANY], STRING),
    "error": _sig_error,
    "warning": _sig_error,
}


def is_builtin(name: str) -> bool:
    """True when ``name`` is a builtin meta-function."""
    return name in BUILTIN_SIGNATURES


# ---------------------------------------------------------------------------
# Expression type inference
# ---------------------------------------------------------------------------


class MetaTypeInferencer:
    """Bottom-up type inference over meta-expressions.

    The parser owns one of these per compilation; ``env`` is rebound as
    scopes open and close.  ``infer`` raises
    :class:`~repro.errors.MacroTypeError` on any ill-typed expression —
    this is what makes parsing reject bad macros at definition time.
    """

    def __init__(self, env: TypeEnv) -> None:
        self.env = env

    # -- entry point ----------------------------------------------------

    def infer(self, expr: Node) -> AstType:
        method = getattr(self, "_infer_" + type(expr).__name__, None)
        if method is None:
            raise MacroTypeError(
                f"expression form {type(expr).__name__} is not valid in meta-code",
                expr.loc,
            )
        return method(expr)

    # -- literals and names ----------------------------------------------

    def _infer_Identifier(self, e: nodes.Identifier) -> AstType:
        return self.env.require(e.name, e.loc)

    def _infer_ErrorExpr(self, e: nodes.ErrorExpr) -> AstType:
        # Poisoned nodes (recovery mode) type as ``any``: the fault
        # was already reported once; don't cascade.
        return ANY

    def _infer_IntLit(self, e: nodes.IntLit) -> AstType:
        return INT

    def _infer_FloatLit(self, e: nodes.FloatLit) -> AstType:
        return CType("float")

    def _infer_CharLit(self, e: nodes.CharLit) -> AstType:
        return CType("char")

    def _infer_StringLit(self, e: nodes.StringLit) -> AstType:
        return STRING

    # -- operators --------------------------------------------------------

    def _infer_UnaryOp(self, e: nodes.UnaryOp) -> AstType:
        operand = self.infer(e.operand)
        if e.op == "*":
            if isinstance(operand, ListType):
                return operand.element  # car
            raise MacroTypeError(
                f"cannot dereference meta-value of type {operand}", e.loc
            )
        if e.op == "&":
            raise MacroTypeError(
                "cannot take the address of an AST value", e.loc
            )
        if e.op in ("-", "+", "~", "!", "++", "--"):
            self._require_scalar(operand, e)
            return INT
        raise MacroTypeError(f"operator {e.op!r} not valid in meta-code", e.loc)

    def _infer_PostfixOp(self, e: nodes.PostfixOp) -> AstType:
        operand = self.infer(e.operand)
        self._require_scalar(operand, e)
        return operand

    def _infer_BinaryOp(self, e: nodes.BinaryOp) -> AstType:
        left = self.infer(e.left)
        right = self.infer(e.right)
        if e.op in ("+", "-") and isinstance(left, ListType):
            # xs + 1 is cdr (paper: "id_list + 1 corresponds to cdr").
            if not right.is_usable_as(INT):
                raise MacroTypeError(
                    f"list offset must be an int, got {right}", e.loc
                )
            return left
        if e.op in ("==", "!=") and left.is_ast() and right.is_ast():
            return INT
        self._require_scalar(left, e)
        self._require_scalar(right, e)
        return INT

    def _infer_AssignOp(self, e: nodes.AssignOp) -> AstType:
        target = self._infer_lvalue(e.target)
        value = self.infer(e.value)
        if e.op == "=":
            if not value.is_usable_as(target):
                raise MacroTypeError(
                    f"cannot assign {value} to meta-variable of type {target}",
                    e.loc,
                )
        else:
            self._require_scalar(target, e)
            self._require_scalar(value, e)
        return target

    def _infer_lvalue(self, e: Node) -> AstType:
        if isinstance(e, nodes.Identifier):
            return self.env.require(e.name, e.loc)
        if isinstance(e, (nodes.Index, nodes.Member)):
            return self.infer(e)
        raise MacroTypeError("invalid assignment target in meta-code", e.loc)

    def _infer_ConditionalOp(self, e: nodes.ConditionalOp) -> AstType:
        self._require_scalar(self.infer(e.cond), e)
        then = self.infer(e.then)
        other = self.infer(e.otherwise)
        if then.is_usable_as(other):
            return other
        if other.is_usable_as(then):
            return then
        raise MacroTypeError(
            f"conditional branches disagree: {then} vs {other}", e.loc
        )

    def _infer_CommaOp(self, e: nodes.CommaOp) -> AstType:
        self.infer(e.left)
        return self.infer(e.right)

    def _infer_Index(self, e: nodes.Index) -> AstType:
        base = self.infer(e.base)
        index = self.infer(e.index)
        if not index.is_usable_as(INT):
            raise MacroTypeError(f"list index must be an int, got {index}", e.loc)
        if isinstance(base, ListType):
            return base.element
        raise MacroTypeError(f"cannot index meta-value of type {base}", e.loc)

    def _infer_Member(self, e: nodes.Member) -> AstType:
        base = self.infer(e.base)
        if isinstance(base, TupleType):
            found = base.field_type(e.name)
            if found is None:
                raise MacroTypeError(
                    f"tuple has no field {e.name!r} (has: "
                    f"{', '.join(n for n, _ in base.fields)})",
                    e.loc,
                )
            return found
        if base.is_ast() and not isinstance(base, ListType):
            key = (str(base), e.name)
            if key in COMPONENT_TYPES:
                return COMPONENT_TYPES[key]
            raise MacroTypeError(
                f"AST type {base} has no component {e.name!r}", e.loc
            )
        if base is ANY:
            return ANY
        raise MacroTypeError(
            f"cannot select member {e.name!r} from {base}", e.loc
        )

    # -- calls -------------------------------------------------------------

    def _infer_Call(self, e: nodes.Call) -> AstType:
        arg_types = [self.infer(a) for a in e.args]
        if isinstance(e.func, nodes.Identifier):
            name = e.func.name
            bound = self.env.lookup(name)
            if bound is None and is_builtin(name):
                return BUILTIN_SIGNATURES[name](arg_types, e)
            if bound is None:
                raise MacroTypeError(
                    f"call to undeclared meta-function {name!r}", e.loc
                )
            return self._check_call(bound, arg_types, e)
        func_type = self.infer(e.func)
        return self._check_call(func_type, arg_types, e)

    def _check_call(
        self, func_type: AstType, arg_types: list[AstType], at: Node
    ) -> AstType:
        if func_type is ANY:
            return ANY
        if not isinstance(func_type, FuncType):
            raise MacroTypeError(
                f"cannot call a meta-value of type {func_type}", at.loc
            )
        if not func_type.variadic and len(arg_types) != len(func_type.params):
            raise MacroTypeError(
                f"expected {len(func_type.params)} argument(s), "
                f"got {len(arg_types)}",
                at.loc,
            )
        for i, (got, want) in enumerate(zip(arg_types, func_type.params)):
            if not got.is_usable_as(want):
                raise MacroTypeError(
                    f"argument {i + 1} has type {got}, expected {want}",
                    at.loc,
                )
        return func_type.result

    # -- meta forms ----------------------------------------------------------

    def _infer_Backquote(self, e: nodes.Backquote) -> AstType:
        if e.asttype is None:
            raise MacroTypeError("backquote was not typed during parse", e.loc)
        return e.asttype

    def _infer_AnonFunction(self, e: nodes.AnonFunction) -> AstType:
        inner = self.env.child()
        param_types: list[AstType] = []
        for name, asttype in e.params:
            ptype = asttype if asttype is not None else ANY
            inner.bind(name, ptype)
            param_types.append(ptype)
        saved = self.env
        self.env = inner
        try:
            result = self.infer(e.body)
        finally:
            self.env = saved
        return FuncType(tuple(param_types), result)

    def _infer_PlaceholderExpr(self, e: nodes.PlaceholderExpr) -> AstType:
        # Nested backquote: a placeholder inside a deeper template.
        if e.asttype is None:
            raise MacroTypeError("placeholder was not typed during parse", e.loc)
        return e.asttype

    def _infer_Cast(self, e: nodes.Cast) -> AstType:
        # Meta-code casts are only meaningful between C scalars.
        self.infer(e.operand)
        return INT

    # -- helpers ---------------------------------------------------------------

    def _require_scalar(self, t: AstType, at: Node) -> None:
        if t is ANY:
            return
        if isinstance(t, CType) and t.name in ("int", "char", "float"):
            return
        raise MacroTypeError(
            f"expected a C scalar in meta-code, got {t}", at.loc
        )
