"""Statement-level checking of macro and meta-function bodies.

Runs at macro *definition* time, immediately after the body is parsed.
Verifies that every ``return`` produces a value usable as the declared
return type, that declarations' initializers fit, that conditions are
C scalars, and that every expression statement is well typed.
"""

from __future__ import annotations

from repro.asttypes.check import MetaTypeInferencer
from repro.asttypes.convert import bindings_from_declaration
from repro.asttypes.env import TypeEnv
from repro.asttypes.types import ANY, AstType, CType
from repro.cast import decls, nodes, stmts
from repro.cast.base import Node
from repro.errors import MacroTypeError


class BodyChecker:
    """Checks one macro (or meta-function) body against its return type."""

    def __init__(self, env: TypeEnv, return_type: AstType) -> None:
        self.return_type = return_type
        self.inferencer = MetaTypeInferencer(env)
        self.saw_return = False

    @property
    def env(self) -> TypeEnv:
        return self.inferencer.env

    @env.setter
    def env(self, value: TypeEnv) -> None:
        self.inferencer.env = value

    def check_body(self, body: stmts.CompoundStmt) -> None:
        self.check_compound(body)
        if not self.saw_return and self.return_type.is_ast():
            raise MacroTypeError(
                f"macro body never returns a {self.return_type} value",
                body.loc,
            )

    # ------------------------------------------------------------------

    def check_compound(self, body: stmts.CompoundStmt) -> None:
        saved = self.env
        self.env = saved.child()
        try:
            for d in body.decls:
                self.check_declaration(d)
            for s in body.stmts:
                self.check_stmt(s)
        finally:
            self.env = saved

    def check_declaration(self, d: Node) -> None:
        if isinstance(d, (nodes.ErrorDecl, nodes.ErrorStmt)):
            # Poisoned node from recovery: already diagnosed once.
            return
        if not isinstance(d, decls.Declaration):
            raise MacroTypeError(
                "only plain declarations may appear in meta-code bodies",
                d.loc,
            )
        bindings = bindings_from_declaration(d)
        for (name, asttype), item in zip(bindings, d.init_declarators):
            self.env.bind(name, asttype)
            if isinstance(item, decls.InitDeclarator) and item.init is not None:
                if isinstance(item.init, decls.ListInitializer):
                    raise MacroTypeError(
                        "braced initializers are not supported in meta-code",
                        item.loc,
                    )
                got = self.inferencer.infer(item.init)
                if not got.is_usable_as(asttype):
                    raise MacroTypeError(
                        f"initializer of {name!r} has type {got}, "
                        f"expected {asttype}",
                        item.loc,
                    )

    def check_stmt(self, s: Node) -> None:
        if isinstance(s, stmts.ExprStmt):
            self.inferencer.infer(s.expr)
        elif isinstance(s, stmts.CompoundStmt):
            self.check_compound(s)
        elif isinstance(s, stmts.IfStmt):
            self._check_cond(s.cond)
            self.check_stmt(s.then)
            if s.otherwise is not None:
                self.check_stmt(s.otherwise)
        elif isinstance(s, stmts.WhileStmt):
            self._check_cond(s.cond)
            self.check_stmt(s.body)
        elif isinstance(s, stmts.DoWhileStmt):
            self.check_stmt(s.body)
            self._check_cond(s.cond)
        elif isinstance(s, stmts.ForStmt):
            if s.init is not None:
                self.inferencer.infer(s.init)
            if s.cond is not None:
                self._check_cond(s.cond)
            if s.step is not None:
                self.inferencer.infer(s.step)
            self.check_stmt(s.body)
        elif isinstance(s, stmts.SwitchStmt):
            self._check_cond(s.expr)
            self.check_stmt(s.body)
        elif isinstance(s, (stmts.CaseStmt,)):
            self.inferencer.infer(s.expr)
            self.check_stmt(s.stmt)
        elif isinstance(s, stmts.DefaultStmt):
            self.check_stmt(s.stmt)
        elif isinstance(s, stmts.LabeledStmt):
            self.check_stmt(s.stmt)
        elif isinstance(s, stmts.ReturnStmt):
            self.saw_return = True
            if s.expr is None:
                if self.return_type.is_ast():
                    raise MacroTypeError(
                        f"macro must return a {self.return_type} value",
                        s.loc,
                    )
                return
            got = self.inferencer.infer(s.expr)
            if not got.is_usable_as(self.return_type):
                raise MacroTypeError(
                    f"return value has type {got}, macro is declared to "
                    f"return {self.return_type}",
                    s.loc,
                )
        elif isinstance(
            s, (stmts.BreakStmt, stmts.ContinueStmt, stmts.NullStmt,
                stmts.GotoStmt, nodes.ErrorStmt, nodes.ErrorDecl)
        ):
            return
        else:
            raise MacroTypeError(
                f"statement form {type(s).__name__} is not valid in "
                "meta-code bodies",
                s.loc,
            )

    def _check_cond(self, cond: Node) -> None:
        got = self.inferencer.infer(cond)
        if got is ANY:
            return
        if isinstance(got, CType) and got.name in ("int", "char", "float"):
            return
        raise MacroTypeError(
            f"condition must be a C scalar, got {got}", cond.loc
        )
