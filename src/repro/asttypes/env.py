"""Type environments for the meta-language.

A :class:`TypeEnv` is a chained scope mapping meta-variable names to
:class:`~repro.asttypes.types.AstType`.  The parser threads one of
these through macro-body parsing so that placeholder expressions can
be type-analyzed at the moment they are tokenized (paper section 3,
"Parsing Code Templates").
"""

from __future__ import annotations

from typing import Iterator

from repro.asttypes.types import AstType
from repro.errors import MacroTypeError, SourceLocation


class TypeEnv:
    """A lexical scope of meta-variable types."""

    def __init__(self, parent: "TypeEnv | None" = None) -> None:
        self.parent = parent
        self.bindings: dict[str, AstType] = {}

    def child(self) -> "TypeEnv":
        """Open a nested scope."""
        return TypeEnv(parent=self)

    def bind(self, name: str, asttype: AstType) -> None:
        self.bindings[name] = asttype

    def lookup(self, name: str) -> AstType | None:
        env: TypeEnv | None = self
        while env is not None:
            if name in env.bindings:
                return env.bindings[name]
            env = env.parent
        return None

    def require(self, name: str, loc: SourceLocation | None = None) -> AstType:
        found = self.lookup(name)
        if found is None:
            raise MacroTypeError(
                f"undeclared meta-variable {name!r}", loc
            )
        return found

    def __contains__(self, name: str) -> bool:
        return self.lookup(name) is not None

    def names(self) -> Iterator[str]:
        seen: set[str] = set()
        env: TypeEnv | None = self
        while env is not None:
            for name in env.bindings:
                if name not in seen:
                    seen.add(name)
                    yield name
            env = env.parent
