"""The public facade: :class:`MacroProcessor`.

Ties the parser, the macro table, the meta-interpreter and the
expander together into the compiler-adjunct workflow of the paper:

.. code-block:: python

    from repro import MacroProcessor

    mp = MacroProcessor()
    c_source = mp.expand_to_c('''
        syntax stmt Painting {| $$stmt::body |}
        { return(`{BeginPaint(hDC, &ps); $body; EndPaint(hDC, &ps);}); }

        void redraw(void)
        {
            Painting { draw_line(); draw_text(); }
        }
    ''')

Meta-programming constructs and regular code "can either be located in
separate files, or mixed together into the same file"; use
:meth:`MacroProcessor.load` for macro-package files and
:meth:`MacroProcessor.expand_program` / :meth:`expand_to_c` for
programs.  "None of [the meta-program] exists at runtime": expanded
output contains no ``syntax`` / ``metadcl`` items.
"""

from __future__ import annotations

from typing import Any

from repro.analysis import analyze_macro_purity
from repro.cast import decls, nodes
from repro.cast.base import Node
from repro.cast.printer import render_c
from repro.diagnostics import (
    Diagnostic,
    DiagnosticSink,
    ExpansionBudget,
)
from repro.errors import ExpansionError, Ms2Error, ResourceLimitError
from repro.macros.cache import ExpansionCache
from repro.macros.compiled import compile_pattern
from repro.macros.definition import MacroDefinition, MacroTable
from repro.macros.expander import Expander
from repro.meta.interp import Interpreter
from repro.options import ExpandResult, Ms2Options, warn_legacy
from repro.parser.core import Parser
from repro.stats import PipelineStats
from repro.trace import PhaseProfiler, Tracer

#: Sentinel distinguishing "not passed" from an explicit None/False in
#: the legacy per-call keyword shims.
_UNSET: Any = object()


class MacroProcessor:
    """A complete MS2 macro-processing pipeline.

    Configured by one :class:`~repro.options.Ms2Options` value::

        mp = MacroProcessor(options=Ms2Options(hygienic=True))
        result = mp.expand(source)          # -> ExpandResult

    ``options`` is the single source of defaults for the whole
    pipeline — the CLI, the batch driver (:mod:`repro.driver`) and
    the library all construct one, and its
    :meth:`~repro.options.Ms2Options.options_hash` keys the driver's
    incremental rebuilds.

    The historical keyword arguments (``hygienic=``, ``cache=``,
    ``trace=``, ``budget=``, ...) still work as a thin shim that
    forwards into :class:`Ms2Options` and emits
    :class:`~repro.options.Ms2DeprecationWarning`.
    """

    def __init__(
        self,
        options: Ms2Options | None = None,
        *,
        budget: ExpansionBudget | None = None,
        **legacy: Any,
    ) -> None:
        if budget is not None or legacy:
            options = Ms2Options.from_legacy_kwargs(
                options, budget=budget, **legacy
            )
        if options is None:
            options = Ms2Options()
        #: The session's frozen configuration.
        self.options = options
        #: Fast-path hit/miss counters for this session.
        self.stats = PipelineStats()
        #: Expansion-span recorder, or None when tracing is off.
        self.tracer: Tracer | None = (
            Tracer(
                hooks=list(options.trace_hooks) or None,
                jsonl=options.trace_jsonl,
            )
            if options.wants_tracer()
            else None
        )
        #: Phase-timer aggregator, or None when profiling is off.
        self.profiler: PhaseProfiler | None = (
            PhaseProfiler(self.stats) if options.profile else None
        )
        self.table = MacroTable()
        self.interpreter = Interpreter()
        self.interpreter.stats = self.stats
        self.interpreter.profiler = self.profiler
        # Hygienic renaming is a whole-program analysis whose
        # decisions depend on the code *surrounding* each invocation,
        # so its results cannot be replayed at other sites: the
        # expansion cache is forced off.
        use_cache = options.cache and not options.hygienic
        self.cache = ExpansionCache(self.stats) if use_cache else None
        #: Optional resource budget shared by every expansion run
        #: (the legacy ``budget=`` instance when one was supplied, so
        #: callers can observe its counters; otherwise built from the
        #: options' budget fields).
        self.budget = (
            budget if budget is not None else options.make_budget()
        )
        self.expander = Expander(
            self.table,
            self.interpreter,
            hygienic=options.hygienic,
            cache=self.cache,
            stats=self.stats,
            tracer=self.tracer,
            profiler=self.profiler,
            budget=self.budget,
            compiled_bodies=options.compiled_bodies,
        )
        self.compiled_patterns = options.compiled_patterns
        self._parser: Parser | None = None
        #: The active :class:`~repro.diagnostics.DiagnosticSink`
        #: during a ``recover=True`` run; None in fail-fast mode.
        self.diagnostics: DiagnosticSink | None = None

    # ==================================================================
    # Parser-host protocol
    # ==================================================================

    def lookup_macro(self, name: str) -> MacroDefinition | None:
        return self.table.lookup(name)

    def dispatch_macro(self, name: str, position: str) -> MacroDefinition | None:
        """Single-probe keyword dispatch (the parser's hot path)."""
        return self.table.dispatch(name, position)

    def handle_macro_def(
        self, macro: decls.MacroDef, parser: Parser
    ) -> MacroDefinition:
        definition = MacroDefinition.from_node(macro)
        if self.compiled_patterns:
            definition.compiled_matcher = compile_pattern(
                definition.pattern, definition.name
            )
        self.table.define(definition)
        definition.purity = analyze_macro_purity(
            definition, self.interpreter.globals
        )
        return definition

    def handle_meta_decl(self, meta: decls.MetaDecl, parser: Parser) -> None:
        inner = meta.inner
        if isinstance(inner, decls.Declaration):
            self.interpreter.run_meta_declaration(inner)

    def handle_meta_function(
        self, fn: decls.FunctionDef, parser: Parser
    ) -> None:
        self.interpreter.define_meta_function(fn)
        # A (re)defined meta-function can change the behaviour — and
        # the purity — of macros analyzed earlier: drop stale memo
        # state and re-analyze lazily at the next definition pass.
        self._invalidate_purity()

    def _invalidate_purity(self) -> None:
        if self.cache is not None:
            self.cache.clear()
        for name in self.table.defined_names():
            definition = self.table.lookup(name)
            definition.purity = analyze_macro_purity(
                definition, self.interpreter.globals
            )

    def expand_invocation(
        self, invocation: nodes.MacroInvocation, position: str
    ) -> Node | list[Node]:
        # Semantic macros (§5): expose the C scope live at the
        # invocation site to type_of()/has_type().
        saved_scope = self.interpreter.semantic_scope
        if self._parser is not None:
            self.interpreter.semantic_scope = self._parser.c_scope
        try:
            result = self.expander.expand_invocation(invocation)
            self._check_position(invocation, result, position)
        except Ms2Error as exc:
            poisoned = self._recover_expansion(exc, invocation, position)
            if poisoned is None:
                raise
            return poisoned
        finally:
            self.interpreter.semantic_scope = saved_scope
        return result

    def _recover_expansion(
        self,
        exc: Ms2Error,
        invocation: nodes.MacroInvocation,
        position: str,
    ) -> Node | None:
        """Expansion-failure isolation (recovery mode): record the
        error — whose location already carries the
        ``ExpandedLocation`` backtrace for nested failures — and
        degrade the invocation to a poisoned node so parsing
        continues.  Returns None in fail-fast mode, when the sink is
        saturated, or while parsing meta-code (a failing expansion
        inside a macro body must still reject the definition)."""
        sink = self.diagnostics
        parser = self._parser
        if (
            sink is None
            or parser is None
            or parser.meta_mode
            or parser.template_mode
        ):
            return None
        if sink.saturated or not sink.emit_error(exc):
            return None
        self.stats.expansion_recoveries += 1
        if position == "exp":
            return nodes.ErrorExpr(message=exc.message, loc=invocation.loc)
        if position == "stmt":
            return nodes.ErrorStmt(message=exc.message, loc=invocation.loc)
        return nodes.ErrorDecl(message=exc.message, loc=invocation.loc)

    @staticmethod
    def _check_position(
        invocation: nodes.MacroInvocation,
        result: Node | list[Node],
        position: str,
    ) -> None:
        if position == "exp" and isinstance(result, list):
            raise ExpansionError(
                f"macro {invocation.name!r} produced a list at an "
                "expression position",
                invocation.loc,
            )

    # ==================================================================
    # Public API
    # ==================================================================

    def make_parser(
        self,
        source: str,
        filename: str = "<string>",
        diagnostics: DiagnosticSink | None = None,
    ) -> Parser:
        parser = Parser(
            source, host=self, expand_inline=True, filename=filename,
            stats=self.stats, profiler=self.profiler,
            diagnostics=diagnostics,
        )
        if self._parser is not None:
            # Later files see typedefs and meta bindings of earlier ones.
            parser.typedef_scopes = self._parser.typedef_scopes
            parser.global_type_env = self._parser.global_type_env
            parser.type_env = parser.global_type_env
            parser.inferencer.env = parser.global_type_env
        self._parser = parser
        return parser

    @staticmethod
    def _parse_guarded(parser: Parser) -> decls.TranslationUnit:
        """Run a parse, converting the host interpreter's own stack
        limit into an :class:`Ms2Error` subclass — the pipeline never
        lets a raw :class:`RecursionError` escape."""
        try:
            return parser.parse_program()
        except RecursionError:
            raise ResourceLimitError(
                "input nests too deeply for the macro processor "
                "(host recursion limit exceeded while parsing)"
            ) from None

    def load(self, source: str, filename: str = "<package>") -> None:
        """Process a macro-package file: definitions are registered,
        any plain C in the file is discarded."""
        parser = self.make_parser(source, filename)
        self._parse_guarded(parser)

    # -- internal, options-driven pipeline stages ----------------------

    def _run_program(
        self, source: str, filename: str, opts: Ms2Options
    ) -> tuple[decls.TranslationUnit, list[Diagnostic] | None]:
        """Parse-and-expand under ``opts``; ``(unit, diagnostics)``
        with diagnostics None in fail-fast mode (which raises)."""
        if not opts.recover:
            parser = self.make_parser(source, filename)
            return self._parse_guarded(parser), None
        sink = DiagnosticSink(max_errors=opts.max_errors)
        self.diagnostics = sink
        try:
            # Tokenization happens eagerly in the Parser constructor,
            # so a LexError must be inside the backstop too.
            parser = self.make_parser(source, filename, diagnostics=sink)
            unit = self._parse_guarded(parser)
        except Ms2Error as exc:
            # Backstop: a fault that escaped every recovery point
            # (e.g. raised after saturation) still ends as a
            # diagnostic, never as an exception from a recover run.
            sink.emit_error(exc)
            unit = decls.TranslationUnit([])
        finally:
            self.diagnostics = None
        return unit, list(sink.diagnostics)

    @staticmethod
    def _strip_meta(unit: decls.TranslationUnit) -> decls.TranslationUnit:
        """Drop macro definitions and metadcls — "none of [the
        meta-program] exists at runtime"."""
        items = [
            item
            for item in unit.items
            if not isinstance(item, (decls.MacroDef, decls.MetaDecl))
        ]
        return decls.TranslationUnit(items, loc=unit.loc)

    def _render(self, unit: decls.TranslationUnit, opts: Ms2Options) -> str:
        prof = self.profiler
        if prof is None:
            return render_c(unit, annotate=opts.annotate)
        with prof.phase("print"):
            return render_c(unit, annotate=opts.annotate)

    def _per_call_options(self, **overrides: Any) -> Ms2Options:
        """Session options overridden by legacy per-call keywords.
        Explicitly passed keywords go through the deprecation shim;
        an explicit ``max_errors=None`` means "the default"."""
        passed = {k: v for k, v in overrides.items() if v is not _UNSET}
        if not passed:
            return self.options
        warn_legacy(
            f"passing {', '.join(sorted(passed))} per call",
            "Ms2Options (MacroProcessor(options=...) and .expand())",
        )
        if passed.get("max_errors", _UNSET) is None:
            del passed["max_errors"]
        return self.options.replace(**passed)

    # -- the unified entry point ---------------------------------------

    def expand(
        self, source: str, filename: str = "<string>"
    ) -> ExpandResult:
        """Run the full pipeline under this session's options and
        return an :class:`~repro.options.ExpandResult` carrying the
        expanded C text, the (meta-stripped unless ``keep_meta``)
        unit, any recovery diagnostics, the session stats and the
        trace spans recorded for this source.

        In fail-fast mode (``options.recover`` unset) errors raise
        :class:`~repro.errors.Ms2Error` exactly like the legacy
        methods; with recovery enabled the result's ``diagnostics``
        carry every fault.
        """
        opts = self.options
        span_start = len(self.tracer.roots) if self.tracer else 0
        unit, diagnostics = self._run_program(source, filename, opts)
        out_unit = unit if opts.keep_meta else self._strip_meta(unit)
        text = self._render(out_unit, opts)
        spans = self.tracer.roots[span_start:] if self.tracer else []
        return ExpandResult(
            output=text,
            unit=out_unit,
            diagnostics=diagnostics or [],
            stats=self.stats,
            spans=spans,
        )

    # -- legacy-shaped methods (kwargs shim over the options path) -----

    def expand_program(
        self,
        source: str,
        filename: str = "<string>",
        *,
        recover: Any = _UNSET,
        max_errors: Any = _UNSET,
    ) -> decls.TranslationUnit | tuple[
        decls.TranslationUnit, list[Diagnostic]
    ]:
        """Parse-and-expand a program; returns the expanded AST
        including meta items (macro definitions, metadcls).

        With recovery enabled the run collects up to ``max_errors``
        diagnostics instead of raising on the first fault: failed
        regions become poisoned ``Error*`` nodes and the result is a
        ``(unit, diagnostics)`` pair.  Fail-fast behaviour (the
        default) is unchanged.  Passing ``recover=``/``max_errors=``
        per call is deprecated — set them on :class:`Ms2Options`.
        """
        opts = self._per_call_options(
            recover=recover, max_errors=max_errors
        )
        unit, diagnostics = self._run_program(source, filename, opts)
        if opts.recover:
            return unit, list(diagnostics or [])
        return unit

    def expand_to_ast(
        self,
        source: str,
        filename: str = "<string>",
        *,
        recover: Any = _UNSET,
        max_errors: Any = _UNSET,
    ) -> decls.TranslationUnit | tuple[
        decls.TranslationUnit, list[Diagnostic]
    ]:
        """Like :meth:`expand_program` but with all meta-program items
        stripped — the translation unit a downstream C compiler sees."""
        opts = self._per_call_options(
            recover=recover, max_errors=max_errors
        )
        unit, diagnostics = self._run_program(source, filename, opts)
        stripped = self._strip_meta(unit)
        if opts.recover:
            return stripped, list(diagnostics or [])
        return stripped

    def expand_to_c(
        self,
        source: str,
        filename: str = "<string>",
        *,
        annotate: Any = _UNSET,
        recover: Any = _UNSET,
        max_errors: Any = _UNSET,
    ) -> str | tuple[str, list[Diagnostic]]:
        """Full pipeline: source with macros in, plain C text out.

        With annotation enabled the printer emits provenance comments
        (``/* <- Macro @ file:line */``) on macro-generated code and
        ``#line`` directives mapping the output back to user source.
        With recovery enabled returns ``(text, diagnostics)``;
        recovered faults render as ``/* <error: ...> */`` comments.
        Per-call keywords are deprecated — set :class:`Ms2Options`.
        """
        opts = self._per_call_options(
            annotate=annotate, recover=recover, max_errors=max_errors
        )
        unit, diagnostics = self._run_program(source, filename, opts)
        text = self._render(self._strip_meta(unit), opts)
        if opts.recover:
            return text, list(diagnostics or [])
        return text

    # ------------------------------------------------------------------

    def define_macros(self, source: str) -> list[str]:
        """Register the macros defined in ``source``; returns their
        names in definition order (convenience for building macro
        packages)."""
        before = set(self.table.defined_names())
        self.load(source)
        return [
            n for n in self.table.defined_names() if n not in before
        ]

    @property
    def expansion_count(self) -> int:
        return self.expander.expansion_count


def expand_source(
    source: str,
    *,
    packages: list[str] | None = None,
    options: Ms2Options | None = None,
    hygienic: Any = _UNSET,
) -> str:
    """One-shot convenience: expand ``source`` (optionally after
    loading macro-package sources) and return C text.

    Accepts the same :class:`~repro.options.Ms2Options` as
    :class:`MacroProcessor`, so the one-shot path and the session path
    share every default (recovery, budgets, hygiene) by construction.
    The old ``hygienic=`` keyword forwards through the deprecation
    shim.
    """
    if hygienic is not _UNSET:
        warn_legacy(
            "expand_source(hygienic=...)",
            "expand_source(options=Ms2Options(hygienic=...))",
        )
        options = (options or Ms2Options()).replace(hygienic=hygienic)
    mp = MacroProcessor(options=options)
    for pkg in packages or []:
        mp.load(pkg)
    return mp.expand(source).output
