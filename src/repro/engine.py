"""The public facade: :class:`MacroProcessor`.

Ties the parser, the macro table, the meta-interpreter and the
expander together into the compiler-adjunct workflow of the paper:

.. code-block:: python

    from repro import MacroProcessor

    mp = MacroProcessor()
    c_source = mp.expand_to_c('''
        syntax stmt Painting {| $$stmt::body |}
        { return(`{BeginPaint(hDC, &ps); $body; EndPaint(hDC, &ps);}); }

        void redraw(void)
        {
            Painting { draw_line(); draw_text(); }
        }
    ''')

Meta-programming constructs and regular code "can either be located in
separate files, or mixed together into the same file"; use
:meth:`MacroProcessor.load` for macro-package files and
:meth:`MacroProcessor.expand_program` / :meth:`expand_to_c` for
programs.  "None of [the meta-program] exists at runtime": expanded
output contains no ``syntax`` / ``metadcl`` items.
"""

from __future__ import annotations

from typing import Any

from repro.analysis import analyze_macro_purity
from repro.cast import decls, nodes
from repro.cast.base import Node
from repro.cast.printer import render_c
from repro.diagnostics import (
    DEFAULT_MAX_ERRORS,
    Diagnostic,
    DiagnosticSink,
    ExpansionBudget,
)
from repro.errors import ExpansionError, Ms2Error, ResourceLimitError
from repro.macros.cache import ExpansionCache
from repro.macros.compiled import compile_pattern
from repro.macros.definition import MacroDefinition, MacroTable
from repro.macros.expander import Expander
from repro.meta.interp import Interpreter
from repro.parser.core import Parser
from repro.stats import PipelineStats
from repro.trace import PhaseProfiler, Tracer


class MacroProcessor:
    """A complete MS2 macro-processing pipeline.

    Parameters
    ----------
    hygienic:
        Enable the automatic renaming of template-declared locals
        (the paper's section-5 future-work extension).  Off by
        default, matching the paper's implementation, whose examples
        use ``gensym`` manually.
    compiled_patterns:
        Use compiled per-macro invocation parse routines (the paper's
        suggested acceleration) instead of the interpreted pattern
        engine.  On by default; pass ``False`` to fall back to the
        interpreted engine.
    cache:
        Memoize expansions of macros whose meta-bodies the purity
        analysis certifies as pure functions of their actuals
        (:mod:`repro.macros.cache`).  On by default; pass ``False``
        to re-run every meta-program on every invocation.  Ignored
        when ``hygienic`` is set: hygienic renaming is a whole-
        program analysis whose decisions depend on the code
        *surrounding* each invocation, so its results cannot be
        replayed at other sites.
    trace:
        Record an :class:`~repro.trace.ExpansionSpan` tree for every
        macro invocation (see :mod:`repro.trace`); rendered by
        ``repro trace`` and inspectable via :attr:`tracer`.
    trace_hooks:
        Callables invoked as ``hook(event, span)`` on span start /
        end / error — the subscription API for tests and external
        tools.  Supplying hooks implies ``trace=True``.
    trace_jsonl:
        Optional writable text stream; completed spans are appended
        as JSON lines.  Implies ``trace=True``.  The stream stays
        owned by the caller.
    profile:
        Aggregate per-phase wall time (scan / dispatch /
        invocation-parse / type-check / meta-eval / template-fill /
        print) into :attr:`stats`; see
        :meth:`~repro.stats.PipelineStats.profile_summary`.
    budget:
        Optional :class:`~repro.diagnostics.ExpansionBudget` bounding
        total expansions, produced AST nodes and wall-clock time.
        Exhaustion raises
        :class:`~repro.errors.ExpansionBudgetError` (an ordinary
        ``Ms2Error``), which recovery mode degrades to a diagnostic.
    """

    def __init__(
        self,
        *,
        hygienic: bool = False,
        compiled_patterns: bool = True,
        cache: bool = True,
        trace: bool = False,
        trace_hooks: list[Any] | None = None,
        trace_jsonl: Any = None,
        profile: bool = False,
        budget: ExpansionBudget | None = None,
    ) -> None:
        #: Fast-path hit/miss counters for this session.
        self.stats = PipelineStats()
        #: Expansion-span recorder, or None when tracing is off.
        self.tracer: Tracer | None = (
            Tracer(hooks=trace_hooks, jsonl=trace_jsonl)
            if (trace or trace_hooks or trace_jsonl is not None)
            else None
        )
        #: Phase-timer aggregator, or None when profiling is off.
        self.profiler: PhaseProfiler | None = (
            PhaseProfiler(self.stats) if profile else None
        )
        self.table = MacroTable()
        self.interpreter = Interpreter()
        self.interpreter.stats = self.stats
        self.interpreter.profiler = self.profiler
        if hygienic:
            cache = False
        self.cache = ExpansionCache(self.stats) if cache else None
        #: Optional resource budget shared by every expansion run.
        self.budget = budget
        self.expander = Expander(
            self.table,
            self.interpreter,
            hygienic=hygienic,
            cache=self.cache,
            stats=self.stats,
            tracer=self.tracer,
            profiler=self.profiler,
            budget=budget,
        )
        self.compiled_patterns = compiled_patterns
        self._parser: Parser | None = None
        #: The active :class:`~repro.diagnostics.DiagnosticSink`
        #: during a ``recover=True`` run; None in fail-fast mode.
        self.diagnostics: DiagnosticSink | None = None

    # ==================================================================
    # Parser-host protocol
    # ==================================================================

    def lookup_macro(self, name: str) -> MacroDefinition | None:
        return self.table.lookup(name)

    def dispatch_macro(self, name: str, position: str) -> MacroDefinition | None:
        """Single-probe keyword dispatch (the parser's hot path)."""
        return self.table.dispatch(name, position)

    def handle_macro_def(
        self, macro: decls.MacroDef, parser: Parser
    ) -> MacroDefinition:
        definition = MacroDefinition.from_node(macro)
        if self.compiled_patterns:
            definition.compiled_matcher = compile_pattern(
                definition.pattern, definition.name
            )
        self.table.define(definition)
        definition.purity = analyze_macro_purity(
            definition, self.interpreter.globals
        )
        return definition

    def handle_meta_decl(self, meta: decls.MetaDecl, parser: Parser) -> None:
        inner = meta.inner
        if isinstance(inner, decls.Declaration):
            self.interpreter.run_meta_declaration(inner)

    def handle_meta_function(
        self, fn: decls.FunctionDef, parser: Parser
    ) -> None:
        self.interpreter.define_meta_function(fn)
        # A (re)defined meta-function can change the behaviour — and
        # the purity — of macros analyzed earlier: drop stale memo
        # state and re-analyze lazily at the next definition pass.
        self._invalidate_purity()

    def _invalidate_purity(self) -> None:
        if self.cache is not None:
            self.cache.clear()
        for name in self.table.defined_names():
            definition = self.table.lookup(name)
            definition.purity = analyze_macro_purity(
                definition, self.interpreter.globals
            )

    def expand_invocation(
        self, invocation: nodes.MacroInvocation, position: str
    ) -> Node | list[Node]:
        # Semantic macros (§5): expose the C scope live at the
        # invocation site to type_of()/has_type().
        saved_scope = self.interpreter.semantic_scope
        if self._parser is not None:
            self.interpreter.semantic_scope = self._parser.c_scope
        try:
            result = self.expander.expand_invocation(invocation)
            self._check_position(invocation, result, position)
        except Ms2Error as exc:
            poisoned = self._recover_expansion(exc, invocation, position)
            if poisoned is None:
                raise
            return poisoned
        finally:
            self.interpreter.semantic_scope = saved_scope
        return result

    def _recover_expansion(
        self,
        exc: Ms2Error,
        invocation: nodes.MacroInvocation,
        position: str,
    ) -> Node | None:
        """Expansion-failure isolation (recovery mode): record the
        error — whose location already carries the
        ``ExpandedLocation`` backtrace for nested failures — and
        degrade the invocation to a poisoned node so parsing
        continues.  Returns None in fail-fast mode, when the sink is
        saturated, or while parsing meta-code (a failing expansion
        inside a macro body must still reject the definition)."""
        sink = self.diagnostics
        parser = self._parser
        if (
            sink is None
            or parser is None
            or parser.meta_mode
            or parser.template_mode
        ):
            return None
        if sink.saturated or not sink.emit_error(exc):
            return None
        self.stats.expansion_recoveries += 1
        if position == "exp":
            return nodes.ErrorExpr(message=exc.message, loc=invocation.loc)
        if position == "stmt":
            return nodes.ErrorStmt(message=exc.message, loc=invocation.loc)
        return nodes.ErrorDecl(message=exc.message, loc=invocation.loc)

    @staticmethod
    def _check_position(
        invocation: nodes.MacroInvocation,
        result: Node | list[Node],
        position: str,
    ) -> None:
        if position == "exp" and isinstance(result, list):
            raise ExpansionError(
                f"macro {invocation.name!r} produced a list at an "
                "expression position",
                invocation.loc,
            )

    # ==================================================================
    # Public API
    # ==================================================================

    def make_parser(
        self,
        source: str,
        filename: str = "<string>",
        diagnostics: DiagnosticSink | None = None,
    ) -> Parser:
        parser = Parser(
            source, host=self, expand_inline=True, filename=filename,
            stats=self.stats, profiler=self.profiler,
            diagnostics=diagnostics,
        )
        if self._parser is not None:
            # Later files see typedefs and meta bindings of earlier ones.
            parser.typedef_scopes = self._parser.typedef_scopes
            parser.global_type_env = self._parser.global_type_env
            parser.type_env = parser.global_type_env
            parser.inferencer.env = parser.global_type_env
        self._parser = parser
        return parser

    @staticmethod
    def _parse_guarded(parser: Parser) -> decls.TranslationUnit:
        """Run a parse, converting the host interpreter's own stack
        limit into an :class:`Ms2Error` subclass — the pipeline never
        lets a raw :class:`RecursionError` escape."""
        try:
            return parser.parse_program()
        except RecursionError:
            raise ResourceLimitError(
                "input nests too deeply for the macro processor "
                "(host recursion limit exceeded while parsing)"
            ) from None

    def load(self, source: str, filename: str = "<package>") -> None:
        """Process a macro-package file: definitions are registered,
        any plain C in the file is discarded."""
        parser = self.make_parser(source, filename)
        self._parse_guarded(parser)

    def expand_program(
        self,
        source: str,
        filename: str = "<string>",
        *,
        recover: bool = False,
        max_errors: int | None = None,
    ) -> decls.TranslationUnit | tuple[
        decls.TranslationUnit, list[Diagnostic]
    ]:
        """Parse-and-expand a program; returns the expanded AST
        including meta items (macro definitions, metadcls).

        With ``recover=True`` the run collects up to ``max_errors``
        diagnostics instead of raising on the first fault: failed
        regions become poisoned ``Error*`` nodes and the result is a
        ``(unit, diagnostics)`` pair.  Fail-fast behaviour (the
        default) is unchanged.
        """
        if not recover:
            parser = self.make_parser(source, filename)
            return self._parse_guarded(parser)
        sink = DiagnosticSink(
            max_errors=max_errors
            if max_errors is not None
            else DEFAULT_MAX_ERRORS
        )
        self.diagnostics = sink
        try:
            # Tokenization happens eagerly in the Parser constructor,
            # so a LexError must be inside the backstop too.
            parser = self.make_parser(source, filename, diagnostics=sink)
            unit = self._parse_guarded(parser)
        except Ms2Error as exc:
            # Backstop: a fault that escaped every recovery point
            # (e.g. raised after saturation) still ends as a
            # diagnostic, never as an exception from a recover run.
            sink.emit_error(exc)
            unit = decls.TranslationUnit([])
        finally:
            self.diagnostics = None
        return unit, list(sink.diagnostics)

    def expand_to_ast(
        self,
        source: str,
        filename: str = "<string>",
        *,
        recover: bool = False,
        max_errors: int | None = None,
    ) -> decls.TranslationUnit | tuple[
        decls.TranslationUnit, list[Diagnostic]
    ]:
        """Like :meth:`expand_program` but with all meta-program items
        stripped — the translation unit a downstream C compiler sees."""
        diagnostics: list[Diagnostic] | None = None
        if recover:
            unit, diagnostics = self.expand_program(
                source, filename, recover=True, max_errors=max_errors
            )
        else:
            unit = self.expand_program(source, filename)
        items = [
            item
            for item in unit.items
            if not isinstance(item, (decls.MacroDef, decls.MetaDecl))
        ]
        stripped = decls.TranslationUnit(items, loc=unit.loc)
        if recover:
            return stripped, diagnostics
        return stripped

    def expand_to_c(
        self,
        source: str,
        filename: str = "<string>",
        *,
        annotate: bool = False,
        recover: bool = False,
        max_errors: int | None = None,
    ) -> str | tuple[str, list[Diagnostic]]:
        """Full pipeline: source with macros in, plain C text out.

        With ``annotate=True`` the printer emits provenance comments
        (``/* <- Macro @ file:line */``) on macro-generated code and
        ``#line`` directives mapping the output back to user source.
        With ``recover=True`` returns ``(text, diagnostics)``;
        recovered faults render as ``/* <error: ...> */`` comments.
        """
        diagnostics: list[Diagnostic] | None = None
        if recover:
            unit, diagnostics = self.expand_to_ast(
                source, filename, recover=True, max_errors=max_errors
            )
        else:
            unit = self.expand_to_ast(source, filename)
        prof = self.profiler
        if prof is None:
            text = render_c(unit, annotate=annotate)
        else:
            with prof.phase("print"):
                text = render_c(unit, annotate=annotate)
        if recover:
            return text, diagnostics
        return text

    # ------------------------------------------------------------------

    def define_macros(self, source: str) -> list[str]:
        """Register the macros defined in ``source``; returns their
        names in definition order (convenience for building macro
        packages)."""
        before = set(self.table.defined_names())
        self.load(source)
        return [
            n for n in self.table.defined_names() if n not in before
        ]

    @property
    def expansion_count(self) -> int:
        return self.expander.expansion_count


def expand_source(
    source: str,
    *,
    packages: list[str] | None = None,
    hygienic: bool = False,
) -> str:
    """One-shot convenience: expand ``source`` (optionally after
    loading macro-package sources) and return C text."""
    mp = MacroProcessor(hygienic=hygienic)
    for pkg in packages or []:
        mp.load(pkg)
    return mp.expand_to_c(source)
