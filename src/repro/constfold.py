"""Constant-expression evaluation over C ASTs.

A small compiler pass the macro system leans on in two places:

* the ``eval_const`` meta-builtin lets macros accept *constant
  expressions* where they conceptually need a number (``repeat (2*8)``
  instead of ``repeat 16``), folding at expansion time; and
* tooling can fold enum values / array sizes in expanded output.

Semantics follow C integer-constant-expression rules on (unbounded)
Python ints, with C truncation for ``/`` and ``%``.  Identifiers are
resolved through an optional environment (e.g. enum constants);
anything non-constant raises :class:`NotConstant`.
"""

from __future__ import annotations

from repro.cast import ctypes, nodes
from repro.cast.base import Node
from repro.errors import Ms2Error


class NotConstant(Ms2Error):
    """The expression is not a C integer constant expression."""


def eval_const(
    expr: Node, env: dict[str, int] | None = None
) -> int:
    """Evaluate an integer constant expression."""
    return _Evaluator(env or {}).eval(expr)


def enum_constants(enum: ctypes.EnumType) -> dict[str, int]:
    """The values an ``enum`` specifier assigns its enumerators
    (C rules: implicit values continue from the previous one)."""
    values: dict[str, int] = {}
    next_value = 0
    for e in enum.enumerators or []:
        if not isinstance(e, ctypes.Enumerator):
            raise NotConstant(
                "enum contains unexpanded template elements", enum.loc
            )
        if e.value is not None:
            next_value = eval_const(e.value, values)
        values[e.name] = next_value
        next_value += 1
    return values


class _Evaluator:
    def __init__(self, env: dict[str, int]) -> None:
        self.env = env

    def eval(self, e: Node) -> int:
        method = getattr(self, "_eval_" + type(e).__name__, None)
        if method is None:
            raise NotConstant(
                f"{type(e).__name__} is not a constant expression", e.loc
            )
        return method(e)

    def _eval_IntLit(self, e: nodes.IntLit) -> int:
        return e.value

    def _eval_CharLit(self, e: nodes.CharLit) -> int:
        return e.value

    def _eval_Identifier(self, e: nodes.Identifier) -> int:
        if e.name in self.env:
            return self.env[e.name]
        raise NotConstant(
            f"{e.name!r} is not a known constant", e.loc
        )

    def _eval_UnaryOp(self, e: nodes.UnaryOp) -> int:
        value = self.eval(e.operand)
        if e.op == "-":
            return -value
        if e.op == "+":
            return value
        if e.op == "~":
            return ~value
        if e.op == "!":
            return int(not value)
        raise NotConstant(
            f"operator {e.op!r} is not constant-foldable", e.loc
        )

    def _eval_BinaryOp(self, e: nodes.BinaryOp) -> int:
        op = e.op
        if op == "&&":
            return int(bool(self.eval(e.left)) and bool(self.eval(e.right)))
        if op == "||":
            return int(bool(self.eval(e.left)) or bool(self.eval(e.right)))
        left = self.eval(e.left)
        right = self.eval(e.right)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op in ("/", "%"):
            if right == 0:
                raise NotConstant("division by zero in constant "
                                  "expression", e.loc)
            q = abs(left) // abs(right)
            if (left >= 0) != (right >= 0):
                q = -q
            return q if op == "/" else left - q * right
        if op == "<<":
            return left << right
        if op == ">>":
            return left >> right
        if op == "&":
            return left & right
        if op == "|":
            return left | right
        if op == "^":
            return left ^ right
        if op == "<":
            return int(left < right)
        if op == ">":
            return int(left > right)
        if op == "<=":
            return int(left <= right)
        if op == ">=":
            return int(left >= right)
        if op == "==":
            return int(left == right)
        if op == "!=":
            return int(left != right)
        raise NotConstant(f"operator {op!r} unknown", e.loc)

    def _eval_ConditionalOp(self, e: nodes.ConditionalOp) -> int:
        return (
            self.eval(e.then)
            if self.eval(e.cond)
            else self.eval(e.otherwise)
        )

    def _eval_Cast(self, e: nodes.Cast) -> int:
        # Integer casts are value-preserving in our unbounded model.
        return self.eval(e.operand)
