"""Deterministic fault injection for the serving and build stack.

Infrastructure faults — a disk that errors, a lock that wedges, a
socket write that resets, a build worker that dies — are rare in
tests and constant in production.  This module makes them *cheap to
rehearse*: named *fault sites* are embedded at the real I/O and
process boundaries of the pipeline (the persistent cache, the file
locks, the daemon's frame writer, the worker pools), and a seeded
:class:`FaultPlan` decides, deterministically, which checks fire.

Sites (see ``docs/ROBUSTNESS.md`` for the catalog):

=====================  ====================================================
``cache.load``          :meth:`PersistentCache.load` reading a snapshot
``cache.store``         :meth:`PersistentCache.store` writing a snapshot
``lock.acquire``        :meth:`FileLock.acquire` taking an entry lock
``server.frame_write``  the daemon writing a response frame
``pool.build_worker``   building a warm server worker (preamble load)
``driver.worker``       a build worker expanding one translation unit
``eventlog.write``      appending a structured event-log record
``remote_cache.get``    ``RemoteCacheBackend`` fetching a snapshot
``remote_cache.put``    ``RemoteCacheBackend`` publishing a snapshot
=====================  ====================================================

Arming
------

Programmatic (tests)::

    from repro import faults
    faults.arm("cache.load:1:io_error", seed=7)
    try:
        ...
    finally:
        faults.disarm()

Environment (CLI, daemons, **and every worker process they spawn** —
the module arms itself from the environment at import time, so a
``ProcessPoolExecutor`` child inherits the plan automatically)::

    MS2_FAULTS="server.frame_write:0.2:io_error,cache.store:1:io_error"
    MS2_FAULT_SEED=42

CLI: ``repro expand|build|serve --inject-fault SPEC`` (repeatable)
plus ``--fault-seed N`` arm the same way and export the spec to the
environment so pool workers see it.

Spec grammar
------------

``site[@match]:prob:kind[:after_n[:max_fires]]``

``site``
    One of :data:`SITES` (unknown sites are a :class:`ValueError`
    so a typo cannot silently disarm a chaos run).
``@match``
    Optional substring filter on the *context* a call site passes
    (e.g. the file path a build worker is expanding) — lets a chaos
    test aim a process-kill at exactly one translation unit.
``prob``
    Firing probability in ``[0, 1]``, drawn from a per-site RNG
    stream seeded by ``(seed, site)`` so sites never perturb each
    other's sequences.
``kind``
    ``io_error`` (raise :class:`InjectedFault`, an ``IOError``),
    ``delay`` (sleep :data:`DELAY_S`, then proceed), ``corrupt``
    (flip bytes in the data flowing through the site), ``kill``
    (``os._exit(137)`` — a worker crash), ``conn_reset`` (raise
    :class:`ConnectionResetError`).
``after_n``
    Skip the first N checks at the site before rolling dice.
``max_fires``
    Stop firing after N injections (per process); ``0`` = unlimited.
    ``site:1:kill:0:1`` is a one-shot deterministic crash.

Zero disarmed overhead
----------------------

Call sites guard with a single attribute test, exactly like the
telemetry collectors::

    from repro import faults
    ...
    if faults.ACTIVE is not None:
        blob = faults.ACTIVE.hit("cache.load", blob)

When nothing is armed, :data:`ACTIVE` is ``None`` and the pipeline
pays one module-attribute load per site — nothing else.
"""

from __future__ import annotations

import os
import random
import sys
import time
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "ACTIVE",
    "DELAY_S",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "SITES",
    "arm",
    "arm_from_env",
    "disarm",
    "parse_spec",
]

#: Every fault site embedded in the pipeline.  Arming any other name
#: raises, so chaos configs cannot rot silently.
SITES = frozenset(
    {
        "cache.load",
        "cache.store",
        "lock.acquire",
        "server.frame_write",
        "pool.build_worker",
        "driver.worker",
        "eventlog.write",
        "remote_cache.get",
        "remote_cache.put",
    }
)

#: The injectable failure modes.
FAULT_KINDS = frozenset(
    {"io_error", "delay", "corrupt", "kill", "conn_reset"}
)

#: Seconds a ``delay`` fault sleeps.
DELAY_S = 0.05

#: Exit status of a ``kill`` fault (the classic SIGKILL-ish 137).
KILL_EXIT_CODE = 137

#: Environment variables the module arms itself from at import.
ENV_SPECS = "MS2_FAULTS"
ENV_SEED = "MS2_FAULT_SEED"


class InjectedFault(IOError):
    """The typed error an ``io_error`` fault raises.  An ``IOError``
    subclass on purpose: every absorbing ``except OSError`` in the
    pipeline treats it exactly like the disk failure it stands in
    for, while tests (and the server's error mapping) can still
    recognise it by name."""

    def __init__(self, site: str) -> None:
        super().__init__(f"injected fault at {site}")
        self.site = site


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """One armed fault: parsed form of the spec grammar."""

    site: str
    prob: float
    kind: str
    after_n: int = 0
    max_fires: int = 0  # 0 = unlimited
    match: str | None = None

    def to_string(self) -> str:
        """The spec back in ``site[@match]:prob:kind:after:max``
        form (what ``--inject-fault`` exports to the environment)."""
        site = self.site if self.match is None else (
            f"{self.site}@{self.match}"
        )
        return (
            f"{site}:{self.prob:g}:{self.kind}"
            f":{self.after_n}:{self.max_fires}"
        )


def parse_spec(text: str) -> FaultSpec:
    """Parse ``site[@match]:prob:kind[:after_n[:max_fires]]``."""
    parts = text.strip().split(":")
    if len(parts) < 3 or len(parts) > 5:
        raise ValueError(
            f"bad fault spec {text!r}: expected "
            "site[@match]:prob:kind[:after_n[:max_fires]]"
        )
    site_part, prob_part, kind = parts[0], parts[1], parts[2]
    site, _, match = site_part.partition("@")
    if site not in SITES:
        raise ValueError(
            f"unknown fault site {site!r}; expected one of "
            f"{', '.join(sorted(SITES))}"
        )
    if kind not in FAULT_KINDS:
        raise ValueError(
            f"unknown fault kind {kind!r}; expected one of "
            f"{', '.join(sorted(FAULT_KINDS))}"
        )
    try:
        prob = float(prob_part)
    except ValueError:
        raise ValueError(
            f"bad fault probability {prob_part!r} in {text!r}"
        ) from None
    if not 0.0 <= prob <= 1.0:
        raise ValueError(f"fault probability {prob:g} outside [0, 1]")
    after_n = int(parts[3]) if len(parts) > 3 and parts[3] else 0
    max_fires = int(parts[4]) if len(parts) > 4 and parts[4] else 0
    if after_n < 0 or max_fires < 0:
        raise ValueError(f"negative count in fault spec {text!r}")
    return FaultSpec(
        site=site,
        prob=prob,
        kind=kind,
        after_n=after_n,
        max_fires=max_fires,
        match=match or None,
    )


@dataclass(slots=True)
class _SiteState:
    """Per-(spec) runtime state: its RNG stream and counters."""

    spec: FaultSpec
    rng: random.Random
    checks: int = 0
    fires: int = 0


class FaultPlan:
    """A set of armed :class:`FaultSpec` entries plus the seeded
    randomness that makes every run replayable: each spec draws from
    its own :class:`random.Random` seeded by ``(seed, site, match)``,
    so the decision sequence at one site is a pure function of the
    seed and that site's check count — independent of thread
    interleaving at *other* sites."""

    def __init__(
        self, specs: list[FaultSpec], seed: int | None = None
    ) -> None:
        if seed is None:
            seed = int.from_bytes(os.urandom(4), "big")
        self.seed = int(seed)
        self.specs = list(specs)
        self._states: dict[str, list[_SiteState]] = {}
        for spec in self.specs:
            stream = random.Random(
                f"{self.seed}\x00{spec.site}\x00{spec.match or ''}"
            )
            self._states.setdefault(spec.site, []).append(
                _SiteState(spec=spec, rng=stream)
            )
        #: Fires per site — the ``ms2_faults_injected_total`` series.
        self.injected: dict[str, int] = {}

    # ------------------------------------------------------------------

    def hit(
        self, site: str, data: Any = None, context: str | None = None
    ) -> Any:
        """One pass through a fault site.  Returns ``data`` (possibly
        corrupted); raises / sleeps / kills when an armed spec fires.

        ``context`` is a site-specific string (a file path, a pool
        key) that ``@match`` filters select on.
        """
        for state in self._states.get(site, ()):
            spec = state.spec
            if spec.match is not None and (
                context is None or spec.match not in context
            ):
                continue
            state.checks += 1
            if state.checks <= spec.after_n:
                continue
            if spec.max_fires and state.fires >= spec.max_fires:
                continue
            if spec.prob < 1.0 and state.rng.random() >= spec.prob:
                continue
            state.fires += 1
            self.injected[site] = self.injected.get(site, 0) + 1
            data = self._fire(spec, site, data)
        return data

    @staticmethod
    def _fire(spec: FaultSpec, site: str, data: Any) -> Any:
        if spec.kind == "io_error":
            raise InjectedFault(site)
        if spec.kind == "conn_reset":
            raise ConnectionResetError(f"injected reset at {site}")
        if spec.kind == "delay":
            time.sleep(DELAY_S)
            return data
        if spec.kind == "kill":
            # A real crash: no exception to catch, no atexit, no
            # flushing — exactly what a SIGKILLed worker looks like.
            os._exit(KILL_EXIT_CODE)
        # corrupt: flip bytes when data flows through; no-op otherwise.
        if isinstance(data, (bytes, bytearray)) and data:
            mangled = bytearray(data)
            mangled[len(mangled) // 2] ^= 0xFF
            return bytes(mangled)
        return data

    # ------------------------------------------------------------------

    def counters(self) -> dict[str, int]:
        """Fires per site (a copy; the ``stats`` op payload)."""
        return dict(self.injected)

    def describe(self) -> str:
        """One replayable line: specs + seed."""
        specs = ",".join(spec.to_string() for spec in self.specs)
        return f"MS2_FAULTS={specs} MS2_FAULT_SEED={self.seed}"


#: The armed plan, or None.  **The** hot-path guard:
#: ``if faults.ACTIVE is not None: ...`` — one attribute test.
ACTIVE: FaultPlan | None = None


def arm(
    *specs: str | FaultSpec, seed: int | None = None
) -> FaultPlan:
    """Arm fault injection process-wide; returns the plan.  Replaces
    any previously armed plan (its counters are discarded)."""
    global ACTIVE
    parsed = [
        spec if isinstance(spec, FaultSpec) else parse_spec(spec)
        for spec in specs
    ]
    ACTIVE = FaultPlan(parsed, seed=seed)
    return ACTIVE


def disarm() -> None:
    """Return to zero-overhead operation."""
    global ACTIVE
    ACTIVE = None


def arm_from_env(environ: Any = None, *, announce: bool = False) -> (
    FaultPlan | None
):
    """Arm from ``MS2_FAULTS`` / ``MS2_FAULT_SEED`` when set (the
    import-time hook; also how spawned worker processes inherit the
    plan).  Returns the plan, or None when the variable is unset or
    empty.  With ``announce``, prints the replay line to stderr."""
    env = environ if environ is not None else os.environ
    raw = env.get(ENV_SPECS, "").strip()
    if not raw:
        return None
    seed_raw = env.get(ENV_SEED, "").strip()
    seed = int(seed_raw) if seed_raw else None
    plan = arm(
        *[part for part in raw.split(",") if part.strip()], seed=seed
    )
    if announce:
        print(
            f"repro: fault injection armed ({plan.describe()})",
            file=sys.stderr,
        )
    return plan


def export_to_env(plan: FaultPlan, environ: Any = None) -> None:
    """Write ``plan`` into the environment so child processes
    (build workers) arm themselves identically at import."""
    env = environ if environ is not None else os.environ
    env[ENV_SPECS] = ",".join(
        spec.to_string() for spec in plan.specs
    )
    env[ENV_SEED] = str(plan.seed)


# Arm from the environment at import so every process in a chaos run
# — CLI, daemon, pool workers — shares one configuration with zero
# per-process plumbing.  Unset (the overwhelmingly common case) this
# is a single dict lookup at import time.
arm_from_env()
