"""Static analyses over macro programs.

Two families live here:

* **Scope analysis over expanded C** — free variables and capture
  detection.  The paper's examples dodge inadvertent capture with
  ``gensym`` and its section 5 discusses automatic hygiene.  Given an
  expansion result whose nodes carry hygiene marks (template-origin
  nodes are marked, user code is not), :func:`detect_captures` reports
  every place where *user* code ends up bound by a
  *template-introduced* declaration — exactly the bugs hygiene
  prevents.  Also exported: :func:`free_identifiers` (names used but
  not bound in a subtree) and :func:`bound_names` (names declared by a
  subtree).

* **Purity analysis over meta-code** — :func:`analyze_macro_purity`
  decides, at definition time, whether a macro's expansion is a pure
  function of its parsed actual parameters.  Only pure macros may be
  memoized by the expansion cache (:mod:`repro.macros.cache`); a
  macro is impure when its meta-body reads or writes ``metadcl``
  state, calls a fresh-name builtin (``gensym``), a semantic builtin
  (``type_of`` / ``has_type`` — their answers depend on the C scope
  at the invocation site), a stateful diagnostic (``warning``), or an
  impure meta-function, transitively.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cast import decls, nodes, stmts
from repro.cast.base import Node, children
from repro.errors import SourceLocation


@dataclass(frozen=True, slots=True)
class Capture:
    """One detected capture: user code's ``name`` is bound by a
    macro-introduced declaration."""

    name: str
    binder_mark: int
    use_loc: SourceLocation

    def __str__(self) -> str:
        return (
            f"{self.use_loc}: user reference to {self.name!r} is "
            f"captured by a macro-introduced declaration "
            f"(expansion #{self.binder_mark})"
        )


def bound_names(node: Node) -> list[str]:
    """Names declared by a declaration (or each declaration in a
    compound's decl-list)."""
    out: list[str] = []
    if isinstance(node, decls.Declaration):
        for item in node.init_declarators:
            if isinstance(item, decls.InitDeclarator):
                name = _declarator_name(item.declarator)
                if name is not None:
                    out.append(name)
    elif isinstance(node, stmts.CompoundStmt):
        for d in node.decls:
            out.extend(bound_names(d))
    return out


def free_identifiers(node: Node) -> set[str]:
    """Identifiers referenced in ``node`` but not bound within it."""
    collector = _FreeVariableScan()
    collector.scan(node, frozenset())
    return collector.free


class _FreeVariableScan:
    def __init__(self) -> None:
        self.free: set[str] = set()

    def scan(self, node: Node, bound: frozenset[str]) -> None:
        if isinstance(node, nodes.Identifier):
            if node.name not in bound:
                self.free.add(node.name)
            return
        if isinstance(node, nodes.Member):
            # Member names are field labels, not variable references.
            self.scan(node.base, bound)
            return
        if isinstance(node, stmts.CompoundStmt):
            inner = bound | frozenset(bound_names(node))
            for d in node.decls:
                self._scan_declaration(d, inner)
            for s in node.stmts:
                self.scan(s, inner)
            return
        if isinstance(node, decls.FunctionDef):
            params = frozenset(_param_names(node.declarator))
            self.scan(node.body, bound | params)
            return
        for child in children(node):
            self.scan(child, bound)

    def _scan_declaration(
        self, d: Node, bound: frozenset[str]
    ) -> None:
        if isinstance(d, decls.Declaration):
            for item in d.init_declarators:
                if isinstance(item, decls.InitDeclarator) and item.init:
                    self.scan(item.init, bound)
        else:
            self.scan(d, bound)


def detect_captures(root: Node) -> list[Capture]:
    """Find user identifiers bound by macro-introduced declarations.

    A capture is an :class:`~repro.cast.nodes.Identifier` with no
    hygiene mark (user-written) whose innermost binder is a
    declaration *with* a mark (macro template output).  Running the
    expander with ``hygienic=True`` makes this list empty by
    construction.
    """
    finder = _CaptureScan()
    finder.scan(root, {})
    return finder.captures


class _CaptureScan:
    def __init__(self) -> None:
        self.captures: list[Capture] = []

    def scan(self, node: Node, binders: dict[str, int | None]) -> None:
        if isinstance(node, nodes.Identifier):
            binder_mark = binders.get(node.name, "unbound")
            if (
                binder_mark != "unbound"
                and binder_mark is not None
                and node.mark is None
                # gensym output has a synthetic location (offset -1);
                # only genuinely user-written references can be captured.
                and node.loc.offset >= 0
            ):
                self.captures.append(
                    Capture(node.name, binder_mark, node.loc)
                )
            return
        if isinstance(node, nodes.Member):
            self.scan(node.base, binders)
            return
        if isinstance(node, stmts.CompoundStmt):
            inner = dict(binders)
            for d in node.decls:
                if isinstance(d, decls.Declaration):
                    for name in bound_names(d):
                        inner[name] = d.mark
            for d in node.decls:
                if isinstance(d, decls.Declaration):
                    for item in d.init_declarators:
                        if (
                            isinstance(item, decls.InitDeclarator)
                            and item.init is not None
                        ):
                            self.scan(item.init, inner)
            for s in node.stmts:
                self.scan(s, inner)
            return
        if isinstance(node, decls.FunctionDef):
            inner = dict(binders)
            for name in _param_names(node.declarator):
                inner[name] = node.mark
            self.scan(node.body, inner)
            return
        for child in children(node):
            self.scan(child, binders)


def undeclared_identifiers(
    unit: Node, externs: frozenset[str] | set[str] = frozenset()
) -> dict[str, set[str]]:
    """Per-function report of identifiers used without a declaration.

    A lightweight post-expansion lint: for each function definition in
    a translation unit, the free identifiers that are neither file-
    scope declarations, enum constants, other functions, nor listed in
    ``externs``.  Macro packages use this in tests to prove their
    generated code is self-contained up to its documented runtime
    support.
    """
    file_scope: set[str] = set(externs)
    functions: list[decls.FunctionDef] = []
    items = getattr(unit, "items", None)
    if items is None:
        raise TypeError("undeclared_identifiers expects a TranslationUnit")
    for item in items:
        if isinstance(item, decls.Declaration):
            file_scope.update(bound_names(item))
            file_scope.update(_enum_constants_of(item))
        elif isinstance(item, decls.FunctionDef):
            name = _declarator_name(item.declarator)
            if name is not None:
                file_scope.add(name)
            functions.append(item)
    report: dict[str, set[str]] = {}
    for fn in functions:
        name = _declarator_name(fn.declarator) or "<anonymous>"
        missing = free_identifiers(fn) - file_scope
        if missing:
            report[name] = missing
    return report


def _enum_constants_of(declaration: decls.Declaration) -> set[str]:
    from repro.cast import ctypes

    ts = declaration.specs.type_spec
    if isinstance(ts, ctypes.EnumType) and ts.enumerators:
        return {
            e.name
            for e in ts.enumerators
            if isinstance(e, ctypes.Enumerator)
        }
    return set()


def _declarator_name(declarator: Node) -> str | None:
    current = declarator
    while True:
        if isinstance(current, decls.NameDeclarator):
            return current.name
        if isinstance(
            current,
            (decls.PointerDeclarator, decls.ArrayDeclarator,
             decls.FuncDeclarator),
        ):
            current = current.inner
            continue
        return None


def _param_names(declarator: Node) -> list[str]:
    current = declarator
    while current is not None and not isinstance(
        current, decls.FuncDeclarator
    ):
        current = getattr(current, "inner", None)
    if current is None:
        return []
    names: list[str] = []
    for p in current.params:
        if isinstance(p, decls.ParamDecl):
            name = _declarator_name(p.declarator)
            if name is not None:
                names.append(name)
    names.extend(current.kr_names)
    return names


# ===========================================================================
# Purity analysis of macro meta-bodies (drives the expansion cache)
# ===========================================================================


@dataclass(frozen=True, slots=True)
class PurityReport:
    """Verdict of :func:`analyze_macro_purity`.

    ``cacheable`` is true when every observable effect of the macro is
    a function of its actual parameters; ``reasons`` lists, for the
    impure case, what disqualified it (human-readable, used by tests
    and ``--stats`` diagnostics).
    """

    cacheable: bool
    reasons: tuple[str, ...] = ()


#: Builtins whose results depend on interpreter or invocation-site
#: state: fresh-name generators, the semantic-macro substrate, and the
#: warning accumulator.
IMPURE_BUILTINS = frozenset({"gensym", "type_of", "has_type", "warning"})

#: Placeholder node classes — the only routes from a backquote
#: template back into meta-code.
_PLACEHOLDER_CLASSES = (
    nodes.PlaceholderExpr,
    stmts.PlaceholderStmt,
    decls.PlaceholderDecl,
    decls.PlaceholderDeclarator,
)


def analyze_macro_purity(definition, meta_globals) -> PurityReport:
    """Decide whether ``definition``'s expansion may be memoized.

    ``meta_globals`` is the interpreter's global
    :class:`~repro.meta.frames.Frame` at definition time: meta-function
    names resolve to closures there (analyzed transitively, memoized,
    cycle-tolerant), every other global binding is ``metadcl`` state.
    """
    scan = _PurityScan(meta_globals)
    params = {arg.name for arg in _pattern_params(definition.pattern)}
    scan.analyze_compound(definition.body, params)
    reasons = tuple(dict.fromkeys(scan.reasons))  # dedup, keep order
    return PurityReport(cacheable=not reasons, reasons=reasons)


def _pattern_params(pattern):
    # Only top-level pattern elements bind names in the macro's frame;
    # sub-pattern (tuple) components are reached via member selection.
    from repro.macros.pattern import ParamElement

    return [
        element
        for element in pattern.elements
        if isinstance(element, ParamElement)
    ]


class _PurityScan:
    """Walks meta-code, mirroring the interpreter's evaluation rules
    closely enough to classify every name reference."""

    def __init__(self, meta_globals, closure_memo=None) -> None:
        self.globals = meta_globals
        self.reasons: list[str] = []
        #: id(closure) -> PurityReport | None (None = in progress; a
        #: cycle with no impure trigger elsewhere is pure).
        self._closure_memo = (
            closure_memo if closure_memo is not None else {}
        )

    # -- scope bookkeeping ---------------------------------------------

    def analyze_compound(self, body, bound: set[str]) -> None:
        inner = set(bound)
        for d in body.decls:
            if isinstance(d, decls.Declaration):
                inner.update(bound_names(d))
        for d in body.decls:
            if isinstance(d, decls.Declaration):
                for item in d.init_declarators:
                    if (
                        isinstance(item, decls.InitDeclarator)
                        and item.init is not None
                    ):
                        self.analyze_expr(item.init, inner)
        for s in body.stmts:
            self.analyze_stmt(s, inner)

    # -- statements -----------------------------------------------------

    def analyze_stmt(self, s: Node, bound: set[str]) -> None:
        if isinstance(s, stmts.CompoundStmt):
            self.analyze_compound(s, bound)
        elif isinstance(s, stmts.ExprStmt):
            self.analyze_expr(s.expr, bound)
        elif isinstance(s, stmts.IfStmt):
            self.analyze_expr(s.cond, bound)
            self.analyze_stmt(s.then, bound)
            if s.otherwise is not None:
                self.analyze_stmt(s.otherwise, bound)
        elif isinstance(s, stmts.WhileStmt):
            self.analyze_expr(s.cond, bound)
            self.analyze_stmt(s.body, bound)
        elif isinstance(s, stmts.DoWhileStmt):
            self.analyze_stmt(s.body, bound)
            self.analyze_expr(s.cond, bound)
        elif isinstance(s, stmts.ForStmt):
            if s.init is not None:
                self.analyze_expr(s.init, bound)
            if s.cond is not None:
                self.analyze_expr(s.cond, bound)
            if s.step is not None:
                self.analyze_expr(s.step, bound)
            self.analyze_stmt(s.body, bound)
        elif isinstance(s, stmts.SwitchStmt):
            self.analyze_expr(s.expr, bound)
            self.analyze_stmt(s.body, bound)
        elif isinstance(s, (stmts.CaseStmt, stmts.DefaultStmt)):
            expr = getattr(s, "expr", None)
            if expr is not None:
                self.analyze_expr(expr, bound)
            self.analyze_stmt(s.stmt, bound)
        elif isinstance(s, stmts.ReturnStmt):
            if s.expr is not None:
                self.analyze_expr(s.expr, bound)
        elif isinstance(s, stmts.LabeledStmt):
            self.analyze_stmt(s.stmt, bound)
        elif isinstance(
            s, (stmts.BreakStmt, stmts.ContinueStmt, stmts.NullStmt)
        ):
            pass
        else:
            # Unknown statement form: refuse to certify purity.
            self.reasons.append(
                f"unanalyzable statement form {type(s).__name__}"
            )

    # -- expressions ----------------------------------------------------

    def analyze_expr(self, e: Node, bound: set[str]) -> None:
        if isinstance(e, nodes.Identifier):
            self._classify_read(e.name, bound)
        elif isinstance(
            e,
            (nodes.IntLit, nodes.FloatLit, nodes.CharLit, nodes.StringLit),
        ):
            pass
        elif isinstance(e, (nodes.UnaryOp, nodes.PostfixOp)):
            if e.op in ("++", "--"):
                self._classify_write(e.operand, bound)
            self.analyze_expr(e.operand, bound)
        elif isinstance(e, nodes.BinaryOp):
            self.analyze_expr(e.left, bound)
            self.analyze_expr(e.right, bound)
        elif isinstance(e, nodes.AssignOp):
            self._classify_write(e.target, bound)
            self.analyze_expr(e.target, bound)
            self.analyze_expr(e.value, bound)
        elif isinstance(e, nodes.ConditionalOp):
            self.analyze_expr(e.cond, bound)
            self.analyze_expr(e.then, bound)
            self.analyze_expr(e.otherwise, bound)
        elif isinstance(e, nodes.CommaOp):
            self.analyze_expr(e.left, bound)
            self.analyze_expr(e.right, bound)
        elif isinstance(e, nodes.Index):
            self.analyze_expr(e.base, bound)
            self.analyze_expr(e.index, bound)
        elif isinstance(e, nodes.Member):
            self.analyze_expr(e.base, bound)
        elif isinstance(e, nodes.Cast):
            self.analyze_expr(e.operand, bound)
        elif isinstance(e, nodes.Call):
            self._analyze_call(e, bound)
        elif isinstance(e, nodes.Backquote):
            self._analyze_template(e.template, bound)
        elif isinstance(e, nodes.AnonFunction):
            inner = bound | {name for name, _ in e.params}
            self.analyze_expr(e.body, inner)
        elif isinstance(e, _PLACEHOLDER_CLASSES):
            self.analyze_expr(e.meta_expr, bound)
        else:
            self.reasons.append(
                f"unanalyzable expression form {type(e).__name__}"
            )

    # -- classification -------------------------------------------------

    def _classify_read(self, name: str, bound: set[str]) -> None:
        if name in bound:
            return
        value = self._global_value(name)
        if value is _UNBOUND:
            self.reasons.append(
                f"references unknown or later-defined name {name!r}"
            )
        elif _is_closure(value):
            self._require_pure_closure(name, value)
        else:
            self.reasons.append(f"reads metadcl state {name!r}")

    def _classify_write(self, target: Node, bound: set[str]) -> None:
        base = target
        while isinstance(base, (nodes.Index, nodes.Member)):
            base = base.base
        if isinstance(base, nodes.Identifier) and base.name not in bound:
            self.reasons.append(f"writes metadcl state {base.name!r}")

    def _analyze_call(self, e: nodes.Call, bound: set[str]) -> None:
        for arg in e.args:
            self.analyze_expr(arg, bound)
        func = e.func
        if not isinstance(func, nodes.Identifier):
            self.analyze_expr(func, bound)
            self.reasons.append("calls a computed function value")
            return
        name = func.name
        if name in bound:
            # A local bound to some closure: its body was analyzed at
            # its definition site iff it is an anonymous function we
            # saw; anything else is untrackable.
            self.reasons.append(
                f"calls through local variable {name!r}"
            )
            return
        value = self._global_value(name)
        if _is_closure(value):
            self._require_pure_closure(name, value)
            return
        if value is not _UNBOUND:
            self.reasons.append(f"calls metadcl value {name!r}")
            return
        from repro.meta.builtins import BUILTIN_IMPLS

        if name in BUILTIN_IMPLS:
            if name in IMPURE_BUILTINS:
                self.reasons.append(f"calls impure builtin {name!r}")
            return
        self.reasons.append(f"calls unknown meta-function {name!r}")

    def _require_pure_closure(self, name: str, closure) -> None:
        report = self._closure_purity(closure)
        if report is not None and not report.cacheable:
            self.reasons.append(
                f"calls impure meta-function {name!r} "
                f"({'; '.join(report.reasons)})"
            )

    def _closure_purity(self, closure):
        key = id(closure)
        if key in self._closure_memo:
            return self._closure_memo[key]  # may be None: in progress
        self._closure_memo[key] = None
        sub = _PurityScan(self.globals, self._closure_memo)
        if getattr(closure, "is_anon", False):
            sub.analyze_expr(closure.body, set(closure.params))
        else:
            sub.analyze_compound(closure.body, set(closure.params))
        report = PurityReport(
            cacheable=not sub.reasons, reasons=tuple(sub.reasons)
        )
        self._closure_memo[key] = report
        return report

    def _global_value(self, name: str):
        frame = self.globals
        while frame is not None:
            if name in frame.values:
                return frame.values[name]
            frame = frame.parent
        return _UNBOUND

    # -- templates ------------------------------------------------------

    def _analyze_template(self, template, bound: set[str]) -> None:
        """Template C code is inert data; only the meta-expressions
        inside placeholder holes execute at expansion time."""
        if isinstance(template, list):
            for item in template:
                self._analyze_template(item, bound)
            return
        if not isinstance(template, Node):
            return
        if isinstance(template, _PLACEHOLDER_CLASSES):
            self.analyze_expr(template.meta_expr, bound)
            return
        for child in children(template):
            self._analyze_template(child, bound)


class _Unbound:
    def __repr__(self) -> str:  # pragma: no cover
        return "<unbound>"


_UNBOUND = _Unbound()


def _is_closure(value) -> bool:
    from repro.meta.values import Closure

    return isinstance(value, Closure)
