"""Scope analysis over expanded C: free variables and capture detection.

The paper's examples dodge inadvertent capture with ``gensym`` and its
section 5 discusses automatic hygiene.  This module provides the
analysis side: given an expansion result whose nodes carry hygiene
marks (template-origin nodes are marked, user code is not),
:func:`detect_captures` reports every place where *user* code ends up
bound by a *template-introduced* declaration — exactly the bugs
hygiene prevents.

Also exported: :func:`free_identifiers` (names used but not bound in a
subtree) and :func:`bound_names` (names declared by a subtree), both
useful for macro authors writing non-local transformations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cast import decls, nodes, stmts
from repro.cast.base import Node, children
from repro.errors import SourceLocation


@dataclass(frozen=True, slots=True)
class Capture:
    """One detected capture: user code's ``name`` is bound by a
    macro-introduced declaration."""

    name: str
    binder_mark: int
    use_loc: SourceLocation

    def __str__(self) -> str:
        return (
            f"{self.use_loc}: user reference to {self.name!r} is "
            f"captured by a macro-introduced declaration "
            f"(expansion #{self.binder_mark})"
        )


def bound_names(node: Node) -> list[str]:
    """Names declared by a declaration (or each declaration in a
    compound's decl-list)."""
    out: list[str] = []
    if isinstance(node, decls.Declaration):
        for item in node.init_declarators:
            if isinstance(item, decls.InitDeclarator):
                name = _declarator_name(item.declarator)
                if name is not None:
                    out.append(name)
    elif isinstance(node, stmts.CompoundStmt):
        for d in node.decls:
            out.extend(bound_names(d))
    return out


def free_identifiers(node: Node) -> set[str]:
    """Identifiers referenced in ``node`` but not bound within it."""
    collector = _FreeVariableScan()
    collector.scan(node, frozenset())
    return collector.free


class _FreeVariableScan:
    def __init__(self) -> None:
        self.free: set[str] = set()

    def scan(self, node: Node, bound: frozenset[str]) -> None:
        if isinstance(node, nodes.Identifier):
            if node.name not in bound:
                self.free.add(node.name)
            return
        if isinstance(node, nodes.Member):
            # Member names are field labels, not variable references.
            self.scan(node.base, bound)
            return
        if isinstance(node, stmts.CompoundStmt):
            inner = bound | frozenset(bound_names(node))
            for d in node.decls:
                self._scan_declaration(d, inner)
            for s in node.stmts:
                self.scan(s, inner)
            return
        if isinstance(node, decls.FunctionDef):
            params = frozenset(_param_names(node.declarator))
            self.scan(node.body, bound | params)
            return
        for child in children(node):
            self.scan(child, bound)

    def _scan_declaration(
        self, d: Node, bound: frozenset[str]
    ) -> None:
        if isinstance(d, decls.Declaration):
            for item in d.init_declarators:
                if isinstance(item, decls.InitDeclarator) and item.init:
                    self.scan(item.init, bound)
        else:
            self.scan(d, bound)


def detect_captures(root: Node) -> list[Capture]:
    """Find user identifiers bound by macro-introduced declarations.

    A capture is an :class:`~repro.cast.nodes.Identifier` with no
    hygiene mark (user-written) whose innermost binder is a
    declaration *with* a mark (macro template output).  Running the
    expander with ``hygienic=True`` makes this list empty by
    construction.
    """
    finder = _CaptureScan()
    finder.scan(root, {})
    return finder.captures


class _CaptureScan:
    def __init__(self) -> None:
        self.captures: list[Capture] = []

    def scan(self, node: Node, binders: dict[str, int | None]) -> None:
        if isinstance(node, nodes.Identifier):
            binder_mark = binders.get(node.name, "unbound")
            if (
                binder_mark != "unbound"
                and binder_mark is not None
                and node.mark is None
                # gensym output has a synthetic location (offset -1);
                # only genuinely user-written references can be captured.
                and node.loc.offset >= 0
            ):
                self.captures.append(
                    Capture(node.name, binder_mark, node.loc)
                )
            return
        if isinstance(node, nodes.Member):
            self.scan(node.base, binders)
            return
        if isinstance(node, stmts.CompoundStmt):
            inner = dict(binders)
            for d in node.decls:
                if isinstance(d, decls.Declaration):
                    for name in bound_names(d):
                        inner[name] = d.mark
            for d in node.decls:
                if isinstance(d, decls.Declaration):
                    for item in d.init_declarators:
                        if (
                            isinstance(item, decls.InitDeclarator)
                            and item.init is not None
                        ):
                            self.scan(item.init, inner)
            for s in node.stmts:
                self.scan(s, inner)
            return
        if isinstance(node, decls.FunctionDef):
            inner = dict(binders)
            for name in _param_names(node.declarator):
                inner[name] = node.mark
            self.scan(node.body, inner)
            return
        for child in children(node):
            self.scan(child, binders)


def undeclared_identifiers(
    unit: Node, externs: frozenset[str] | set[str] = frozenset()
) -> dict[str, set[str]]:
    """Per-function report of identifiers used without a declaration.

    A lightweight post-expansion lint: for each function definition in
    a translation unit, the free identifiers that are neither file-
    scope declarations, enum constants, other functions, nor listed in
    ``externs``.  Macro packages use this in tests to prove their
    generated code is self-contained up to its documented runtime
    support.
    """
    file_scope: set[str] = set(externs)
    functions: list[decls.FunctionDef] = []
    items = getattr(unit, "items", None)
    if items is None:
        raise TypeError("undeclared_identifiers expects a TranslationUnit")
    for item in items:
        if isinstance(item, decls.Declaration):
            file_scope.update(bound_names(item))
            file_scope.update(_enum_constants_of(item))
        elif isinstance(item, decls.FunctionDef):
            name = _declarator_name(item.declarator)
            if name is not None:
                file_scope.add(name)
            functions.append(item)
    report: dict[str, set[str]] = {}
    for fn in functions:
        name = _declarator_name(fn.declarator) or "<anonymous>"
        missing = free_identifiers(fn) - file_scope
        if missing:
            report[name] = missing
    return report


def _enum_constants_of(declaration: decls.Declaration) -> set[str]:
    from repro.cast import ctypes

    ts = declaration.specs.type_spec
    if isinstance(ts, ctypes.EnumType) and ts.enumerators:
        return {
            e.name
            for e in ts.enumerators
            if isinstance(e, ctypes.Enumerator)
        }
    return set()


def _declarator_name(declarator: Node) -> str | None:
    current = declarator
    while True:
        if isinstance(current, decls.NameDeclarator):
            return current.name
        if isinstance(
            current,
            (decls.PointerDeclarator, decls.ArrayDeclarator,
             decls.FuncDeclarator),
        ):
            current = current.inner
            continue
        return None


def _param_names(declarator: Node) -> list[str]:
    current = declarator
    while current is not None and not isinstance(
        current, decls.FuncDeclarator
    ):
        current = getattr(current, "inner", None)
    if current is None:
        return []
    names: list[str] = []
    for p in current.params:
        if isinstance(p, decls.ParamDecl):
            name = _declarator_name(p.declarator)
            if name is not None:
                names.append(name)
    names.extend(current.kr_names)
    return names
