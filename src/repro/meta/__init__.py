"""The embedded meta-language interpreter (a C subset + AST values)."""

from repro.meta.frames import NULL, Frame
from repro.meta.interp import Interpreter
from repro.meta.values import Closure, truthy, values_equal

__all__ = ["Closure", "Frame", "Interpreter", "NULL", "truthy",
           "values_equal"]
