"""The embedded interpreter for the meta-language (a C subset).

"Because the macro language is C extended with AST datatypes and a few
new primitive functions, macro expansion is simply a matter of running
a C program on the parsed arguments of a macro invocation. ... The
present implementation uses an embedded interpreter for a subset of
the C language to execute meta-code." (paper section 3)

This is that interpreter: a tree-walking evaluator over the same AST
the parser builds, with AST values, lists, tuples, closures, and the
builtin functions of :mod:`repro.meta.builtins`.
"""

from __future__ import annotations

from typing import Any

from repro.asttypes.convert import bindings_from_declaration
from repro.asttypes.types import AstType, CType, ListType, TupleType
from repro.cast import decls, nodes, stmts
from repro.cast.base import Node
from repro.errors import SYNTHETIC, MetaInterpError
from repro.macros.template import instantiate
from repro.meta.builtins import BUILTIN_IMPLS
from repro.meta.frames import NULL, Frame, NullValue
from repro.meta.values import (
    Closure,
    extract_component,
    truthy,
    values_equal,
)

#: Fuel limit: a runaway meta-program is an error, not a hang.
MAX_STEPS = 5_000_000


class _Return(Exception):
    def __init__(self, value: Any) -> None:
        self.value = value


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class Interpreter:
    """Evaluates meta-code: macro bodies, meta-functions, metadcl inits."""

    def __init__(self) -> None:
        self.globals = Frame()
        self.warnings: list[str] = []
        self._gensym_counter = 0
        self._steps = 0
        #: Hygiene mark stamped on template-origin nodes; managed by
        #: the expander (one fresh mark per expansion).
        self.current_mark: int | None = None
        #: The C scope live at the invocation site (semantic-macro
        #: substrate, §5); set by the engine before each expansion.
        self.semantic_scope = None
        #: Optional :class:`~repro.stats.PipelineStats` and
        #: :class:`~repro.trace.PhaseProfiler`, hooked up by the engine.
        self.stats = None
        self.profiler = None

    # ==================================================================
    # Public entry points
    # ==================================================================

    def gensym(self, prefix: str = "g") -> nodes.Identifier:
        """A fresh identifier that cannot collide with user code."""
        self._gensym_counter += 1
        if self.stats is not None:
            self.stats.gensym_calls += 1
        return nodes.Identifier(
            f"__{prefix}_{self._gensym_counter}", loc=SYNTHETIC
        )

    def run_meta_declaration(self, declaration: decls.Declaration) -> None:
        """Execute a ``metadcl`` (bind globals, run initializers)."""
        bindings = bindings_from_declaration(declaration)
        for (name, asttype), item in zip(
            bindings, declaration.init_declarators
        ):
            value: Any
            if (
                isinstance(item, decls.InitDeclarator)
                and item.init is not None
            ):
                try:
                    value = self.eval(item.init, self.globals)
                except RecursionError:
                    raise MetaInterpError(
                        "meta-program exceeded the interpreter's "
                        f"recursion limit initializing {name!r}",
                        item.loc,
                    ) from None
            else:
                value = default_value(asttype)
            self.globals.define(name, value)

    def define_meta_function(self, funcdef: decls.FunctionDef) -> Closure:
        """Register a meta-function as a global closure."""
        name, params = _function_signature(funcdef)
        closure = Closure(name, params, funcdef.body, self.globals)
        self.globals.define(name, closure)
        return closure

    def call_macro(self, definition: Any, bindings: dict[str, Any]) -> Any:
        """Run a macro body with its actual parameters bound."""
        frame = self.globals.child()
        for name, value in bindings.items():
            frame.define(name, value if value is not None else NULL)
        try:
            self.exec_compound(definition.body, frame)
        except _Return as ret:
            return ret.value
        except RecursionError:
            # Deep meta-recursion can hit the host interpreter's own
            # stack limit before the step-count fuel runs out; users
            # must still only ever see Ms2Error subclasses.
            raise MetaInterpError(
                "meta-program exceeded the interpreter's recursion "
                f"limit (while expanding {definition.name!r}); deeply "
                "recursive meta-function?",
                definition.body.loc,
            ) from None
        raise MetaInterpError(
            f"macro {definition.name!r} finished without returning a value",
            definition.body.loc,
        )

    def call_closure(self, closure: Closure, args: list[Any], loc: Any) -> Any:
        if len(args) != len(closure.params):
            raise MetaInterpError(
                f"{closure.name or 'anonymous function'} expects "
                f"{len(closure.params)} argument(s), got {len(args)}",
                loc,
            )
        # A closure compiled by :mod:`repro.macros.codegen` carries a
        # Python implementation of its body; dispatch to it directly
        # (duck-typed to avoid an import cycle).
        pyfunc = getattr(closure, "pyfunc", None)
        if pyfunc is not None:
            return pyfunc(self, args)
        frame = closure.frame.child()
        for name, value in zip(closure.params, args):
            frame.define(name, value)
        if closure.is_anon:
            # Anonymous functions return their body expression's value.
            return self.eval(closure.body, frame)
        try:
            self.exec_compound(closure.body, frame)
        except _Return as ret:
            return ret.value
        return NULL

    # ==================================================================
    # Statements
    # ==================================================================

    def _tick(self, loc: Any) -> None:
        self._steps += 1
        if self._steps > MAX_STEPS:
            raise MetaInterpError(
                "meta-program exceeded its execution budget "
                f"({MAX_STEPS} steps); infinite loop in a macro body?",
                loc,
            )

    def exec_compound(self, body: stmts.CompoundStmt, frame: Frame) -> None:
        inner = frame.child()
        for d in body.decls:
            self.exec_declaration(d, inner)
        for s in body.stmts:
            self.exec_stmt(s, inner)

    def exec_declaration(self, d: Node, frame: Frame) -> None:
        if not isinstance(d, decls.Declaration):
            raise MetaInterpError(
                f"cannot execute {type(d).__name__} in meta-code", d.loc
            )
        bindings = bindings_from_declaration(d)
        for (name, asttype), item in zip(bindings, d.init_declarators):
            if isinstance(item, decls.InitDeclarator) and item.init is not None:
                value = self.eval(item.init, frame)
            else:
                value = default_value(asttype)
            frame.define(name, value)

    def exec_stmt(self, s: Node, frame: Frame) -> None:
        self._tick(s.loc)
        if isinstance(s, stmts.ExprStmt):
            self.eval(s.expr, frame)
        elif isinstance(s, stmts.CompoundStmt):
            self.exec_compound(s, frame)
        elif isinstance(s, stmts.IfStmt):
            if truthy(self.eval(s.cond, frame), s.loc):
                self.exec_stmt(s.then, frame)
            elif s.otherwise is not None:
                self.exec_stmt(s.otherwise, frame)
        elif isinstance(s, stmts.WhileStmt):
            while truthy(self.eval(s.cond, frame), s.loc):
                self._tick(s.loc)
                try:
                    self.exec_stmt(s.body, frame)
                except _Break:
                    break
                except _Continue:
                    continue
        elif isinstance(s, stmts.DoWhileStmt):
            while True:
                self._tick(s.loc)
                try:
                    self.exec_stmt(s.body, frame)
                except _Break:
                    break
                except _Continue:
                    pass
                if not truthy(self.eval(s.cond, frame), s.loc):
                    break
        elif isinstance(s, stmts.ForStmt):
            if s.init is not None:
                self.eval(s.init, frame)
            while s.cond is None or truthy(self.eval(s.cond, frame), s.loc):
                self._tick(s.loc)
                try:
                    self.exec_stmt(s.body, frame)
                except _Break:
                    break
                except _Continue:
                    pass
                if s.step is not None:
                    self.eval(s.step, frame)
        elif isinstance(s, stmts.SwitchStmt):
            self._exec_switch(s, frame)
        elif isinstance(s, stmts.ReturnStmt):
            value = NULL if s.expr is None else self.eval(s.expr, frame)
            raise _Return(value)
        elif isinstance(s, stmts.BreakStmt):
            raise _Break()
        elif isinstance(s, stmts.ContinueStmt):
            raise _Continue()
        elif isinstance(s, stmts.NullStmt):
            return
        elif isinstance(s, stmts.LabeledStmt):
            self.exec_stmt(s.stmt, frame)
        else:
            raise MetaInterpError(
                f"statement form {type(s).__name__} is not executable "
                "in meta-code",
                s.loc,
            )

    def _exec_switch(self, s: stmts.SwitchStmt, frame: Frame) -> None:
        value = self.eval(s.expr, frame)
        if not isinstance(s.body, stmts.CompoundStmt):
            raise MetaInterpError(
                "meta-code switch requires a compound body", s.loc
            )
        entries = s.body.stmts
        start: int | None = None
        default_start: int | None = None
        for i, entry in enumerate(entries):
            if isinstance(entry, stmts.CaseStmt):
                case_value = self.eval(entry.expr, frame)
                if values_equal(case_value, value):
                    start = i
                    break
            elif isinstance(entry, stmts.DefaultStmt) and (
                default_start is None
            ):
                default_start = i
        if start is None:
            start = default_start
        if start is None:
            return
        try:
            for entry in entries[start:]:
                if isinstance(entry, stmts.CaseStmt):
                    self.exec_stmt(entry.stmt, frame)
                elif isinstance(entry, stmts.DefaultStmt):
                    self.exec_stmt(entry.stmt, frame)
                else:
                    self.exec_stmt(entry, frame)
        except _Break:
            return

    # ==================================================================
    # Expressions
    # ==================================================================

    def eval(self, e: Node, frame: Frame) -> Any:
        self._tick(e.loc)
        method = getattr(self, "_eval_" + type(e).__name__, None)
        if method is None:
            raise MetaInterpError(
                f"expression form {type(e).__name__} is not executable "
                "in meta-code",
                e.loc,
            )
        return method(e, frame)

    # -- literals / names ------------------------------------------------

    def _eval_Identifier(self, e: nodes.Identifier, frame: Frame) -> Any:
        return frame.lookup(e.name, e.loc)

    def _eval_IntLit(self, e: nodes.IntLit, frame: Frame) -> Any:
        return e.value

    def _eval_FloatLit(self, e: nodes.FloatLit, frame: Frame) -> Any:
        return e.value

    def _eval_CharLit(self, e: nodes.CharLit, frame: Frame) -> Any:
        return e.value

    def _eval_StringLit(self, e: nodes.StringLit, frame: Frame) -> Any:
        return e.value

    # -- operators -----------------------------------------------------------

    def _eval_UnaryOp(self, e: nodes.UnaryOp, frame: Frame) -> Any:
        if e.op in ("++", "--"):
            old = self.eval(e.operand, frame)
            _require_int(old, e.loc)
            new = old + (1 if e.op == "++" else -1)
            self._assign_to(e.operand, new, frame)
            return new
        value = self.eval(e.operand, frame)
        if e.op == "*":
            if isinstance(value, list):
                if not value:
                    raise MetaInterpError(
                        "head (*) of an empty list", e.loc
                    )
                return value[0]
            raise MetaInterpError(
                "unary * applies to meta-lists only", e.loc
            )
        if e.op == "-":
            _require_number(value, e.loc)
            return -value
        if e.op == "+":
            _require_number(value, e.loc)
            return value
        if e.op == "!":
            return int(not truthy(value, e.loc))
        if e.op == "~":
            _require_int(value, e.loc)
            return ~value
        raise MetaInterpError(f"operator {e.op!r} not executable", e.loc)

    def _eval_PostfixOp(self, e: nodes.PostfixOp, frame: Frame) -> Any:
        old = self.eval(e.operand, frame)
        _require_int(old, e.loc)
        new = old + (1 if e.op == "++" else -1)
        self._assign_to(e.operand, new, frame)
        return old

    def _eval_BinaryOp(self, e: nodes.BinaryOp, frame: Frame) -> Any:
        op = e.op
        if op == "&&":
            left = self.eval(e.left, frame)
            if not truthy(left, e.loc):
                return 0
            return int(truthy(self.eval(e.right, frame), e.loc))
        if op == "||":
            left = self.eval(e.left, frame)
            if truthy(left, e.loc):
                return 1
            return int(truthy(self.eval(e.right, frame), e.loc))

        left = self.eval(e.left, frame)
        right = self.eval(e.right, frame)

        # List arithmetic: xs + 1 is cdr, xs - 1 rewinds (unsupported).
        if isinstance(left, list) and op == "+":
            _require_int(right, e.loc)
            if right < 0 or right > len(left):
                raise MetaInterpError(
                    f"list offset {right} out of range "
                    f"(list of {len(left)})",
                    e.loc,
                )
            return left[right:]

        if op == "==":
            return int(values_equal(left, right))
        if op == "!=":
            return int(not values_equal(left, right))

        _require_number(left, e.loc)
        _require_number(right, e.loc)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise MetaInterpError("division by zero in meta-code", e.loc)
            if isinstance(left, int) and isinstance(right, int):
                return _c_div(left, right)
            return left / right
        if op == "%":
            if right == 0:
                raise MetaInterpError("modulo by zero in meta-code", e.loc)
            return _c_mod(left, right)
        if op == "<":
            return int(left < right)
        if op == ">":
            return int(left > right)
        if op == "<=":
            return int(left <= right)
        if op == ">=":
            return int(left >= right)
        if op == "<<":
            _require_int(left, e.loc)
            _require_int(right, e.loc)
            return left << right
        if op == ">>":
            _require_int(left, e.loc)
            _require_int(right, e.loc)
            return left >> right
        if op == "&":
            return left & right
        if op == "|":
            return left | right
        if op == "^":
            return left ^ right
        raise MetaInterpError(f"operator {op!r} not executable", e.loc)

    def _eval_AssignOp(self, e: nodes.AssignOp, frame: Frame) -> Any:
        if e.op == "=":
            value = self.eval(e.value, frame)
        else:
            binop = nodes.BinaryOp(
                e.op[:-1], e.target, e.value, loc=e.loc
            )
            value = self._eval_BinaryOp(binop, frame)
        self._assign_to(e.target, value, frame)
        return value

    def _assign_to(self, target: Node, value: Any, frame: Frame) -> None:
        if isinstance(target, nodes.Identifier):
            frame.assign(target.name, value, target.loc)
            return
        if isinstance(target, nodes.Index):
            seq = self.eval(target.base, frame)
            index = self.eval(target.index, frame)
            if not isinstance(seq, list) or not isinstance(index, int):
                raise MetaInterpError(
                    "indexed assignment requires a list and an int",
                    target.loc,
                )
            if index < 0 or index >= len(seq):
                raise MetaInterpError(
                    f"list index {index} out of range", target.loc
                )
            seq[index] = value
            return
        if isinstance(target, nodes.Member):
            base = self.eval(target.base, frame)
            if isinstance(base, nodes.TupleValue):
                for f in base.fields:
                    if f.name == target.name:
                        f.value = value
                        return
                raise MetaInterpError(
                    f"tuple has no field {target.name!r}", target.loc
                )
            raise MetaInterpError(
                "member assignment requires a tuple value", target.loc
            )
        raise MetaInterpError("invalid assignment target", target.loc)

    def _eval_ConditionalOp(self, e: nodes.ConditionalOp, frame: Frame) -> Any:
        if truthy(self.eval(e.cond, frame), e.loc):
            return self.eval(e.then, frame)
        return self.eval(e.otherwise, frame)

    def _eval_CommaOp(self, e: nodes.CommaOp, frame: Frame) -> Any:
        self.eval(e.left, frame)
        return self.eval(e.right, frame)

    def _eval_Index(self, e: nodes.Index, frame: Frame) -> Any:
        seq = self.eval(e.base, frame)
        index = self.eval(e.index, frame)
        if isinstance(seq, list) and isinstance(index, int):
            if index < 0 or index >= len(seq):
                raise MetaInterpError(
                    f"list index {index} out of range (list of {len(seq)})",
                    e.loc,
                )
            return seq[index]
        if isinstance(seq, str) and isinstance(index, int):
            if index < 0 or index >= len(seq):
                raise MetaInterpError("string index out of range", e.loc)
            return ord(seq[index])
        raise MetaInterpError(
            "indexing requires a list (or string) and an int", e.loc
        )

    def _eval_Member(self, e: nodes.Member, frame: Frame) -> Any:
        base = self.eval(e.base, frame)
        if isinstance(base, nodes.TupleValue):
            try:
                return base.get(e.name)
            except KeyError:
                raise MetaInterpError(
                    f"tuple has no field {e.name!r}", e.loc
                ) from None
        if isinstance(base, Node):
            return extract_component(base, e.name, e.loc)
        raise MetaInterpError(
            f"cannot select {e.name!r} from "
            f"{type(base).__name__} value",
            e.loc,
        )

    def _eval_Cast(self, e: nodes.Cast, frame: Frame) -> Any:
        value = self.eval(e.operand, frame)
        if isinstance(value, float):
            return int(value)
        return value

    # -- calls -------------------------------------------------------------

    def _eval_Call(self, e: nodes.Call, frame: Frame) -> Any:
        args = [self.eval(a, frame) for a in e.args]
        if isinstance(e.func, nodes.Identifier):
            name = e.func.name
            if name in frame:
                target = frame.lookup(name, e.loc)
                if not isinstance(target, Closure):
                    raise MetaInterpError(
                        f"{name!r} is not callable", e.loc
                    )
                return self.call_closure(target, args, e.loc)
            impl = BUILTIN_IMPLS.get(name)
            if impl is not None:
                return impl(self, args, e.loc)
            raise MetaInterpError(
                f"call to unknown meta-function {name!r}", e.loc
            )
        target = self.eval(e.func, frame)
        if isinstance(target, Closure):
            return self.call_closure(target, args, e.loc)
        raise MetaInterpError("called value is not a function", e.loc)

    # -- meta forms -----------------------------------------------------------

    def _eval_Backquote(self, e: nodes.Backquote, frame: Frame) -> Any:
        prof = self.profiler
        if prof is None:
            return instantiate(
                e.template,
                evalfn=lambda meta_expr: self.eval(meta_expr, frame),
                mark=self.current_mark,
            )
        with prof.phase("template-fill"):
            return instantiate(
                e.template,
                evalfn=lambda meta_expr: self.eval(meta_expr, frame),
                mark=self.current_mark,
            )

    def _eval_AnonFunction(self, e: nodes.AnonFunction, frame: Frame) -> Any:
        return Closure(
            "", [name for name, _ in e.params], e.body, frame, is_anon=True
        )

    def _eval_PlaceholderExpr(self, e: nodes.PlaceholderExpr, frame: Frame) -> Any:
        # Evaluating a placeholder outside a template means the
        # template machinery leaked; treat as evaluating its meta-expr.
        return self.eval(e.meta_expr, frame)


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def default_value(asttype: AstType) -> Any:
    """The value an uninitialized meta-variable of this type holds."""
    if isinstance(asttype, ListType):
        return []
    if isinstance(asttype, TupleType):
        return nodes.TupleValue(
            [
                nodes.MacroArg(name, default_value(ftype))
                for name, ftype in asttype.fields
            ]
        )
    if isinstance(asttype, CType):
        if asttype.name in ("int", "char"):
            return 0
        if asttype.name == "float":
            return 0.0
        if asttype.name == "string":
            return ""
        return NULL
    return NULL


def _function_signature(funcdef: decls.FunctionDef) -> tuple[str, list[str]]:
    from repro.parser.core import _declarator_name, _find_func_declarator

    name = _declarator_name(funcdef.declarator)
    if name is None:
        raise MetaInterpError(
            "meta-function has no name", funcdef.loc
        )
    func = _find_func_declarator(funcdef.declarator)
    params: list[str] = []
    for p in func.params:
        if isinstance(p, decls.ParamDecl):
            pname = _declarator_name(p.declarator)
            if pname is None:
                raise MetaInterpError(
                    "meta-function parameters must be named", p.loc
                )
            params.append(pname)
    return name, params


def _require_int(value: Any, loc: Any) -> None:
    if not isinstance(value, int) or isinstance(value, bool):
        raise MetaInterpError(
            f"expected an int, got {type(value).__name__}", loc
        )


def _require_number(value: Any, loc: Any) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise MetaInterpError(
            f"expected a number, got {type(value).__name__}", loc
        )


def _c_div(a: int, b: int) -> int:
    """C semantics: truncation toward zero."""
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _c_mod(a: Any, b: Any) -> Any:
    if isinstance(a, int) and isinstance(b, int):
        return a - _c_div(a, b) * b
    raise MetaInterpError("% requires ints", None)
