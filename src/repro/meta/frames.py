"""Runtime environments (frames) for the meta-language interpreter."""

from __future__ import annotations

from typing import Any, Iterator

from repro.errors import MetaInterpError, SourceLocation


class NullValue:
    """The absent value: uninitialized AST variables, absent optionals."""

    _instance: "NullValue | None" = None

    def __new__(cls) -> "NullValue":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NULL"

    def __bool__(self) -> bool:
        return False


#: Singleton null.
NULL = NullValue()


class Frame:
    """A chained mutable scope of meta-variable values."""

    __slots__ = ("parent", "values")

    def __init__(self, parent: "Frame | None" = None) -> None:
        self.parent = parent
        self.values: dict[str, Any] = {}

    def child(self) -> "Frame":
        return Frame(parent=self)

    def define(self, name: str, value: Any) -> None:
        self.values[name] = value

    def lookup(self, name: str, loc: SourceLocation | None = None) -> Any:
        frame: Frame | None = self
        while frame is not None:
            if name in frame.values:
                return frame.values[name]
            frame = frame.parent
        raise MetaInterpError(f"unbound meta-variable {name!r}", loc)

    def assign(
        self, name: str, value: Any, loc: SourceLocation | None = None
    ) -> None:
        frame: Frame | None = self
        while frame is not None:
            if name in frame.values:
                frame.values[name] = value
                return
            frame = frame.parent
        raise MetaInterpError(
            f"assignment to unbound meta-variable {name!r}", loc
        )

    def __contains__(self, name: str) -> bool:
        frame: Frame | None = self
        while frame is not None:
            if name in frame.values:
                return True
            frame = frame.parent
        return False

    def names(self) -> Iterator[str]:
        seen: set[str] = set()
        frame: Frame | None = self
        while frame is not None:
            for name in frame.values:
                if name not in seen:
                    seen.add(name)
                    yield name
            frame = frame.parent
