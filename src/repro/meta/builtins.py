"""Runtime implementations of the meta-language builtin functions.

These mirror the static signatures in
:mod:`repro.asttypes.check.BUILTIN_SIGNATURES`; the expansion-time
dynamic checks here are a safety net — the definition-time checker
should have rejected ill-typed calls already.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.cast import nodes
from repro.cast.base import Node
from repro.errors import SYNTHETIC, ExpansionError, MetaInterpError
from repro.meta.frames import NULL, NullValue
from repro.meta.values import Closure, describe_value

if TYPE_CHECKING:
    from repro.meta.interp import Interpreter

BuiltinImpl = Callable[["Interpreter", list[Any], Any], Any]


def _ident_text(value: Any, what: str, loc: Any) -> str:
    if isinstance(value, nodes.Identifier):
        return value.name
    if isinstance(value, str):
        return value
    raise MetaInterpError(
        f"{what} expects an identifier or string, got "
        f"{describe_value(value)}",
        loc,
    )


def _require_list(value: Any, what: str, loc: Any) -> list:
    if isinstance(value, list):
        return value
    raise MetaInterpError(
        f"{what} expects a list, got {describe_value(value)}", loc
    )


# ---------------------------------------------------------------------------
# Identifier construction
# ---------------------------------------------------------------------------


def _bi_gensym(interp: "Interpreter", args: list[Any], loc: Any) -> Any:
    prefix = "g"
    if args:
        prefix = _ident_text(args[0], "gensym", loc)
    return interp.gensym(prefix)


def _bi_concat_ids(interp: "Interpreter", args: list[Any], loc: Any) -> Any:
    if len(args) != 2:
        raise MetaInterpError("concat_ids takes two identifiers", loc)
    a = _ident_text(args[0], "concat_ids", loc)
    b = _ident_text(args[1], "concat_ids", loc)
    return nodes.Identifier(a + b, loc=SYNTHETIC)


def _bi_symbolconc(interp: "Interpreter", args: list[Any], loc: Any) -> Any:
    if not args:
        raise MetaInterpError("symbolconc needs at least one part", loc)
    parts = [_ident_text(a, "symbolconc", loc) for a in args]
    return nodes.Identifier("".join(parts), loc=SYNTHETIC)


def _bi_make_id(interp: "Interpreter", args: list[Any], loc: Any) -> Any:
    if len(args) != 1 or not isinstance(args[0], str):
        raise MetaInterpError("make_id takes one string", loc)
    return nodes.Identifier(args[0], loc=SYNTHETIC)


def _bi_pstring(interp: "Interpreter", args: list[Any], loc: Any) -> Any:
    if len(args) != 1:
        raise MetaInterpError("pstring takes one identifier", loc)
    return _ident_text(args[0], "pstring", loc)


def _bi_make_num(interp: "Interpreter", args: list[Any], loc: Any) -> Any:
    if len(args) != 1 or not isinstance(args[0], int):
        raise MetaInterpError("make_num takes one int", loc)
    return nodes.IntLit(args[0], loc=SYNTHETIC)


def _bi_num_value(interp: "Interpreter", args: list[Any], loc: Any) -> Any:
    if len(args) != 1 or not isinstance(args[0], nodes.IntLit):
        raise MetaInterpError("num_value takes one num AST", loc)
    return args[0].value


# ---------------------------------------------------------------------------
# Lists
# ---------------------------------------------------------------------------


def _bi_length(interp: "Interpreter", args: list[Any], loc: Any) -> Any:
    if len(args) != 1:
        raise MetaInterpError("length takes one list", loc)
    return len(_require_list(args[0], "length", loc))


def _bi_is_empty(interp: "Interpreter", args: list[Any], loc: Any) -> Any:
    if len(args) != 1:
        raise MetaInterpError("is_empty takes one list", loc)
    return int(len(_require_list(args[0], "is_empty", loc)) == 0)


def _bi_list(interp: "Interpreter", args: list[Any], loc: Any) -> Any:
    out: list[Any] = []
    for value in args:
        if isinstance(value, list):
            out.extend(value)
        elif isinstance(value, NullValue):
            continue
        else:
            out.append(value)
    return out


def _bi_map(interp: "Interpreter", args: list[Any], loc: Any) -> Any:
    if len(args) != 2:
        raise MetaInterpError("map takes a function and a list", loc)
    fn, seq = args
    if not isinstance(fn, Closure):
        raise MetaInterpError(
            f"map's first argument must be a function, got "
            f"{describe_value(fn)}",
            loc,
        )
    seq = _require_list(seq, "map", loc)
    return [interp.call_closure(fn, [item], loc) for item in seq]


def _bi_append(interp: "Interpreter", args: list[Any], loc: Any) -> Any:
    out: list[Any] = []
    for value in args:
        out.extend(_require_list(value, "append", loc))
    return out


def _bi_cons(interp: "Interpreter", args: list[Any], loc: Any) -> Any:
    if len(args) != 2:
        raise MetaInterpError("cons takes an element and a list", loc)
    return [args[0]] + _require_list(args[1], "cons", loc)


def _bi_first(interp: "Interpreter", args: list[Any], loc: Any) -> Any:
    seq = _require_list(args[0] if args else None, "first", loc)
    if not seq:
        raise MetaInterpError("first of an empty list", loc)
    return seq[0]


def _bi_rest(interp: "Interpreter", args: list[Any], loc: Any) -> Any:
    seq = _require_list(args[0] if args else None, "rest", loc)
    if not seq:
        raise MetaInterpError("rest of an empty list", loc)
    return seq[1:]


def _bi_nth(interp: "Interpreter", args: list[Any], loc: Any) -> Any:
    if len(args) != 2 or not isinstance(args[1], int):
        raise MetaInterpError("nth takes a list and an int", loc)
    seq = _require_list(args[0], "nth", loc)
    index = args[1]
    if index < 0 or index >= len(seq):
        raise MetaInterpError(
            f"nth index {index} out of range (list of {len(seq)})", loc
        )
    return seq[index]


def _bi_reverse(interp: "Interpreter", args: list[Any], loc: Any) -> Any:
    seq = _require_list(args[0] if args else None, "reverse", loc)
    return list(reversed(seq))


# ---------------------------------------------------------------------------
# Predicates, strings, diagnostics
# ---------------------------------------------------------------------------


def _bi_simple_expression(
    interp: "Interpreter", args: list[Any], loc: Any
) -> Any:
    """True when evaluating the expression twice is harmless.

    Used by the paper's ``throw`` macro to avoid introducing a
    temporary for identifiers and literals.
    """
    if len(args) != 1:
        raise MetaInterpError("simple_expression takes one expression", loc)
    expr = args[0]
    return int(
        isinstance(
            expr,
            (nodes.Identifier, nodes.IntLit, nodes.FloatLit,
             nodes.CharLit, nodes.StringLit),
        )
    )


def _bi_eval_const(interp: "Interpreter", args: list[Any], loc: Any) -> Any:
    """Fold a C integer constant expression at expansion time."""
    from repro.constfold import NotConstant, eval_const

    if len(args) != 1 or not isinstance(args[0], Node):
        raise MetaInterpError("eval_const takes one expression AST", loc)
    try:
        return eval_const(args[0])
    except NotConstant as exc:
        raise ExpansionError(
            f"eval_const: {exc.message}", loc
        ) from exc


def _bi_type_of(interp: "Interpreter", args: list[Any], loc: Any) -> Any:
    """The declared C type specifier of an identifier at the invocation
    site (semantic macros, paper section 5)."""
    from repro.semantics import type_spec_of

    if len(args) != 1:
        raise MetaInterpError("type_of takes one identifier", loc)
    name = _ident_text(args[0], "type_of", loc)
    if interp.semantic_scope is None:
        raise MetaInterpError(
            "type_of: no semantic information available (not expanding "
            "an invocation?)",
            loc,
        )
    ts = type_spec_of(interp.semantic_scope, name)
    if ts is None:
        raise ExpansionError(
            f"type_of: no declaration of {name!r} is in scope at the "
            "invocation site",
            loc,
        )
    return ts


def _bi_has_type(interp: "Interpreter", args: list[Any], loc: Any) -> Any:
    if len(args) != 1:
        raise MetaInterpError("has_type takes one identifier", loc)
    name = _ident_text(args[0], "has_type", loc)
    scope = interp.semantic_scope
    return int(scope is not None and scope.lookup(name) is not None)


def _bi_present(interp: "Interpreter", args: list[Any], loc: Any) -> Any:
    """1 when an optional pattern parameter was supplied, else 0."""
    if len(args) != 1:
        raise MetaInterpError("present takes one value", loc)
    return int(not isinstance(args[0], NullValue))


def _bi_same_id(interp: "Interpreter", args: list[Any], loc: Any) -> Any:
    if len(args) != 2:
        raise MetaInterpError("same_id takes two identifiers", loc)
    return int(
        _ident_text(args[0], "same_id", loc)
        == _ident_text(args[1], "same_id", loc)
    )


def _bi_strcmp(interp: "Interpreter", args: list[Any], loc: Any) -> Any:
    if len(args) != 2 or not all(isinstance(a, str) for a in args):
        raise MetaInterpError("strcmp takes two strings", loc)
    a, b = args
    return 0 if a == b else (-1 if a < b else 1)


def _bi_strlen(interp: "Interpreter", args: list[Any], loc: Any) -> Any:
    if len(args) != 1 or not isinstance(args[0], str):
        raise MetaInterpError("strlen takes one string", loc)
    return len(args[0])


def _bi_ast_to_string(interp: "Interpreter", args: list[Any], loc: Any) -> Any:
    from repro.cast.printer import render_c

    if len(args) != 1:
        raise MetaInterpError("ast_to_string takes one AST", loc)
    value = args[0]
    if isinstance(value, Node):
        return render_c(value)
    if isinstance(value, list):
        return "\n".join(
            render_c(v) if isinstance(v, Node) else str(v) for v in value
        )
    return str(value)


def _bi_error(interp: "Interpreter", args: list[Any], loc: Any) -> Any:
    parts = []
    for value in args:
        if isinstance(value, str):
            parts.append(value)
        else:
            parts.append(describe_value(value))
    raise ExpansionError("macro error(): " + " ".join(parts), loc)


def _bi_warning(interp: "Interpreter", args: list[Any], loc: Any) -> Any:
    parts = [
        value if isinstance(value, str) else describe_value(value)
        for value in args
    ]
    interp.warnings.append(" ".join(parts))
    return NULL


BUILTIN_IMPLS: dict[str, BuiltinImpl] = {
    "gensym": _bi_gensym,
    "concat_ids": _bi_concat_ids,
    "symbolconc": _bi_symbolconc,
    "make_id": _bi_make_id,
    "pstring": _bi_pstring,
    "id_name": _bi_pstring,
    "make_num": _bi_make_num,
    "num_value": _bi_num_value,
    "length": _bi_length,
    "is_empty": _bi_is_empty,
    "list": _bi_list,
    "map": _bi_map,
    "append": _bi_append,
    "cons": _bi_cons,
    "first": _bi_first,
    "rest": _bi_rest,
    "nth": _bi_nth,
    "reverse": _bi_reverse,
    "simple_expression": _bi_simple_expression,
    "present": _bi_present,
    "type_of": _bi_type_of,
    "has_type": _bi_has_type,
    "eval_const": _bi_eval_const,
    "same_id": _bi_same_id,
    "strcmp": _bi_strcmp,
    "strlen": _bi_strlen,
    "ast_to_string": _bi_ast_to_string,
    "error": _bi_error,
    "warning": _bi_warning,
}
