"""Runtime value model of the meta-language.

Meta-values are:

* AST nodes (instances of :class:`repro.cast.base.Node`) for the
  primitive AST types;
* Python ``list`` for AST lists;
* :class:`repro.cast.nodes.TupleValue` for tuples;
* Python ``int`` / ``float`` / ``str`` for C scalars;
* :data:`repro.meta.frames.NULL` for the absent value;
* :class:`Closure` for meta-functions and anonymous functions.

This module also implements the runtime side of the predefined AST
component accessors (``stmt->declarations`` and friends) and the
truthiness / equality rules the interpreter uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.cast import ctypes, decls, nodes, stmts
from repro.cast.base import Node
from repro.errors import MetaInterpError, SourceLocation
from repro.meta.frames import NULL, Frame, NullValue


@dataclass(slots=True)
class Closure:
    """A callable meta-value: meta-function or anonymous function."""

    name: str
    params: list[str]
    body: Any  # CompoundStmt for meta-functions, expression for anon fns
    frame: Frame
    is_anon: bool = False


def truthy(value: Any, loc: SourceLocation | None = None) -> bool:
    """C truthiness for meta-values."""
    if isinstance(value, NullValue):
        return False
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    if isinstance(value, str):
        return True  # a char* is a non-null pointer
    if isinstance(value, list):
        return len(value) != 0
    if isinstance(value, Node):
        return True
    raise MetaInterpError(
        f"value of type {type(value).__name__} has no truth value", loc
    )


def values_equal(a: Any, b: Any) -> bool:
    """`==` on meta-values; AST nodes compare structurally."""
    if isinstance(a, NullValue) or isinstance(b, NullValue):
        return isinstance(a, NullValue) and isinstance(b, NullValue)
    if isinstance(a, Node) and isinstance(b, Node):
        return a == b
    if isinstance(a, list) and isinstance(b, list):
        return len(a) == len(b) and all(
            values_equal(x, y) for x, y in zip(a, b)
        )
    return a == b


def describe_value(value: Any) -> str:
    """Short description for error messages."""
    if isinstance(value, NullValue):
        return "NULL"
    if isinstance(value, Node):
        return f"<{type(value).__name__} AST>"
    if isinstance(value, list):
        return f"<list of {len(value)}>"
    if isinstance(value, Closure):
        return f"<function {value.name}>"
    return repr(value)


# ---------------------------------------------------------------------------
# AST component extraction (runtime side of check.COMPONENT_TYPES)
# ---------------------------------------------------------------------------


def extract_component(
    value: Node, name: str, loc: SourceLocation | None = None
) -> Any:
    """Evaluate ``value->name`` for the predefined component accessors."""
    # Statements ------------------------------------------------------
    if name == "declarations" and isinstance(value, stmts.CompoundStmt):
        return list(value.decls)
    if name == "statements" and isinstance(value, stmts.CompoundStmt):
        return list(value.stmts)
    if name == "expression":
        if isinstance(value, stmts.ExprStmt):
            return value.expr
        if isinstance(value, stmts.ReturnStmt):
            return value.expr if value.expr is not None else NULL
        if isinstance(value, stmts.SwitchStmt):
            return value.expr
    if name == "cond":
        if isinstance(value, (stmts.IfStmt, stmts.WhileStmt,
                              stmts.DoWhileStmt)):
            return value.cond
        if isinstance(value, stmts.ForStmt):
            return value.cond if value.cond is not None else NULL
        if isinstance(value, nodes.ConditionalOp):
            return value.cond
    if name == "body" and isinstance(
        value, (stmts.WhileStmt, stmts.DoWhileStmt, stmts.ForStmt,
                stmts.SwitchStmt)
    ):
        return value.body
    if name == "then" and isinstance(value, stmts.IfStmt):
        return value.then
    if name == "otherwise" and isinstance(value, stmts.IfStmt):
        return value.otherwise if value.otherwise is not None else NULL

    # Declarations ----------------------------------------------------
    if isinstance(value, decls.Declaration):
        if name == "type_spec":
            if value.specs.type_spec is None:
                return NULL
            return value.specs.type_spec
        if name == "declarators":
            return list(value.init_declarators)
        if name == "name":
            for item in value.init_declarators:
                if isinstance(item, decls.InitDeclarator):
                    ident = _declarator_identifier(item.declarator)
                    if ident is not None:
                        return ident
            raise MetaInterpError(
                "declaration declares no name", loc
            )

    # Init declarators / declarators ------------------------------------
    if isinstance(value, decls.InitDeclarator):
        if name == "declarator":
            return value.declarator
        if name == "init":
            return value.init if value.init is not None else NULL
    if name == "name":
        # id->name yields the spelling (a string, per COMPONENT_TYPES).
        if isinstance(value, nodes.Identifier):
            return value.name
        ident = _declarator_identifier(value)
        if ident is not None:
            return ident

    # Expressions -------------------------------------------------------
    if isinstance(value, (nodes.BinaryOp,)):
        if name == "left":
            return value.left
        if name == "right":
            return value.right
        if name == "op":
            return value.op
    if isinstance(value, nodes.AssignOp):
        if name == "left":
            return value.target
        if name == "right":
            return value.value
        if name == "op":
            return value.op
    if isinstance(value, (nodes.UnaryOp, nodes.PostfixOp)):
        if name == "operand":
            return value.operand
        if name == "op":
            return value.op
    if isinstance(value, nodes.Cast) and name == "operand":
        return value.operand
    if isinstance(value, nodes.Call):
        if name == "func":
            return value.func
        if name == "args":
            return list(value.args)
        if name == "name" and isinstance(value.func, nodes.Identifier):
            return value.func
    if isinstance(value, nodes.Identifier) and name == "name":
        return value.name

    raise MetaInterpError(
        f"cannot extract component {name!r} from "
        f"{type(value).__name__}",
        loc,
    )


def _declarator_identifier(declarator: Node) -> nodes.Identifier | None:
    current = declarator
    while True:
        if isinstance(current, decls.NameDeclarator):
            return nodes.Identifier(current.name, loc=current.loc)
        if isinstance(current, nodes.Identifier):
            return current
        if isinstance(
            current,
            (decls.PointerDeclarator, decls.ArrayDeclarator,
             decls.FuncDeclarator),
        ):
            current = current.inner
            continue
        return None
