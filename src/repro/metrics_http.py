"""The telemetry HTTP sidecar of the expansion daemon.

``repro serve --metrics-port N`` starts this minimal asyncio HTTP/1.1
listener next to the NDJSON protocol socket, so standard tooling —
Prometheus scrapers, load-balancer health checks, ``curl`` — can read
the daemon without speaking its protocol:

- ``GET /metrics``  — Prometheus text exposition
  (:meth:`~repro.telemetry.MetricsRegistry.render_prometheus`);
- ``GET /healthz``  — drain-aware readiness: ``200 ok`` while
  accepting work, ``503 draining`` once shutdown has begun (a load
  balancer stops routing to a draining shard before its socket
  closes);
- ``GET /statusz``  — the JSON stats snapshot, byte-identical in
  content to the NDJSON ``stats`` op.

Deliberately tiny: GET only, one request per connection
(``Connection: close``), no TLS, no routing table beyond the three
paths.  It binds loopback by default; anything fancier belongs behind
a real proxy.
"""

from __future__ import annotations

import asyncio
import json
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:
    from repro.server import Ms2Server

__all__ = ["TelemetrySidecar"]

#: Cap on the request head (request line + headers) we will read.
_MAX_HEAD_BYTES = 16 * 1024

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    503: "Service Unavailable",
}


class TelemetrySidecar:
    """One HTTP listener serving a daemon's telemetry endpoints."""

    def __init__(
        self,
        server: "Ms2Server",
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.server = server
        self.host = host
        self.port = port
        self._http: asyncio.AbstractServer | None = None
        #: The actually-bound port (useful with ``port=0``).
        self.bound_port: int | None = None
        #: Requests served, by path (shown in ``/statusz``).
        self.requests: dict[str, int] = {}

    async def start(self) -> None:
        self._http = await asyncio.start_server(
            self._handle, host=self.host, port=self.port
        )
        sockets = self._http.sockets or []
        if sockets:
            self.bound_port = sockets[0].getsockname()[1]

    async def aclose(self) -> None:
        if self._http is not None:
            self._http.close()
            await self._http.wait_closed()
            self._http = None

    @property
    def address(self) -> str:
        return f"{self.host}:{self.bound_port or self.port}"

    # ------------------------------------------------------------------

    async def _handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            status, content_type, body = await self._respond(reader)
            head = (
                f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'OK')}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n"
                "\r\n"
            )
            writer.write(head.encode("ascii") + body)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond(
        self, reader: asyncio.StreamReader
    ) -> tuple[int, str, bytes]:
        """(status, content type, body) for one request."""
        try:
            request_line = await asyncio.wait_for(
                reader.readline(), timeout=10.0
            )
        except asyncio.TimeoutError:
            return 400, "text/plain; charset=utf-8", b"timeout\n"
        parts = request_line.decode("latin-1", "replace").split()
        if len(parts) < 2:
            return 400, "text/plain; charset=utf-8", b"bad request\n"
        method, target = parts[0], parts[1]
        # Drain the headers (bounded); the body, if any, is ignored.
        consumed = len(request_line)
        while consumed < _MAX_HEAD_BYTES:
            line = await reader.readline()
            consumed += len(line)
            if line in (b"\r\n", b"\n", b""):
                break
        if method != "GET":
            return (
                405,
                "text/plain; charset=utf-8",
                b"method not allowed\n",
            )
        path = target.split("?", 1)[0]
        self.requests[path] = self.requests.get(path, 0) + 1
        handler = self._routes().get(path)
        if handler is None:
            return (
                404,
                "text/plain; charset=utf-8",
                b"not found; try /metrics /healthz /statusz\n",
            )
        return handler()

    def _routes(self) -> dict[str, Callable[[], tuple[int, str, bytes]]]:
        return {
            "/metrics": self._metrics,
            "/healthz": self._healthz,
            "/statusz": self._statusz,
        }

    def _metrics(self) -> tuple[int, str, bytes]:
        body = self.server.registry.render_prometheus()
        return (
            200,
            "text/plain; version=0.0.4; charset=utf-8",
            body.encode("utf-8"),
        )

    def _healthz(self) -> tuple[int, str, bytes]:
        if self.server.draining:
            return 503, "text/plain; charset=utf-8", b"draining\n"
        return 200, "text/plain; charset=utf-8", b"ok\n"

    def _statusz(self) -> tuple[int, str, bytes]:
        payload = self.server.stats_payload()
        body = json.dumps(payload, indent=2).encode("utf-8")
        return 200, "application/json; charset=utf-8", body
