"""The telemetry HTTP sidecar of the expansion daemon.

``repro serve --metrics-port N`` starts this minimal asyncio HTTP/1.1
listener next to the NDJSON protocol socket, so standard tooling —
Prometheus scrapers, load-balancer health checks, ``curl``, ordinary
load generators — can work against the daemon without speaking its
protocol:

- ``GET /metrics``  — Prometheus text exposition
  (:meth:`~repro.telemetry.MetricsRegistry.render_prometheus`);
- ``GET /healthz``  — drain-aware readiness: ``200 ok`` while
  accepting work, ``503 draining`` once shutdown has begun (a load
  balancer stops routing to a draining shard before its socket
  closes);
- ``GET /statusz``  — the JSON stats snapshot, byte-identical in
  content to the NDJSON ``stats`` op;
- ``POST /v1/expand`` — the HTTP/JSON **gateway**: the body is one
  protocol frame (same JSON as a NDJSON request line), the response
  body is the response frame.  Protocol error codes map onto HTTP
  statuses (``busy`` → 429 with ``Retry-After``, ``expansion_error``
  → 422, ...), so ordinary HTTP tooling sees meaningful statuses
  while :class:`~repro.client.Ms2Client` just reads the frame.

Deliberately tiny: one request per connection (``Connection:
close``), no TLS, no routing table beyond the four paths.  It binds
loopback by default; anything fancier belongs behind a real proxy.
The sharded fleet gateway (:mod:`repro.shard`) reuses the framing
helpers here.
"""

from __future__ import annotations

import asyncio
import json
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:
    from repro.server import Ms2Server

__all__ = ["TelemetrySidecar", "http_status_for_frame"]

#: Cap on the request head (request line + headers) we will read.
_MAX_HEAD_BYTES = 16 * 1024

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
}

#: Protocol error code → HTTP status for gateway responses.
_CODE_STATUS = {
    "bad_request": 400,
    "frame_too_large": 413,
    "expansion_error": 422,
    "busy": 429,
    "unavailable": 503,
    "shutting_down": 503,
    "internal": 500,
}


def http_status_for_frame(frame: dict[str, Any]) -> int:
    """The HTTP status a gateway should attach to a protocol
    response frame (200 for ok frames)."""
    if frame.get("ok"):
        return 200
    code = (frame.get("error") or {}).get("code", "internal")
    return _CODE_STATUS.get(code, 500)


def retry_after_header(frame: dict[str, Any]) -> dict[str, str]:
    """A ``Retry-After`` header (whole seconds, rounded up) when the
    error frame carries a ``retry_after_ms`` hint; else empty."""
    hint = (frame.get("error") or {}).get("retry_after_ms")
    if not isinstance(hint, (int, float)) or hint <= 0:
        return {}
    return {"Retry-After": str(max(1, int(-(-hint // 1000))))}


async def read_http_request(
    reader: asyncio.StreamReader,
    max_body_bytes: int,
) -> tuple[str, str, dict[str, str], bytes] | None:
    """``(method, path, headers, body)`` for one HTTP/1.1 request, or
    None for an unparseable/oversized head.  Header names are
    lower-cased; the body is read per ``Content-Length`` and clipped
    to ``max_body_bytes`` (a longer declared length returns an empty
    body with the special header ``x-ms2-body-too-large`` set)."""
    try:
        request_line = await asyncio.wait_for(reader.readline(), timeout=10.0)
    except asyncio.TimeoutError:
        return None
    parts = request_line.decode("latin-1", "replace").split()
    if len(parts) < 2:
        return None
    method, target = parts[0], parts[1]
    headers: dict[str, str] = {}
    consumed = len(request_line)
    while consumed < _MAX_HEAD_BYTES:
        line = await reader.readline()
        consumed += len(line)
        if line in (b"\r\n", b"\n", b""):
            break
        name, sep, value = line.decode("latin-1", "replace").partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    else:
        return None
    body = b""
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        length = 0
    if length > max_body_bytes:
        headers["x-ms2-body-too-large"] = str(length)
    elif length > 0:
        try:
            body = await asyncio.wait_for(
                reader.readexactly(length), timeout=30.0
            )
        except (asyncio.TimeoutError, asyncio.IncompleteReadError):
            return None
    return method, target.split("?", 1)[0], headers, body


async def write_http_response(
    writer: asyncio.StreamWriter,
    status: int,
    content_type: str,
    body: bytes,
    extra_headers: dict[str, str] | None = None,
) -> None:
    """One ``Connection: close`` HTTP/1.1 response."""
    lines = [
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'OK')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    lines.append("Connection: close")
    head = "\r\n".join(lines) + "\r\n\r\n"
    writer.write(head.encode("ascii") + body)
    await writer.drain()


_PLAIN = "text/plain; charset=utf-8"
_JSON = "application/json; charset=utf-8"

#: (status, content-type, body, extra headers) — one response.
Response = tuple[int, str, bytes, dict[str, str]]


class TelemetrySidecar:
    """One HTTP listener serving a daemon's telemetry endpoints and
    the single-process HTTP/JSON gateway."""

    def __init__(
        self,
        server: "Ms2Server",
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.server = server
        self.host = host
        self.port = port
        self._http: asyncio.AbstractServer | None = None
        #: The actually-bound port (useful with ``port=0``).
        self.bound_port: int | None = None
        #: Requests served, by path (shown in ``/statusz``).
        self.requests: dict[str, int] = {}

    async def start(self) -> None:
        self._http = await asyncio.start_server(
            self._handle, host=self.host, port=self.port
        )
        sockets = self._http.sockets or []
        if sockets:
            self.bound_port = sockets[0].getsockname()[1]

    async def aclose(self) -> None:
        if self._http is not None:
            self._http.close()
            await self._http.wait_closed()
            self._http = None

    @property
    def address(self) -> str:
        return f"{self.host}:{self.bound_port or self.port}"

    # ------------------------------------------------------------------

    async def _handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            status, content_type, body, extra = await self._respond(reader)
            await write_http_response(
                writer, status, content_type, body, extra
            )
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond(self, reader: asyncio.StreamReader) -> Response:
        """(status, content type, body, extra headers) per request."""
        parsed = await read_http_request(reader, self.server.max_frame_bytes)
        if parsed is None:
            return 400, _PLAIN, b"bad request\n", {}
        method, path, headers, body = parsed
        self.requests[path] = self.requests.get(path, 0) + 1
        if method == "POST":
            if path != "/v1/expand":
                return 405, _PLAIN, b"method not allowed\n", {}
            return await self._gateway(headers, body)
        if method != "GET":
            return 405, _PLAIN, b"method not allowed\n", {}
        handler = self._routes().get(path)
        if handler is None:
            return (
                404,
                _PLAIN,
                b"not found; try /metrics /healthz /statusz "
                b"or POST /v1/expand\n",
                {},
            )
        return handler()

    async def _gateway(
        self, headers: dict[str, str], body: bytes
    ) -> Response:
        """``POST /v1/expand``: dispatch one protocol frame."""
        frame = gateway_parse_body(headers, body)
        if frame is None:
            return (
                400,
                _JSON,
                json.dumps(
                    _gateway_error("bad_request", "body must be one JSON frame")
                ).encode("utf-8"),
                {},
            )
        if "too_large" in frame:
            return (
                413,
                _JSON,
                json.dumps(
                    _gateway_error(
                        "frame_too_large",
                        f"body of {frame['too_large']} bytes exceeds "
                        f"max_frame_bytes",
                    )
                ).encode("utf-8"),
                {},
            )
        response = await self.server._dispatch(frame["frame"])
        return gateway_response(response)

    def _routes(self) -> dict[str, Callable[[], Response]]:
        return {
            "/metrics": self._metrics,
            "/healthz": self._healthz,
            "/statusz": self._statusz,
        }

    def _metrics(self) -> Response:
        body = self.server.registry.render_prometheus()
        return (
            200,
            "text/plain; version=0.0.4; charset=utf-8",
            body.encode("utf-8"),
            {},
        )

    def _healthz(self) -> Response:
        if self.server.draining:
            return 503, _PLAIN, b"draining\n", {}
        return 200, _PLAIN, b"ok\n", {}

    def _statusz(self) -> Response:
        payload = self.server.stats_payload()
        body = json.dumps(payload, indent=2).encode("utf-8")
        return 200, _JSON, body, {}


# ----------------------------------------------------------------------
# Gateway framing helpers (shared with the fleet gateway in
# :mod:`repro.shard`)
# ----------------------------------------------------------------------


def _gateway_error(code: str, message: str) -> dict[str, Any]:
    return {
        "id": None,
        "ok": False,
        "error": {"code": code, "message": message},
    }


def gateway_parse_body(
    headers: dict[str, str], body: bytes
) -> dict[str, Any] | None:
    """Decode a ``POST /v1/expand`` body into ``{"frame": ...}``, or
    ``{"too_large": N}`` when :func:`read_http_request` clipped it,
    or None when the body is not a JSON object."""
    if "x-ms2-body-too-large" in headers:
        return {"too_large": headers["x-ms2-body-too-large"]}
    try:
        frame = json.loads(body)
    except ValueError:
        return None
    if not isinstance(frame, dict):
        return None
    return {"frame": frame}


def gateway_response(frame: dict[str, Any]) -> Response:
    """An HTTP response carrying one protocol response frame."""
    return (
        http_status_for_frame(frame),
        _JSON,
        json.dumps(frame).encode("utf-8"),
        retry_after_header(frame),
    )
