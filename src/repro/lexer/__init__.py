"""Lexical analysis for C extended with the macro-language meta-tokens."""

from repro.lexer.scanner import Scanner, tokenize
from repro.lexer.tokens import (
    AST_SPECIFIER_NAMES,
    C_KEYWORDS,
    META_KEYWORDS,
    Token,
    TokenKind,
)

__all__ = [
    "AST_SPECIFIER_NAMES",
    "C_KEYWORDS",
    "META_KEYWORDS",
    "Scanner",
    "Token",
    "TokenKind",
    "tokenize",
]
