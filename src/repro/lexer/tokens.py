"""Token kinds for the extended C language of the paper.

The macro language adds seven meta-tokens to C (paper section 2):
``{|``, ``|}``, ``$$``, ``$``, ``::``, `````` ` `` and ``@``.  It also
adds the keywords ``syntax`` and ``metadcl``, and the AST type
specifier keywords (``stmt``, ``exp``, ``id``, ``decl``, ``num``,
``type_spec`` plus the declarator-level specifiers Figure 2 relies on).

One further kind exists that never appears in source text:
:data:`TokenKind.PLACEHOLDER`.  Placeholder tokens are synthesized by
the tokenizer/parser co-routine while parsing backquote templates; the
token wraps an already-parsed meta-expression together with the AST
type it will produce when evaluated (paper section 3, "Parsing Code
Templates").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.errors import SourceLocation


class TokenKind(enum.Enum):
    """Lexical categories of the extended language."""

    # Literals and names.
    IDENT = "identifier"
    INT_LIT = "integer-literal"
    FLOAT_LIT = "float-literal"
    CHAR_LIT = "character-literal"
    STRING_LIT = "string-literal"

    # C keywords get their own kinds via the KEYWORDS table but share
    # this kind; parsers dispatch on `.text` for keywords.
    KEYWORD = "keyword"

    # Punctuation / operators (one kind per spelling keeps the parser
    # honest about what it consumes).
    PUNCT = "punctuator"

    # The seven meta-tokens of the macro language.
    LBRACE_BAR = "{|"
    BAR_RBRACE = "|}"
    DOLLAR_DOLLAR = "$$"
    DOLLAR = "$"
    COLON_COLON = "::"
    BACKQUOTE = "`"
    AT = "@"

    # Synthesized while parsing templates; never produced from text.
    PLACEHOLDER = "placeholder-token"

    EOF = "end-of-file"


#: ISO C90 keywords (the subset of C the paper's grammar extends).
C_KEYWORDS = frozenset(
    {
        "auto", "break", "case", "char", "const", "continue", "default",
        "do", "double", "else", "enum", "extern", "float", "for", "goto",
        "if", "int", "long", "register", "return", "short", "signed",
        "sizeof", "static", "struct", "switch", "typedef", "union",
        "unsigned", "void", "volatile", "while",
    }
)

#: Keywords added by the macro language (top-level declaration forms).
META_KEYWORDS = frozenset({"syntax", "metadcl"})

#: AST type specifier names usable after ``@`` and inside patterns.
#: ``declarator`` and ``init_declarator`` extend the six primitives so
#: that Figure 2 of the paper is expressible.
AST_SPECIFIER_NAMES = frozenset(
    {
        "id", "exp", "stmt", "decl", "num", "type_spec",
        "declarator", "init_declarator",
    }
)

ALL_KEYWORDS = C_KEYWORDS | META_KEYWORDS

#: Multi-character punctuators, longest first so maximal munch works by
#: simple ordered scanning.
PUNCTUATORS = (
    "<<=", ">>=", "...",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "^=", "|=",
    "[", "]", "(", ")", "{", "}", ".", ",", ";", ":", "?",
    "+", "-", "*", "/", "%", "<", ">", "=", "&", "|", "^", "!", "~",
    "#",
)

#: Meta-token spellings, also longest-first.  ``{|`` and ``|}`` must be
#: tried before ``{`` / ``|``; ``$$`` before ``$``; ``::`` before ``:``.
META_TOKEN_SPELLINGS = (
    ("{|", TokenKind.LBRACE_BAR),
    ("|}", TokenKind.BAR_RBRACE),
    ("$$", TokenKind.DOLLAR_DOLLAR),
    ("::", TokenKind.COLON_COLON),
    ("$", TokenKind.DOLLAR),
    ("`", TokenKind.BACKQUOTE),
    ("@", TokenKind.AT),
)


@dataclass(slots=True)
class Token:
    """A single lexical token.

    ``value`` carries the decoded payload for literals (an ``int`` for
    integer literals, ``str`` for string literals with escapes decoded,
    and so on).  For :data:`TokenKind.PLACEHOLDER` tokens, ``value`` is
    a :class:`repro.macros.backquote.PlaceholderPayload`.
    """

    kind: TokenKind
    text: str
    location: SourceLocation = field(default_factory=SourceLocation)
    value: Any = None

    def is_keyword(self, *names: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text in names

    def is_punct(self, *spellings: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.text in spellings

    def is_ident(self, name: str | None = None) -> bool:
        if self.kind is not TokenKind.IDENT:
            return False
        return name is None or self.text == name

    def describe(self) -> str:
        """Human-readable rendering for error messages."""
        if self.kind is TokenKind.EOF:
            return "end of input"
        if self.kind is TokenKind.PLACEHOLDER:
            return f"placeholder token ({self.text})"
        return repr(self.text)

    def __str__(self) -> str:
        return self.text
