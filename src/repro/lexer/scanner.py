"""The tokenizer for C extended with the macro language's meta-tokens.

The scanner is a maximal-munch tokenizer.  Two small deviations from a
stock C tokenizer serve the macro language:

* meta-tokens (``{|``, ``|}``, ``$$``, ``::``, ``$``, `````` ` ``,
  ``@``) are recognized, longest spelling first, and
* meta-token recognition can be disabled (``meta=False``) so the same
  scanner doubles as the plain C tokenizer used by the token-macro
  baseline.

The hot path is a single compiled *master regex*: one alternation of
named groups (whitespace, comments, identifiers, numbers, strings,
chars, meta-tokens, punctuators) compiled once per ``meta`` mode and
applied with ``match`` at the current offset.  Alternatives are ordered
so first-match equals maximal munch (e.g. ``<<=`` before ``<<`` before
``<``).  Identifier, punctuator and meta-token texts are interned so
repeated spellings share one string object.  Inputs the master regex
rejects — malformed literals, unterminated strings, stray characters —
fall back to the original per-character scan routines, which raise the
exact historical :class:`~repro.errors.LexError` messages.

Comments (``/* */`` and ``//``) are skipped.  Line/column bookkeeping
feeds :class:`~repro.errors.SourceLocation` on every token.
"""

from __future__ import annotations

import re
import sys

from repro.errors import LexError, SourceLocation
from repro.lexer.tokens import (
    ALL_KEYWORDS,
    META_TOKEN_SPELLINGS,
    PUNCTUATORS,
    Token,
    TokenKind,
)

_IDENT_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_"
)
_IDENT_CONT = _IDENT_START | frozenset("0123456789")
_DIGITS = frozenset("0123456789")
_HEX_DIGITS = _DIGITS | frozenset("abcdefABCDEF")
_OCTAL_DIGITS = frozenset("01234567")

_SIMPLE_ESCAPES = {
    "n": "\n", "t": "\t", "r": "\r", "v": "\v", "f": "\f",
    "a": "\a", "b": "\b", "0": "\0", "\\": "\\", "'": "'",
    '"': '"', "?": "?",
}

_META_KINDS = dict(META_TOKEN_SPELLINGS)


def _build_master(meta: bool) -> re.Pattern[str]:
    """Compile the master token regex for one scanner mode.

    Group order *is* the munch order: comments before the ``/``
    punctuator, the valid hex literal before its ``0x``-without-digits
    error form, floats before ints before the ``.`` punctuator, and
    meta-tokens (longest spelling first) before punctuators so ``{|``
    beats ``{`` and ``::`` beats ``:``.
    """
    punct_alt = "|".join(re.escape(p) for p in PUNCTUATORS)
    parts = [
        r"(?P<ws>[ \t\r\n\f\v]+)",
        r"(?P<lc>//[^\n]*)",
        # Unrolled-loop block comment (no catastrophic backtracking).
        r"(?P<bc>/\*[^*]*\*+(?:[^/*][^*]*\*+)*/)",
        r"(?P<badbc>/\*)",
        r"(?P<ident>[A-Za-z_][A-Za-z0-9_]*)",
        r"(?P<hex>0[xX][0-9a-fA-F]+[uUlL]*)",
        r"(?P<badhex>0[xX])",
        # `1.` and `.5` floats, but not `1..2` (range-like `..`), with
        # an exponent only when it has digits (`1e` lexes as `1`, `e`).
        r"(?P<flt>(?:[0-9]+\.(?!\.)[0-9]*|\.[0-9]+)(?:[eE][+-]?[0-9]+)?"
        r"[fFlL]*|[0-9]+[eE][+-]?[0-9]+[fFlL]*)",
        r"(?P<int>[0-9]+[uUlL]*)",
        # Well-shaped complete literals only; anything else (newline,
        # unterminated, bad escape) drops to the slow path / decoder.
        r'(?P<str>"(?:[^"\\\n]|\\[^\n])*")',
        r"(?P<chr>'(?:\\x[0-9a-fA-F]+|\\[0-7]{1,3}|\\[^\n]|[^'\\\n])')",
    ]
    if meta:
        meta_alt = "|".join(re.escape(s) for s, _ in META_TOKEN_SPELLINGS)
        parts.append(f"(?P<meta>{meta_alt})")
    parts.append(f"(?P<punct>{punct_alt})")
    return re.compile("|".join(parts))


#: One compiled master regex per ``meta`` mode, shared by all scanners.
_MASTER_CACHE: dict[bool, re.Pattern[str]] = {}


def _master_for(meta: bool) -> re.Pattern[str]:
    pattern = _MASTER_CACHE.get(meta)
    if pattern is None:
        pattern = _MASTER_CACHE[meta] = _build_master(meta)
    return pattern


class Scanner:
    """Tokenizes a source buffer into a list of :class:`Token`.

    Parameters
    ----------
    source:
        The program text.
    filename:
        Used in source locations and error messages.
    meta:
        When true (the default), the seven macro-language meta-tokens
        are recognized.  When false the scanner behaves as a plain C
        tokenizer (``$`` and `````` ` `` become lex errors, ``@`` too).
    keep_keywords:
        When false, C keywords are returned as plain identifiers.  The
        token-macro baseline uses this mode because CPP does not treat
        keywords specially.
    stats:
        Optional :class:`repro.stats.PipelineStats`; when supplied the
        scanner bumps ``tokens_scanned`` / ``tokens_interned``.
    """

    def __init__(
        self,
        source: str,
        filename: str = "<string>",
        *,
        meta: bool = True,
        keep_keywords: bool = True,
        stats=None,
    ) -> None:
        self.source = source
        self.filename = filename
        self.meta = meta
        self.keep_keywords = keep_keywords
        self.stats = stats
        self.pos = 0
        self.line = 1
        self._line_start = 0
        self._master = _master_for(meta)

    @property
    def col(self) -> int:
        return self.pos - self._line_start + 1

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------

    def tokenize(self) -> list[Token]:
        """Scan the whole buffer, returning tokens ending with EOF."""
        tokens: list[Token] = []
        while True:
            token = self.next_token()
            tokens.append(token)
            if token.kind is TokenKind.EOF:
                return tokens

    def next_token(self) -> Token:
        """Scan and return the next token (EOF at end of buffer)."""
        source = self.source
        length = len(source)
        match = self._master.match
        while True:
            if self.pos >= length:
                return Token(TokenKind.EOF, "", self._loc())
            m = match(source, self.pos)
            if m is None:
                return self._next_token_slow()
            group = m.lastgroup
            if group == "ws" or group == "lc" or group == "bc":
                text = m.group()
                newlines = text.count("\n")
                if newlines:
                    self.line += newlines
                    self._line_start = self.pos + text.rindex("\n") + 1
                self.pos = m.end()
                continue
            break

        loc = self._loc()
        text = m.group()
        self.pos = m.end()
        stats = self.stats
        if stats is not None:
            stats.tokens_scanned += 1

        if group == "ident":
            interned = sys.intern(text)
            if stats is not None and interned is not text:
                stats.tokens_interned += 1
            if self.keep_keywords and interned in ALL_KEYWORDS:
                return Token(TokenKind.KEYWORD, interned, loc)
            return Token(TokenKind.IDENT, interned, loc)
        if group == "punct":
            interned = sys.intern(text)
            if stats is not None and interned is not text:
                stats.tokens_interned += 1
            return Token(TokenKind.PUNCT, interned, loc)
        if group == "int" or group == "hex":
            return Token(
                TokenKind.INT_LIT, text, loc, value=_decode_int(text)
            )
        if group == "meta":
            interned = sys.intern(text)
            if stats is not None and interned is not text:
                stats.tokens_interned += 1
            return Token(_META_KINDS[interned], interned, loc)
        if group == "str":
            return Token(
                TokenKind.STRING_LIT, text, loc,
                value=self._decode_escaped(text[1:-1], loc),
            )
        if group == "flt":
            return Token(
                TokenKind.FLOAT_LIT, text, loc,
                value=float(text.rstrip("fFlL")),
            )
        if group == "chr":
            body = text[1:-1]
            if body.startswith("\\"):
                body = self._decode_escaped(body, loc)
            return Token(TokenKind.CHAR_LIT, text, loc, value=ord(body))
        if group == "badhex":
            raise LexError("malformed hexadecimal literal", loc)
        # group == "badbc"
        raise LexError("unterminated block comment", loc)

    # ------------------------------------------------------------------
    # Slow path: per-character scan, reached only on inputs the master
    # regex rejects.  Produces the historical LexError diagnostics.
    # ------------------------------------------------------------------

    def _next_token_slow(self) -> Token:
        self._skip_whitespace_and_comments()
        if self.pos >= len(self.source):
            return Token(TokenKind.EOF, "", self._loc())

        ch = self.source[self.pos]
        if ch in _IDENT_START:
            return self._scan_identifier()
        if ch in _DIGITS or (ch == "." and self._peek(1) in _DIGITS):
            return self._scan_number()
        if ch == '"':
            return self._scan_string()
        if ch == "'":
            return self._scan_char()

        if self.meta:
            for spelling, kind in META_TOKEN_SPELLINGS:
                if self.source.startswith(spelling, self.pos):
                    loc = self._loc()
                    self._advance(len(spelling))
                    return Token(kind, spelling, loc)

        for spelling in PUNCTUATORS:
            if self.source.startswith(spelling, self.pos):
                loc = self._loc()
                self._advance(len(spelling))
                return Token(TokenKind.PUNCT, spelling, loc)

        raise LexError(f"unexpected character {ch!r}", self._loc())

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _loc(self) -> SourceLocation:
        return SourceLocation(
            self.line, self.pos - self._line_start + 1, self.pos,
            self.filename,
        )

    def _peek(self, ahead: int = 0) -> str:
        index = self.pos + ahead
        if index < len(self.source):
            return self.source[index]
        return ""

    def _advance(self, count: int = 1) -> None:
        source = self.source
        pos = self.pos
        end = min(pos + count, len(source))
        while pos < end:
            if source[pos] == "\n":
                self.line += 1
                self._line_start = pos + 1
            pos += 1
        self.pos = pos

    def _decode_escaped(self, body: str, loc: SourceLocation) -> str:
        """Decode the escapes of a regex-matched literal body, raising
        the same diagnostics as the character-at-a-time scanner."""
        if "\\" not in body:
            return body
        out: list[str] = []
        i = 0
        n = len(body)
        while i < n:
            ch = body[i]
            if ch != "\\":
                out.append(ch)
                i += 1
                continue
            i += 1
            if i >= n:
                raise LexError("unterminated escape sequence", loc)
            ch = body[i]
            if ch in _SIMPLE_ESCAPES:
                out.append(_SIMPLE_ESCAPES[ch])
                i += 1
                continue
            if ch == "x":
                i += 1
                start = i
                while i < n and body[i] in _HEX_DIGITS:
                    i += 1
                if i == start:
                    raise LexError("malformed hex escape", loc)
                out.append(chr(int(body[start:i], 16)))
                continue
            if ch in _OCTAL_DIGITS:
                start = i
                while i < n and body[i] in _OCTAL_DIGITS and i - start < 3:
                    i += 1
                out.append(chr(int(body[start:i], 8)))
                continue
            raise LexError(f"unknown escape sequence \\{ch}", loc)
        return "".join(out)

    def _skip_whitespace_and_comments(self) -> None:
        while self.pos < len(self.source):
            ch = self.source[self.pos]
            if ch in " \t\r\n\f\v":
                self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._skip_block_comment()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self.source[self.pos] != "\n":
                    self._advance()
            else:
                return

    def _skip_block_comment(self) -> None:
        start = self._loc()
        self._advance(2)
        while self.pos < len(self.source):
            if self.source[self.pos] == "*" and self._peek(1) == "/":
                self._advance(2)
                return
            self._advance()
        raise LexError("unterminated block comment", start)

    def _scan_identifier(self) -> Token:
        loc = self._loc()
        start = self.pos
        while self.pos < len(self.source) and self.source[self.pos] in _IDENT_CONT:
            self._advance()
        text = self.source[start : self.pos]
        if self.keep_keywords and text in ALL_KEYWORDS:
            return Token(TokenKind.KEYWORD, text, loc)
        return Token(TokenKind.IDENT, text, loc)

    def _scan_number(self) -> Token:
        loc = self._loc()
        start = self.pos
        is_float = False

        if self.source[self.pos] == "0" and self._peek(1) in ("x", "X"):
            self._advance(2)
            if self._peek() not in _HEX_DIGITS:
                raise LexError("malformed hexadecimal literal", loc)
            while self._peek() in _HEX_DIGITS:
                self._advance()
        else:
            while self._peek() in _DIGITS:
                self._advance()
            if self._peek() == "." and self._peek(1) != ".":
                is_float = True
                self._advance()
                while self._peek() in _DIGITS:
                    self._advance()
            if self._peek() and self._peek() in "eE" and (
                self._peek(1) in _DIGITS
                or (self._peek(1) in ("+", "-") and self._peek(2) in _DIGITS)
            ):
                is_float = True
                self._advance()
                if self._peek() and self._peek() in "+-":
                    self._advance()
                while self._peek() in _DIGITS:
                    self._advance()

        # Integer / float suffixes.
        if is_float:
            while self._peek() and self._peek() in "fFlL":
                self._advance()
        else:
            while self._peek() and self._peek() in "uUlL":
                self._advance()

        text = self.source[start : self.pos]
        if is_float:
            return Token(
                TokenKind.FLOAT_LIT, text, loc, value=float(text.rstrip("fFlL"))
            )
        return Token(
            TokenKind.INT_LIT, text, loc, value=_decode_int(text)
        )

    def _scan_string(self) -> Token:
        loc = self._loc()
        start = self.pos
        self._advance()  # opening quote
        chars: list[str] = []
        while True:
            if self.pos >= len(self.source):
                raise LexError("unterminated string literal", loc)
            ch = self.source[self.pos]
            if ch == "\n":
                raise LexError("newline in string literal", loc)
            if ch == '"':
                self._advance()
                break
            if ch == "\\":
                chars.append(self._scan_escape(loc))
            else:
                chars.append(ch)
                self._advance()
        text = self.source[start : self.pos]
        return Token(TokenKind.STRING_LIT, text, loc, value="".join(chars))

    def _scan_char(self) -> Token:
        loc = self._loc()
        start = self.pos
        self._advance()  # opening quote
        if self._peek() == "'":
            raise LexError("empty character literal", loc)
        if self._peek() == "\\":
            decoded = self._scan_escape(loc)
        else:
            decoded = self._peek()
            self._advance()
        if self._peek() != "'":
            raise LexError("unterminated character literal", loc)
        self._advance()
        text = self.source[start : self.pos]
        return Token(TokenKind.CHAR_LIT, text, loc, value=ord(decoded))

    def _scan_escape(self, loc: SourceLocation) -> str:
        self._advance()  # backslash
        ch = self._peek()
        if ch == "":
            raise LexError("unterminated escape sequence", loc)
        if ch in _SIMPLE_ESCAPES:
            self._advance()
            return _SIMPLE_ESCAPES[ch]
        if ch == "x":
            self._advance()
            digits = []
            while self._peek() in _HEX_DIGITS:
                digits.append(self._peek())
                self._advance()
            if not digits:
                raise LexError("malformed hex escape", loc)
            return chr(int("".join(digits), 16))
        if ch in _OCTAL_DIGITS:
            digits = []
            while self._peek() in _OCTAL_DIGITS and len(digits) < 3:
                digits.append(self._peek())
                self._advance()
            return chr(int("".join(digits), 8))
        raise LexError(f"unknown escape sequence \\{ch}", loc)


def _decode_int(text: str) -> int:
    body = text.rstrip("uUlL")
    if body.lower().startswith("0x"):
        return int(body, 16)
    if body.startswith("0") and len(body) > 1:
        return int(body, 8)
    return int(body)


def tokenize(source: str, filename: str = "<string>", **kwargs) -> list[Token]:
    """Convenience wrapper: scan ``source`` into a token list."""
    return Scanner(source, filename, **kwargs).tokenize()
