"""The tokenizer for C extended with the macro language's meta-tokens.

The scanner is a straightforward maximal-munch tokenizer.  Two small
deviations from a stock C tokenizer serve the macro language:

* meta-tokens (``{|``, ``|}``, ``$$``, ``::``, ``$``, `````` ` ``,
  ``@``) are recognized, longest spelling first, and
* meta-token recognition can be disabled (``meta=False``) so the same
  scanner doubles as the plain C tokenizer used by the token-macro
  baseline.

Comments (``/* */`` and ``//``) are skipped.  Line/column bookkeeping
feeds :class:`~repro.errors.SourceLocation` on every token.
"""

from __future__ import annotations

from repro.errors import LexError, SourceLocation
from repro.lexer.tokens import (
    ALL_KEYWORDS,
    META_TOKEN_SPELLINGS,
    PUNCTUATORS,
    Token,
    TokenKind,
)

_IDENT_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_"
)
_IDENT_CONT = _IDENT_START | frozenset("0123456789")
_DIGITS = frozenset("0123456789")
_HEX_DIGITS = _DIGITS | frozenset("abcdefABCDEF")
_OCTAL_DIGITS = frozenset("01234567")

_SIMPLE_ESCAPES = {
    "n": "\n", "t": "\t", "r": "\r", "v": "\v", "f": "\f",
    "a": "\a", "b": "\b", "0": "\0", "\\": "\\", "'": "'",
    '"': '"', "?": "?",
}


class Scanner:
    """Tokenizes a source buffer into a list of :class:`Token`.

    Parameters
    ----------
    source:
        The program text.
    filename:
        Used in source locations and error messages.
    meta:
        When true (the default), the seven macro-language meta-tokens
        are recognized.  When false the scanner behaves as a plain C
        tokenizer (``$`` and `````` ` `` become lex errors, ``@`` too).
    keep_keywords:
        When false, C keywords are returned as plain identifiers.  The
        token-macro baseline uses this mode because CPP does not treat
        keywords specially.
    """

    def __init__(
        self,
        source: str,
        filename: str = "<string>",
        *,
        meta: bool = True,
        keep_keywords: bool = True,
    ) -> None:
        self.source = source
        self.filename = filename
        self.meta = meta
        self.keep_keywords = keep_keywords
        self.pos = 0
        self.line = 1
        self.col = 1

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------

    def tokenize(self) -> list[Token]:
        """Scan the whole buffer, returning tokens ending with EOF."""
        tokens: list[Token] = []
        while True:
            token = self.next_token()
            tokens.append(token)
            if token.kind is TokenKind.EOF:
                return tokens

    def next_token(self) -> Token:
        """Scan and return the next token (EOF at end of buffer)."""
        self._skip_whitespace_and_comments()
        if self.pos >= len(self.source):
            return Token(TokenKind.EOF, "", self._loc())

        ch = self.source[self.pos]
        if ch in _IDENT_START:
            return self._scan_identifier()
        if ch in _DIGITS or (ch == "." and self._peek(1) in _DIGITS):
            return self._scan_number()
        if ch == '"':
            return self._scan_string()
        if ch == "'":
            return self._scan_char()

        if self.meta:
            for spelling, kind in META_TOKEN_SPELLINGS:
                if self.source.startswith(spelling, self.pos):
                    loc = self._loc()
                    self._advance(len(spelling))
                    return Token(kind, spelling, loc)

        for spelling in PUNCTUATORS:
            if self.source.startswith(spelling, self.pos):
                loc = self._loc()
                self._advance(len(spelling))
                return Token(TokenKind.PUNCT, spelling, loc)

        raise LexError(f"unexpected character {ch!r}", self._loc())

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _loc(self) -> SourceLocation:
        return SourceLocation(self.line, self.col, self.pos, self.filename)

    def _peek(self, ahead: int = 0) -> str:
        index = self.pos + ahead
        if index < len(self.source):
            return self.source[index]
        return ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos >= len(self.source):
                return
            if self.source[self.pos] == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
            self.pos += 1

    def _skip_whitespace_and_comments(self) -> None:
        while self.pos < len(self.source):
            ch = self.source[self.pos]
            if ch in " \t\r\n\f\v":
                self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._skip_block_comment()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self.source[self.pos] != "\n":
                    self._advance()
            else:
                return

    def _skip_block_comment(self) -> None:
        start = self._loc()
        self._advance(2)
        while self.pos < len(self.source):
            if self.source[self.pos] == "*" and self._peek(1) == "/":
                self._advance(2)
                return
            self._advance()
        raise LexError("unterminated block comment", start)

    def _scan_identifier(self) -> Token:
        loc = self._loc()
        start = self.pos
        while self.pos < len(self.source) and self.source[self.pos] in _IDENT_CONT:
            self._advance()
        text = self.source[start : self.pos]
        if self.keep_keywords and text in ALL_KEYWORDS:
            return Token(TokenKind.KEYWORD, text, loc)
        return Token(TokenKind.IDENT, text, loc)

    def _scan_number(self) -> Token:
        loc = self._loc()
        start = self.pos
        is_float = False

        if self.source[self.pos] == "0" and self._peek(1) in ("x", "X"):
            self._advance(2)
            if self._peek() not in _HEX_DIGITS:
                raise LexError("malformed hexadecimal literal", loc)
            while self._peek() in _HEX_DIGITS:
                self._advance()
        else:
            while self._peek() in _DIGITS:
                self._advance()
            if self._peek() == "." and self._peek(1) != ".":
                is_float = True
                self._advance()
                while self._peek() in _DIGITS:
                    self._advance()
            if self._peek() and self._peek() in "eE" and (
                self._peek(1) in _DIGITS
                or (self._peek(1) in ("+", "-") and self._peek(2) in _DIGITS)
            ):
                is_float = True
                self._advance()
                if self._peek() and self._peek() in "+-":
                    self._advance()
                while self._peek() in _DIGITS:
                    self._advance()

        # Integer / float suffixes.
        if is_float:
            while self._peek() and self._peek() in "fFlL":
                self._advance()
        else:
            while self._peek() and self._peek() in "uUlL":
                self._advance()

        text = self.source[start : self.pos]
        if is_float:
            return Token(
                TokenKind.FLOAT_LIT, text, loc, value=float(text.rstrip("fFlL"))
            )
        return Token(
            TokenKind.INT_LIT, text, loc, value=_decode_int(text)
        )

    def _scan_string(self) -> Token:
        loc = self._loc()
        start = self.pos
        self._advance()  # opening quote
        chars: list[str] = []
        while True:
            if self.pos >= len(self.source):
                raise LexError("unterminated string literal", loc)
            ch = self.source[self.pos]
            if ch == "\n":
                raise LexError("newline in string literal", loc)
            if ch == '"':
                self._advance()
                break
            if ch == "\\":
                chars.append(self._scan_escape(loc))
            else:
                chars.append(ch)
                self._advance()
        text = self.source[start : self.pos]
        return Token(TokenKind.STRING_LIT, text, loc, value="".join(chars))

    def _scan_char(self) -> Token:
        loc = self._loc()
        start = self.pos
        self._advance()  # opening quote
        if self._peek() == "'":
            raise LexError("empty character literal", loc)
        if self._peek() == "\\":
            decoded = self._scan_escape(loc)
        else:
            decoded = self._peek()
            self._advance()
        if self._peek() != "'":
            raise LexError("unterminated character literal", loc)
        self._advance()
        text = self.source[start : self.pos]
        return Token(TokenKind.CHAR_LIT, text, loc, value=ord(decoded))

    def _scan_escape(self, loc: SourceLocation) -> str:
        self._advance()  # backslash
        ch = self._peek()
        if ch == "":
            raise LexError("unterminated escape sequence", loc)
        if ch in _SIMPLE_ESCAPES:
            self._advance()
            return _SIMPLE_ESCAPES[ch]
        if ch == "x":
            self._advance()
            digits = []
            while self._peek() in _HEX_DIGITS:
                digits.append(self._peek())
                self._advance()
            if not digits:
                raise LexError("malformed hex escape", loc)
            return chr(int("".join(digits), 16))
        if ch in _OCTAL_DIGITS:
            digits = []
            while self._peek() in _OCTAL_DIGITS and len(digits) < 3:
                digits.append(self._peek())
                self._advance()
            return chr(int("".join(digits), 8))
        raise LexError(f"unknown escape sequence \\{ch}", loc)


def _decode_int(text: str) -> int:
    body = text.rstrip("uUlL")
    if body.lower().startswith("0x"):
        return int(body, 16)
    if body.startswith("0") and len(body) > 1:
        return int(body, 8)
    return int(body)


def tokenize(source: str, filename: str = "<string>", **kwargs) -> list[Token]:
    """Convenience wrapper: scan ``source`` into a token list."""
    return Scanner(source, filename, **kwargs).tokenize()
