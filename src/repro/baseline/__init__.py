"""Baseline macro systems for the Figure 1 taxonomy comparison.

* :mod:`repro.baseline.charmacro` — character level (GPM-flavoured);
* :mod:`repro.baseline.tokmacro` — token level (CPP-flavoured).

The syntax level is the package's main subject
(:class:`repro.engine.MacroProcessor`).
"""

from repro.baseline.charmacro import CharMacroError, CharMacroProcessor
from repro.baseline.tokmacro import (
    TokenMacroError,
    TokenMacroProcessor,
    render_tokens,
)

__all__ = [
    "CharMacroError",
    "CharMacroProcessor",
    "TokenMacroError",
    "TokenMacroProcessor",
    "render_tokens",
]
