"""A token-substitution macro processor in the style of ANSI CPP.

This is the Figure 1 "token / substitution+repetition" baseline: it
implements ``#define`` (object-like and function-like), ``#undef``,
argument substitution and rescanning with the standard self-reference
("blue paint") guard.  It deliberately reproduces CPP's famous
weaknesses, which the paper's introduction uses to motivate syntax
macros:

* **no encapsulation** — ``#define MULT(A,B) A * B`` expanded with
  ``x + y`` and ``m + n`` yields ``x + y * m + n``, whose parse is
  ``x + (y * m) + n``;
* **no syntactic safety** — a macro body can be an arbitrary token
  sequence, so a use site can produce code that does not parse;
* **no programmability** — substitution plus rescanning only.

``tests/baseline/test_interference.py`` and
``benchmarks/test_fig1_taxonomy.py`` run this side by side with MS2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import Ms2Error, SourceLocation
from repro.lexer.scanner import Scanner
from repro.lexer.tokens import Token, TokenKind


class TokenMacroError(Ms2Error):
    """Malformed directive or invocation."""


@dataclass(slots=True)
class TokenMacro:
    """One ``#define``."""

    name: str
    params: list[str] | None  # None = object-like
    body: list[Token]

    @property
    def function_like(self) -> bool:
        return self.params is not None


class TokenMacroProcessor:
    """A CPP-flavoured token macro processor."""

    def __init__(self) -> None:
        self.macros: dict[str, TokenMacro] = {}

    # ------------------------------------------------------------------
    # Directives
    # ------------------------------------------------------------------

    def define(self, text: str) -> TokenMacro:
        """Process the text after ``#define`` (name[(params)] body)."""
        tokens = _tokenize(text)
        if not tokens or tokens[0].kind is not TokenKind.IDENT:
            raise TokenMacroError(f"malformed #define: {text!r}")
        name = tokens[0].text
        params: list[str] | None = None
        body_start = 1
        # Function-like only when '(' immediately follows the name.
        if (
            len(tokens) > 1
            and tokens[1].is_punct("(")
            and tokens[1].location.offset == tokens[0].location.offset + len(name)
        ):
            params = []
            i = 2
            if tokens[i].is_punct(")"):
                i += 1
            else:
                while True:
                    if tokens[i].kind is not TokenKind.IDENT:
                        raise TokenMacroError(
                            f"malformed parameter list in #define {name}"
                        )
                    params.append(tokens[i].text)
                    i += 1
                    if tokens[i].is_punct(","):
                        i += 1
                        continue
                    if tokens[i].is_punct(")"):
                        i += 1
                        break
                    raise TokenMacroError(
                        f"malformed parameter list in #define {name}"
                    )
            body_start = i
        macro = TokenMacro(name, params, tokens[body_start:])
        self.macros[name] = macro
        return macro

    def undef(self, name: str) -> None:
        self.macros.pop(name, None)

    # ------------------------------------------------------------------
    # Expansion
    # ------------------------------------------------------------------

    def process(self, source: str) -> str:
        """Process a whole buffer: directives + macro expansion."""
        out_lines: list[str] = []
        for line in source.splitlines():
            stripped = line.strip()
            if stripped.startswith("#define"):
                self.define(stripped[len("#define"):].strip())
                continue
            if stripped.startswith("#undef"):
                self.undef(stripped[len("#undef"):].strip())
                continue
            out_lines.append(render_tokens(self.expand_text(line)))
        return "\n".join(line for line in out_lines if line.strip())

    def expand_text(self, text: str) -> list[Token]:
        return self.expand(_tokenize(text))

    def expand(
        self, tokens: list[Token], active: frozenset[str] = frozenset()
    ) -> list[Token]:
        """Expand macros in a token list, rescanning results."""
        out: list[Token] = []
        i = 0
        while i < len(tokens):
            token = tokens[i]
            if token.kind is TokenKind.IDENT and token.text in self.macros:
                if token.text in active:
                    out.append(token)  # blue paint: no self-reference
                    i += 1
                    continue
                macro = self.macros[token.text]
                if macro.function_like:
                    if i + 1 < len(tokens) and tokens[i + 1].is_punct("("):
                        args, consumed = self._collect_args(tokens, i + 1)
                        if len(args) != len(macro.params or []):
                            raise TokenMacroError(
                                f"macro {macro.name!r} expects "
                                f"{len(macro.params or [])} argument(s), "
                                f"got {len(args)}",
                                token.location,
                            )
                        substituted = self._substitute(macro, args)
                        rescanned = self.expand(
                            substituted, active | {macro.name}
                        )
                        out.extend(rescanned)
                        i = consumed
                        continue
                    # Function-like name without '(' is left alone.
                    out.append(token)
                    i += 1
                    continue
                rescanned = self.expand(
                    list(macro.body), active | {macro.name}
                )
                out.extend(rescanned)
                i += 1
                continue
            out.append(token)
            i += 1
        return out

    def _collect_args(
        self, tokens: list[Token], open_index: int
    ) -> tuple[list[list[Token]], int]:
        """Collect comma-separated argument token lists; returns
        (args, index-after-closing-paren)."""
        assert tokens[open_index].is_punct("(")
        args: list[list[Token]] = []
        current: list[Token] = []
        depth = 1
        i = open_index + 1
        while i < len(tokens):
            token = tokens[i]
            if token.is_punct("("):
                depth += 1
            elif token.is_punct(")"):
                depth -= 1
                if depth == 0:
                    if current or args:
                        args.append(current)
                    return args, i + 1
            elif token.is_punct(",") and depth == 1:
                args.append(current)
                current = []
                i += 1
                continue
            current.append(token)
            i += 1
        raise TokenMacroError(
            "unterminated macro argument list",
            tokens[open_index].location,
        )

    def _substitute(
        self, macro: TokenMacro, args: list[list[Token]]
    ) -> list[Token]:
        """Parameter-for-argument token substitution — the raw token
        splice that causes the paper's precedence interference."""
        mapping = dict(zip(macro.params or [], args))
        out: list[Token] = []
        for token in macro.body:
            if token.kind is TokenKind.IDENT and token.text in mapping:
                out.extend(mapping[token.text])
            else:
                out.append(token)
        return out


def _tokenize(text: str) -> list[Token]:
    tokens = Scanner(text, meta=False, keep_keywords=False).tokenize()
    return tokens[:-1]  # drop EOF


def render_tokens(tokens: list[Token]) -> str:
    """Join tokens back into text (space-separated, CPP-style)."""
    return " ".join(t.text for t in tokens)
