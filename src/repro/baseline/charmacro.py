"""A character-substitution macro processor in the style of GPM.

This is the Figure 1 "character / full-programming-language" corner
(Strachey's General Purpose Macrogenerator, 1965): macros transform
*streams of characters* into streams of characters.  The subset here:

* ``$DEF,name,<body>;`` defines a macro; inside the body ``~1``,
  ``~2`` … refer to the call's arguments;
* ``$name,arg1,arg2;`` calls a macro; arguments may be quoted in
  ``< >`` (quoting protects commas, semicolons and nested calls);
* macro results are rescanned, so macros can build and invoke other
  macros — full programmability, zero structure.

Character macros can do things no token or syntax macro can (splice
two identifier halves into one name) precisely *because* they know
nothing about lexical or syntactic structure — which is also why they
offer no safety whatsoever.  ``benchmarks/test_fig1_taxonomy.py``
demonstrates both sides.
"""

from __future__ import annotations

from repro.errors import Ms2Error


class CharMacroError(Ms2Error):
    """Malformed definition or call."""


class CharMacroProcessor:
    """A GPM-flavoured character macro processor."""

    MAX_STEPS = 1_000_000
    MAX_DEPTH = 200

    def __init__(self) -> None:
        self.macros: dict[str, str] = {}
        self._steps = 0
        self._depth = 0

    def define(self, name: str, body: str) -> None:
        self.macros[name] = body

    def process(self, source: str) -> str:
        """Expand ``source`` until no macro calls remain."""
        self._steps = 0
        return self._scan(source)

    # ------------------------------------------------------------------

    def _scan(self, text: str) -> str:
        out: list[str] = []
        i = 0
        while i < len(text):
            ch = text[i]
            if ch == "$":
                call_text, i = self._read_call(text, i)
                out.append(call_text)
                continue
            if ch == "<":
                quoted, i = self._read_quoted(text, i)
                out.append(quoted)
                continue
            out.append(ch)
            i += 1
        return "".join(out)

    def _read_call(self, text: str, start: int) -> tuple[str, int]:
        """Parse ``$name,arg,...;`` starting at ``start`` (the ``$``)."""
        self._tick()
        i = start + 1
        name_chars: list[str] = []
        while i < len(text) and (text[i].isalnum() or text[i] == "_"):
            name_chars.append(text[i])
            i += 1
        name = "".join(name_chars)
        if not name:
            return "$", start + 1
        args: list[str] = []
        if i < len(text) and text[i] == ",":
            i += 1
            current: list[str] = []
            while True:
                if i >= len(text):
                    raise CharMacroError(
                        f"unterminated call of character macro {name!r}"
                    )
                ch = text[i]
                if ch == "<":
                    quoted, i = self._read_quoted(text, i)
                    current.append(quoted)
                    continue
                if ch == "$":
                    call_text, i = self._read_call(text, i)
                    current.append(call_text)
                    continue
                if ch == ",":
                    args.append("".join(current))
                    current = []
                    i += 1
                    continue
                if ch == ";":
                    args.append("".join(current))
                    i += 1
                    break
                current.append(ch)
                i += 1
        elif i < len(text) and text[i] == ";":
            i += 1
        else:
            # A bare '$name' without a call form is literal text.
            return "$" + name, i

        if name == "DEF":
            if len(args) != 2:
                raise CharMacroError("$DEF takes a name and a body")
            self.define(args[0].strip(), args[1])
            return "", i
        if name not in self.macros:
            raise CharMacroError(f"undefined character macro {name!r}")
        body = self.macros[name]
        substituted = _substitute_args(body, args)
        # Rescan the result: macros may generate macros.
        # Check before incrementing: the raising frame never counts
        # itself, so the finally-decrements of enclosing frames leave
        # the counter balanced after the error is caught.
        if self._depth >= self.MAX_DEPTH:
            raise CharMacroError(
                f"character macro expansion exceeded depth "
                f"{self.MAX_DEPTH} (while expanding {name!r}); "
                "runaway recursion?"
            )
        self._depth += 1
        try:
            return self._scan(substituted), i
        finally:
            self._depth -= 1

    def _read_quoted(self, text: str, start: int) -> tuple[str, int]:
        """Read a ``< >`` quotation; returns its contents (one level
        of quoting stripped)."""
        depth = 0
        i = start
        out: list[str] = []
        while i < len(text):
            ch = text[i]
            if ch == "<":
                depth += 1
                if depth > 1:
                    out.append(ch)
            elif ch == ">":
                depth -= 1
                if depth == 0:
                    return "".join(out), i + 1
                out.append(ch)
            else:
                out.append(ch)
            i += 1
        raise CharMacroError("unterminated < > quotation")

    def _tick(self) -> None:
        self._steps += 1
        if self._steps > self.MAX_STEPS:
            raise CharMacroError(
                "character macro expansion exceeded its budget; "
                "runaway recursion?"
            )


def _substitute_args(body: str, args: list[str]) -> str:
    """Replace ``~n`` argument references in a macro body."""
    out: list[str] = []
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == "~" and i + 1 < len(body) and body[i + 1].isdigit():
            j = i + 1
            while j < len(body) and body[j].isdigit():
                j += 1
            index = int(body[i + 1 : j]) - 1
            if 0 <= index < len(args):
                out.append(args[index])
            i = j
            continue
        out.append(ch)
        i += 1
    return "".join(out)
