"""The recursive-descent parser for C extended with the macro language.

Architecture (paper section 3): hand-written recursive descent at the
declaration and statement levels, operator-precedence at the expression
level (:mod:`repro.parser.exprs`).  The parser is fully re-entrant —
placeholder expressions are parsed by recursive calls on the same
stream — and performs AST type analysis *while parsing* so that:

* code templates parse deterministically (placeholder tokens carry the
  AST type of their expression — Figures 2 and 3), and
* macro bodies are fully type-checked at definition time.

The parser is usable standalone for plain C.  Macro definition,
meta-declaration and expansion behaviour is delegated to a *host*
object (see :class:`MacroHost`); :class:`repro.engine.MacroProcessor`
provides the full implementation.
"""

from __future__ import annotations

import contextlib
from time import perf_counter
from typing import Any, Protocol

from repro.asttypes.body import BodyChecker
from repro.asttypes.check import MetaTypeInferencer
from repro.asttypes.convert import (
    bindings_from_declaration,
    is_meta_declaration,
)
from repro.asttypes.env import TypeEnv
from repro.asttypes.types import (
    DECL,
    EXP,
    ID,
    STMT,
    TYPE_SPEC,
    AstType,
    FuncType,
    ListType,
    list_of,
    prim,
)
from repro.cast import ctypes, decls, nodes, stmts
from repro.cast.base import Node
from repro.diagnostics import DiagnosticSink
from repro.errors import MacroSyntaxError, Ms2Error, ParseError, SYNTHETIC
from repro.lexer.scanner import tokenize
from repro.lexer.tokens import AST_SPECIFIER_NAMES, Token, TokenKind
from repro.macros.lookahead import validate_pattern
from repro.macros.pattern import Pattern, PatternParser
from repro.parser.exprs import ExpressionParserMixin
from repro.parser.stream import TokenStream

_STORAGE_KEYWORDS = frozenset(
    {"typedef", "extern", "static", "auto", "register"}
)
_QUALIFIER_KEYWORDS = frozenset({"const", "volatile"})
_PRIMITIVE_KEYWORDS = frozenset(
    {
        "void", "char", "short", "int", "long", "float", "double",
        "signed", "unsigned",
    }
)
_TYPE_KEYWORDS = _PRIMITIVE_KEYWORDS | {"struct", "union", "enum"}
_DECL_KEYWORDS = _STORAGE_KEYWORDS | _QUALIFIER_KEYWORDS | _TYPE_KEYWORDS


class MacroHost(Protocol):
    """What the parser needs from the macro machinery.

    The engine implements this; a parser without a host handles plain
    C only (``syntax`` / ``metadcl`` / invocations become errors).
    """

    def lookup_macro(self, name: str) -> Any | None:
        """Return the macro definition registered under ``name``."""

    def dispatch_macro(self, name: str, position: str) -> Any | None:
        """Return the macro invocable as ``name`` at ``position``
        (single-probe dispatch index); optional — the parser falls
        back to :meth:`lookup_macro` plus a position check."""

    def handle_macro_def(self, macro: decls.MacroDef, parser: "Parser") -> Any:
        """Compile and register a just-parsed macro definition."""

    def handle_meta_decl(self, meta: decls.MetaDecl, parser: "Parser") -> None:
        """Record (and initialize) a global meta-declaration."""

    def handle_meta_function(
        self, fn: decls.FunctionDef, parser: "Parser"
    ) -> None:
        """Register a meta-function definition."""

    def expand_invocation(
        self, invocation: nodes.MacroInvocation, position: str
    ) -> Node | list[Node]:
        """Run the macro and return the replacement AST(s)."""


class Parser(ExpressionParserMixin):
    """Parser for the extended language.

    Parameters
    ----------
    source:
        Program text, or a pre-built :class:`TokenStream`.
    host:
        The macro host (None for plain C).
    expand_inline:
        When true (and a host is present), macro invocations are
        expanded as soon as they are parsed — "macros operate during
        parsing".  When false, :class:`~repro.cast.nodes.MacroInvocation`
        nodes are left in the tree.
    filename:
        For source locations.
    """

    def __init__(
        self,
        source: str | TokenStream,
        host: MacroHost | None = None,
        *,
        expand_inline: bool = True,
        filename: str = "<string>",
        stats: Any = None,
        profiler: Any = None,
        diagnostics: DiagnosticSink | None = None,
    ) -> None:
        #: Optional :class:`repro.stats.PipelineStats` hooked up by the
        #: engine; None for standalone parsers.
        self.stats = stats
        #: Optional :class:`repro.diagnostics.DiagnosticSink`; when
        #: present the parser recovers from errors (panic-mode resync)
        #: instead of failing fast.
        self.diagnostics = diagnostics
        #: Optional :class:`repro.trace.PhaseProfiler` (``--profile``).
        self.profiler = profiler
        if isinstance(source, TokenStream):
            self.stream = source
        elif profiler is None:
            self.stream = TokenStream(
                tokenize(source, filename, stats=stats)
            )
        else:
            with profiler.phase("scan"):
                self.stream = TokenStream(
                    tokenize(source, filename, stats=stats)
                )
        self.host = host
        self.expand_inline = expand_inline
        self.filename = filename

        #: Scoped typedef-name table (context sensitivity, paper §3).
        self.typedef_scopes: list[set[str]] = [set()]

        #: Scoped C symbol table (the semantic-macro substrate, §5).
        from repro.semantics import CScope

        self.c_scope = CScope()

        #: Global meta type environment (metadcl vars, meta functions).
        self.global_type_env = TypeEnv()
        #: Current meta type environment (rebound inside bodies/scopes).
        self.type_env = self.global_type_env
        self.inferencer = MetaTypeInferencer(self.type_env)

        #: True while parsing meta-code (macro bodies, meta functions).
        self.meta_mode = False
        #: True while parsing inside a backquote template.
        self.template_mode = False

    # ==================================================================
    # Token plumbing (placeholder conversion happens here)
    # ==================================================================

    def peek(self, ahead: int = 0) -> Token:
        if ahead == 0:
            self._convert_placeholder()
        return self.stream.peek(ahead)

    def next_token(self) -> Token:
        self._convert_placeholder()
        return self.stream.next()

    def _convert_placeholder(self) -> None:
        """The tokenizer/parser co-routine of paper section 3.

        Inside a template, a ``$`` token is replaced by a synthesized
        placeholder token wrapping the parsed-and-typed placeholder
        expression.  Every downstream parse routine then needs only
        one token of lookahead to decide what the placeholder stands
        for.
        """
        if not self.template_mode:
            return
        token = self.stream.peek()
        if token.kind is not TokenKind.DOLLAR:
            return
        self.stream.next()  # consume '$'
        with self._template(False):
            meta_expr = self._parse_placeholder_meta_expr(token)
        asttype = self.inferencer.infer(meta_expr)
        payload = nodes.PlaceholderExpr(
            meta_expr, asttype, loc=token.location
        )
        synthesized = Token(
            TokenKind.PLACEHOLDER,
            f"${getattr(meta_expr, 'name', '(...)')}",
            token.location,
            value=payload,
        )
        self.stream.push(synthesized)

    def _parse_placeholder_meta_expr(self, dollar: Token) -> Node:
        nxt = self.stream.peek()
        if nxt.kind is TokenKind.IDENT:
            self.stream.next()
            return nodes.Identifier(nxt.text, loc=nxt.location)
        if nxt.is_punct("("):
            self.stream.next()
            expr = self.parse_expression()
            self.stream.expect_punct(")")
            return expr
        raise ParseError(
            "a placeholder is '$' followed by an identifier or a "
            f"parenthesized expression, got {nxt.describe()}",
            dollar.location,
        )

    # ==================================================================
    # Mode management
    # ==================================================================

    @contextlib.contextmanager
    def _template(self, on: bool):
        saved = self.template_mode
        self.template_mode = on
        try:
            yield
        finally:
            self.template_mode = saved

    @contextlib.contextmanager
    def _meta(self, on: bool):
        saved = self.meta_mode
        self.meta_mode = on
        try:
            yield
        finally:
            self.meta_mode = saved

    @contextlib.contextmanager
    def _scoped_env(self, env: TypeEnv):
        saved = self.type_env
        self.type_env = env
        self.inferencer.env = env
        try:
            yield
        finally:
            self.type_env = saved
            self.inferencer.env = saved

    # ==================================================================
    # Typedef table
    # ==================================================================

    def push_typedef_scope(self) -> None:
        self.typedef_scopes.append(set())

    def pop_typedef_scope(self) -> None:
        self.typedef_scopes.pop()

    def add_typedef(self, name: str) -> None:
        self.typedef_scopes[-1].add(name)

    def is_typedef_name(self, name: str) -> bool:
        return any(name in scope for scope in self.typedef_scopes)

    # ==================================================================
    # Macro table access
    # ==================================================================

    def _timed_check(self, checker: BodyChecker, body: Node) -> None:
        """Run a definition-time body check under the ``type-check``
        phase timer when profiling is enabled."""
        prof = self.profiler
        if prof is None:
            checker.check_body(body)
            return
        with prof.phase("type-check"):
            checker.check_body(body)

    def macro_lookup(self, name: str):
        if self.host is None:
            return None
        return self.host.lookup_macro(name)

    def macro_dispatch(self, name: str, position: str):
        """The macro invocable as ``name`` at ``position``, or None.

        Probes the host's dispatch index (one trie-root hit) when it
        has one; otherwise degrades to lookup + position check.
        """
        host = self.host
        if host is None:
            return None
        prof = self.profiler
        t0 = perf_counter() if prof is not None else 0.0
        dispatch = getattr(host, "dispatch_macro", None)
        if dispatch is not None:
            defn = dispatch(name, position)
        else:
            defn = host.lookup_macro(name)
            if defn is not None and defn.ret_spec != position:
                defn = None
        if prof is not None:
            prof.add("dispatch", perf_counter() - t0)
        stats = self.stats
        if stats is not None:
            if defn is not None:
                stats.dispatch_hits += 1
            else:
                stats.dispatch_misses += 1
        return defn

    # ==================================================================
    # Program / top level
    # ==================================================================

    def parse_program(self) -> decls.TranslationUnit:
        items: list[Node] = []
        sink = self.diagnostics
        while not self.stream.at_eof():
            if sink is None:
                item = self.parse_top_level_item()
            else:
                before = self.stream.save()
                try:
                    item = self.parse_top_level_item()
                except Ms2Error as exc:
                    item = self._recover_top_level(exc, sink, before)
                    if item is None:
                        break
            if isinstance(item, list):
                items.extend(item)
            elif item is not None:
                items.append(item)
        return decls.TranslationUnit(items)

    # ------------------------------------------------------------------
    # Panic-mode error recovery (active only with a diagnostic sink)
    # ------------------------------------------------------------------

    def _recover_top_level(
        self,
        exc: Ms2Error,
        sink: DiagnosticSink,
        before: tuple[int, list[Token]],
    ) -> Node | None:
        """Record ``exc`` and resynchronize at a top-level boundary.

        Returns a poisoned :class:`~repro.cast.nodes.ErrorDecl`
        covering the skipped region, or ``None`` once the sink is
        saturated (the caller then stops parsing altogether).
        """
        if sink.saturated or not sink.emit_error(exc):
            # Cap reached: fast-forward to EOF, surface what we have.
            while not self.stream.at_eof():
                self.stream.next()
            return None
        if self.stats is not None:
            self.stats.parse_recoveries += 1
        # Guarantee progress even when the failing parse consumed
        # nothing, then skip to the next plausible item boundary.
        if self.stream.save() == before and not self.stream.at_eof():
            self.stream.next()
        self._resync_top_level()
        return nodes.ErrorDecl(
            message=exc.message, loc=exc.location or SYNTHETIC
        )

    def _resync_top_level(self) -> None:
        """Skip tokens until a plausible top-level boundary: past a
        balanced ``}`` or a ``;`` at brace depth zero, or just before
        a keyword that can start a top-level item (``syntax`` /
        ``metadcl`` / declaration specifiers), or EOF."""
        depth = 0
        while not self.stream.at_eof():
            token = self.stream.peek()
            if (
                depth == 0
                and token.kind is TokenKind.KEYWORD
                and (
                    token.text in ("syntax", "metadcl")
                    or token.text in _DECL_KEYWORDS
                )
            ):
                return
            self.stream.next()
            if token.is_punct("{"):
                depth += 1
            elif token.is_punct("}"):
                if depth <= 1:
                    return
                depth -= 1
            elif token.is_punct(";") and depth == 0:
                return

    def _recover_in_compound(
        self, exc: Ms2Error, sink: DiagnosticSink
    ) -> nodes.ErrorStmt:
        """Record ``exc`` and resynchronize inside a compound
        statement (skip to ``;`` — consumed — or stop short of the
        closing ``}``).  Raises when the sink is saturated so the
        give-up propagates to the top level."""
        if sink.saturated or not sink.emit_error(exc):
            raise exc
        if self.stats is not None:
            self.stats.parse_recoveries += 1
        depth = 0
        while not self.stream.at_eof():
            token = self.stream.peek()
            if depth == 0 and token.is_punct("}"):
                break
            self.stream.next()
            if token.is_punct("{"):
                depth += 1
            elif token.is_punct("}"):
                depth -= 1
            elif token.is_punct(";") and depth == 0:
                break
        return nodes.ErrorStmt(
            message=exc.message, loc=exc.location or SYNTHETIC
        )

    @property
    def _recovering(self) -> bool:
        """True when errors should be trapped at statement level:
        recovery is confined to plain program code — a fault inside
        meta-code (macro bodies, templates) poisons the whole
        definition at the top level instead, so no half-checked macro
        is ever registered."""
        return (
            self.diagnostics is not None
            and not self.meta_mode
            and not self.template_mode
        )

    def parse_top_level_item(self) -> Node | list[Node] | None:
        token = self.peek()
        if token.is_keyword("syntax"):
            return self.parse_macro_definition()
        if token.is_keyword("metadcl"):
            return self.parse_meta_declaration()
        if token.kind is TokenKind.IDENT:
            defn = self.macro_dispatch(token.text, "decl")
            if defn is not None:
                return self._invocation_at(defn, "decl")
        if token.kind is TokenKind.PLACEHOLDER:
            return self._placeholder_decl_item(token)
        return self.parse_declaration_or_function()

    def _placeholder_decl_item(self, token: Token) -> Node:
        payload = token.value
        if payload.asttype.is_usable_as(DECL) or payload.asttype.is_usable_as(
            list_of(DECL)
        ):
            self.next_token()
            node = decls.PlaceholderDecl(
                payload.meta_expr, payload.asttype, loc=token.location
            )
            self.stream.accept_punct(";")
            return node
        raise ParseError(
            f"placeholder of AST type {payload.asttype} cannot stand "
            "where a declaration is expected",
            token.location,
        )

    # ------------------------------------------------------------------
    # Declarations and function definitions
    # ------------------------------------------------------------------

    def parse_declaration_or_function(self) -> Node | list[Node] | None:
        """Top-level: a declaration, function definition, or meta item."""
        specs = self.parse_decl_specs()
        if self.stream.accept_punct(";"):
            # e.g. a bare struct/enum definition.
            return decls.Declaration(specs, [], loc=specs.loc)

        declarator = self.parse_declarator()
        nxt = self.peek()

        is_funcdef = False
        if _innermost_is_function(declarator):
            if nxt.is_punct("{"):
                is_funcdef = True
            elif self._starts_declaration(nxt):
                # K&R definitions: parameter declarations before '{'.
                func = _find_func_declarator(declarator)
                if not func.prototype:
                    is_funcdef = True

        if is_funcdef:
            return self._finish_function_def(specs, declarator)
        return self._finish_declaration(specs, declarator)

    def _finish_function_def(
        self, specs: decls.DeclSpecs, declarator: Node
    ) -> Node:
        kr_decls: list[Node] = []
        while not self.peek().is_punct("{"):
            kr_decls.append(self.parse_declaration())

        meta = _specs_are_meta(specs) or any(
            isinstance(n, ctypes.AstTypeSpec)
            for n in _walk_declarator(declarator)
        )
        if meta:
            fn = self._parse_meta_function(specs, declarator, kr_decls)
            if self.host is not None:
                self.host.handle_meta_function(fn, self)
            return decls.MetaDecl(fn, loc=fn.loc)

        # Open a C scope holding the parameters (semantic-macro
        # substrate: invocations in the body can query their types).
        saved_scope = self.c_scope
        self.c_scope = saved_scope.child()
        self.c_scope.record_parameters(declarator)
        for kr in kr_decls:
            if isinstance(kr, decls.Declaration):
                self.c_scope.record_declaration(kr)
        try:
            body = self.parse_compound_statement()
        finally:
            self.c_scope = saved_scope
        return decls.FunctionDef(specs, declarator, kr_decls, body,
                                 loc=specs.loc)

    def _parse_meta_function(
        self,
        specs: decls.DeclSpecs,
        declarator: Node,
        kr_decls: list[Node],
    ) -> decls.FunctionDef:
        """Parse a meta-function body with its parameters in scope."""
        from repro.asttypes.convert import (
            base_type_of_specs,
            binding_from_declarator,
        )

        base = base_type_of_specs(specs)
        name, fn_type = binding_from_declarator(base, declarator)
        if not isinstance(fn_type, FuncType):
            raise MacroSyntaxError(
                f"meta-function {name!r} has a non-function declarator",
                declarator.loc,
            )
        # Bind the function itself (recursion) before parsing the body.
        self.global_type_env.bind(name, fn_type)

        env = self.global_type_env.child()
        func_declarator = _find_func_declarator(declarator)
        for p in func_declarator.params:
            if isinstance(p, decls.ParamDecl):
                pbase = base_type_of_specs(p.specs)
                pname, ptype = binding_from_declarator(pbase, p.declarator)
                env.bind(pname, ptype)

        with self._meta(True), self._scoped_env(env):
            body = self.parse_compound_statement()
            checker = BodyChecker(env, fn_type.result)
            self._timed_check(checker, body)
        return decls.FunctionDef(specs, declarator, kr_decls, body,
                                 loc=specs.loc)

    def _finish_declaration(
        self, specs: decls.DeclSpecs, first_declarator: Node
    ) -> Node:
        init_declarators = [self._init_declarator_from(first_declarator)]
        while self.stream.accept_punct(","):
            init_declarators.append(self.parse_init_declarator())
        self.stream.expect_punct(";")
        declaration = decls.Declaration(specs, init_declarators,
                                        loc=specs.loc)
        if specs.is_typedef():
            for name in _declared_names(declaration):
                self.add_typedef(name)
        if not self.meta_mode and not is_meta_declaration(declaration):
            self.c_scope.record_declaration(declaration)
        if not self.meta_mode and is_meta_declaration(declaration):
            # A top-level declaration using @-types belongs to the meta
            # program even without an explicit ``metadcl`` prefix.
            for name, asttype in bindings_from_declaration(declaration):
                self.global_type_env.bind(name, asttype)
            meta = decls.MetaDecl(declaration, loc=declaration.loc)
            if self.host is not None:
                self.host.handle_meta_decl(meta, self)
            return meta
        return declaration

    def _init_declarator_from(self, declarator: Node) -> Node:
        if isinstance(
            declarator, (decls.PlaceholderInitDeclarator,)
        ):
            return declarator
        init = None
        if self.stream.accept_punct("="):
            init = self.parse_initializer()
        return decls.InitDeclarator(declarator, init, loc=declarator.loc)

    def parse_declaration(self) -> Node:
        """A plain declaration (no function definitions)."""
        specs = self.parse_decl_specs()
        if self.stream.accept_punct(";"):
            return decls.Declaration(specs, [], loc=specs.loc)
        init_declarators = [self.parse_init_declarator()]
        while self.stream.accept_punct(","):
            init_declarators.append(self.parse_init_declarator())
        self.stream.expect_punct(";")
        declaration = decls.Declaration(specs, init_declarators,
                                        loc=specs.loc)
        if specs.is_typedef():
            for name in _declared_names(declaration):
                self.add_typedef(name)
        return declaration

    # ------------------------------------------------------------------
    # Declaration specifiers
    # ------------------------------------------------------------------

    def parse_decl_specs(self) -> decls.DeclSpecs:
        storage: list[str] = []
        qualifiers: list[str] = []
        primitives: list[str] = []
        type_spec: Node | None = None
        start = self.peek().location

        while True:
            token = self.peek()
            if token.kind is TokenKind.KEYWORD:
                if token.text in _STORAGE_KEYWORDS:
                    storage.append(self.next_token().text)
                    continue
                if token.text in _QUALIFIER_KEYWORDS:
                    qualifiers.append(self.next_token().text)
                    continue
                if token.text in _PRIMITIVE_KEYWORDS:
                    if type_spec is not None:
                        break
                    primitives.append(self.next_token().text)
                    continue
                if token.text in ("struct", "union"):
                    if type_spec is not None or primitives:
                        break
                    type_spec = self.parse_struct_or_union()
                    continue
                if token.text == "enum":
                    if type_spec is not None or primitives:
                        break
                    type_spec = self.parse_enum()
                    continue
                break
            if token.kind is TokenKind.AT:
                if type_spec is not None or primitives:
                    break
                type_spec = self.parse_ast_type_spec()
                continue
            if token.kind is TokenKind.PLACEHOLDER:
                payload = token.value
                if (
                    type_spec is None
                    and not primitives
                    and payload.asttype.is_usable_as(TYPE_SPEC)
                ):
                    self.next_token()
                    type_spec = ctypes.PlaceholderTypeSpec(
                        payload.meta_expr, payload.asttype,
                        loc=token.location,
                    )
                    continue
                break
            if (
                token.kind is TokenKind.IDENT
                and type_spec is None
                and not primitives
                and self.is_typedef_name(token.text)
            ):
                self.next_token()
                type_spec = ctypes.TypedefNameType(
                    token.text, loc=token.location
                )
                continue
            break

        if primitives:
            type_spec = ctypes.PrimitiveType(primitives, loc=start)
        if type_spec is None and not storage and not qualifiers:
            raise ParseError(
                f"expected declaration specifiers, got "
                f"{self.peek().describe()}",
                self.peek().location,
            )
        return decls.DeclSpecs(storage, qualifiers, type_spec, loc=start)

    def parse_ast_type_spec(self) -> ctypes.AstTypeSpec:
        at = self.stream.expect_kind(TokenKind.AT)
        name = self.next_token()
        if (
            name.kind not in (TokenKind.IDENT, TokenKind.KEYWORD)
            or name.text not in AST_SPECIFIER_NAMES
        ):
            raise ParseError(
                f"expected an AST specifier after '@', got {name.describe()}"
                f" (one of: {', '.join(sorted(AST_SPECIFIER_NAMES))})",
                name.location,
            )
        return ctypes.AstTypeSpec(name.text, loc=at.location)

    def parse_struct_or_union(self) -> ctypes.StructOrUnionType:
        kw = self.next_token()
        tag: Any = None
        token = self.peek()
        if token.kind is TokenKind.IDENT:
            tag = self.next_token().text
        elif token.kind is TokenKind.PLACEHOLDER and (
            token.value.asttype.is_usable_as(ID)
        ):
            self.next_token()
            tag = nodes.PlaceholderExpr(
                token.value.meta_expr, token.value.asttype,
                loc=token.location,
            )
        members: list[Node] | None = None
        if self.stream.accept_punct("{"):
            members = []
            while not self.peek().is_punct("}"):
                inner = self.peek()
                if inner.kind is TokenKind.PLACEHOLDER and (
                    _is_decl_placeholder(inner.value.asttype)
                ):
                    # Template member list: struct $name { $fields };
                    self.next_token()
                    self.stream.accept_punct(";")
                    members.append(
                        decls.PlaceholderDecl(
                            inner.value.meta_expr, inner.value.asttype,
                            loc=inner.location,
                        )
                    )
                    continue
                members.append(self.parse_struct_member())
            self.stream.expect_punct("}")
        if tag is None and members is None:
            raise ParseError(
                f"{kw.text} requires a tag or a member list", kw.location
            )
        return ctypes.StructOrUnionType(kw.text, tag, members,
                                        loc=kw.location)

    def parse_struct_member(self) -> Node:
        specs = self.parse_decl_specs()
        declarators: list[Node] = []
        if not self.peek().is_punct(";"):
            declarators.append(
                decls.InitDeclarator(self.parse_declarator(), None)
            )
            while self.stream.accept_punct(","):
                declarators.append(
                    decls.InitDeclarator(self.parse_declarator(), None)
                )
        self.stream.expect_punct(";")
        return decls.Declaration(specs, declarators, loc=specs.loc)

    def parse_enum(self) -> ctypes.EnumType:
        kw = self.next_token()
        tag: Any = None
        token = self.peek()
        if token.kind is TokenKind.IDENT:
            tag = self.next_token().text
        elif token.kind is TokenKind.PLACEHOLDER and (
            token.value.asttype.is_usable_as(ID)
        ):
            # A template tag: ``enum $name { ... }``.
            self.next_token()
            tag = nodes.PlaceholderExpr(
                token.value.meta_expr, token.value.asttype,
                loc=token.location,
            )
        enumerators: list[Node] | None = None
        if self.stream.accept_punct("{"):
            enumerators = []
            while not self.peek().is_punct("}"):
                enumerators.append(self.parse_enumerator())
                if not self.stream.accept_punct(","):
                    break
            self.stream.expect_punct("}")
        if tag is None and enumerators is None:
            raise ParseError("enum requires a tag or an enumerator list",
                             kw.location)
        return ctypes.EnumType(tag, enumerators, loc=kw.location)

    def parse_enumerator(self) -> Node:
        token = self.peek()
        if token.kind is TokenKind.PLACEHOLDER:
            payload = token.value
            ok = payload.asttype.is_usable_as(ID) or (
                isinstance(payload.asttype, ListType)
                and payload.asttype.element.is_usable_as(ID)
            )
            if not ok:
                raise ParseError(
                    f"enumerator placeholder must have type id or id[], "
                    f"got {payload.asttype}",
                    token.location,
                )
            self.next_token()
            return nodes.PlaceholderExpr(
                payload.meta_expr, payload.asttype, loc=token.location
            )
        name = self.stream.expect_ident()
        value: Node | None = None
        if self.stream.accept_punct("="):
            value = self.parse_conditional()
        return ctypes.Enumerator(name.text, value, loc=name.location)

    # ------------------------------------------------------------------
    # Declarators
    # ------------------------------------------------------------------

    def parse_declarator(self, allow_abstract: bool = False) -> Node:
        token = self.peek()
        if token.is_punct("*"):
            self.next_token()
            qualifiers: list[str] = []
            while self.peek().kind is TokenKind.KEYWORD and (
                self.peek().text in _QUALIFIER_KEYWORDS
            ):
                qualifiers.append(self.next_token().text)
            inner = self.parse_declarator(allow_abstract)
            return decls.PointerDeclarator(inner, qualifiers,
                                           loc=token.location)
        return self.parse_direct_declarator(allow_abstract)

    def parse_direct_declarator(self, allow_abstract: bool) -> Node:
        token = self.peek()
        base: Node
        if token.kind is TokenKind.IDENT:
            self.next_token()
            base = decls.NameDeclarator(token.text, loc=token.location)
        elif token.kind is TokenKind.PLACEHOLDER:
            payload = token.value
            if payload.asttype.is_usable_as(
                prim("declarator")
            ) or payload.asttype.is_usable_as(ID):
                self.next_token()
                base = decls.PlaceholderDeclarator(
                    payload.meta_expr, payload.asttype, loc=token.location
                )
            elif allow_abstract:
                base = decls.AbstractDeclarator(loc=token.location)
            else:
                raise ParseError(
                    f"placeholder of AST type {payload.asttype} cannot "
                    "stand where a declarator is expected",
                    token.location,
                )
        elif token.is_punct("(") and self._paren_opens_declarator():
            self.next_token()
            base = self.parse_declarator(allow_abstract)
            self.stream.expect_punct(")")
        elif allow_abstract:
            base = decls.AbstractDeclarator(loc=token.location)
        else:
            raise ParseError(
                f"expected a declarator, got {token.describe()}",
                token.location,
            )
        return self._parse_declarator_suffixes(base, allow_abstract)

    def _paren_opens_declarator(self) -> bool:
        """Distinguish ``(*fp)`` from a parameter list ``(int x)``."""
        nxt = self.stream.peek(1)
        if nxt.is_punct("*") or nxt.is_punct("("):
            return True
        if nxt.kind is TokenKind.IDENT and not self.is_typedef_name(nxt.text):
            # A lone identifier could be a K&R parameter list; treat
            # '(' ident ')' '(' as nested declarator only when the
            # identifier is followed by ')' and then a suffix opener.
            after = self.stream.peek(2)
            if nxt.kind is TokenKind.IDENT and after.is_punct(")"):
                opener = self.stream.peek(3)
                return opener.is_punct("(") or opener.is_punct("[")
        return False

    def _parse_declarator_suffixes(
        self, base: Node, allow_abstract: bool
    ) -> Node:
        while True:
            token = self.peek()
            if token.is_punct("["):
                self.next_token()
                size: Node | None = None
                if not self.peek().is_punct("]"):
                    size = self.parse_conditional()
                self.stream.expect_punct("]")
                base = decls.ArrayDeclarator(base, size, loc=token.location)
                continue
            if token.is_punct("("):
                base = self._parse_function_suffix(base, token)
                continue
            return base

    def _parse_function_suffix(self, base: Node, open_paren: Token) -> Node:
        self.next_token()
        params: list[Node] = []
        kr_names: list[str] = []
        variadic = False
        prototype = True
        token = self.peek()
        if token.is_punct(")"):
            prototype = False
        elif self.starts_type_name(token):
            while True:
                if self.peek().is_punct("..."):
                    self.next_token()
                    variadic = True
                    break
                pspecs = self.parse_decl_specs()
                pdecl = self.parse_declarator(allow_abstract=True)
                params.append(
                    decls.ParamDecl(pspecs, pdecl, loc=pspecs.loc)
                )
                if not self.stream.accept_punct(","):
                    break
        else:
            prototype = False
            while True:
                name = self.stream.expect_ident()
                kr_names.append(name.text)
                if not self.stream.accept_punct(","):
                    break
        self.stream.expect_punct(")")
        return decls.FuncDeclarator(
            base, params, kr_names, variadic, prototype,
            loc=open_paren.location,
        )

    def parse_init_declarator(self) -> Node:
        token = self.peek()
        if token.kind is TokenKind.PLACEHOLDER:
            payload = token.value
            asttype = payload.asttype
            # Figure 2 dispatch: the placeholder's AST type decides the
            # parse of the init-declarator position.
            if _is_init_declarator_list_type(asttype):
                self.next_token()
                return decls.PlaceholderInitDeclarator(
                    payload.meta_expr, asttype, loc=token.location
                )
            if asttype.is_usable_as(prim("init_declarator")):
                self.next_token()
                return decls.PlaceholderInitDeclarator(
                    payload.meta_expr, asttype, loc=token.location
                )
            # declarator / id fall through to parse_declarator, which
            # wraps the placeholder in the right declarator context.
        declarator = self.parse_declarator()
        init: Node | None = None
        if self.stream.accept_punct("="):
            init = self.parse_initializer()
        return decls.InitDeclarator(declarator, init, loc=declarator.loc)

    def parse_initializer(self) -> Node:
        if self.peek().is_punct("{"):
            open_brace = self.next_token()
            items: list[Node] = []
            while not self.peek().is_punct("}"):
                items.append(self.parse_initializer())
                if not self.stream.accept_punct(","):
                    break
            self.stream.expect_punct("}")
            return decls.ListInitializer(items, loc=open_brace.location)
        return self.parse_assignment()

    # ------------------------------------------------------------------
    # Type names (casts, sizeof)
    # ------------------------------------------------------------------

    def starts_type_name(self, token: Token) -> bool:
        if token.kind is TokenKind.KEYWORD and token.text in _TYPE_KEYWORDS:
            return True
        if token.kind is TokenKind.KEYWORD and token.text in (
            _QUALIFIER_KEYWORDS
        ):
            return True
        if token.kind is TokenKind.AT:
            return True
        if token.kind is TokenKind.IDENT and self.is_typedef_name(token.text):
            return True
        if token.kind is TokenKind.PLACEHOLDER:
            return token.value.asttype.is_usable_as(TYPE_SPEC)
        return False

    def parse_type_name(self) -> decls.TypeName:
        specs = self.parse_decl_specs()
        declarator = self.parse_declarator(allow_abstract=True)
        return decls.TypeName(specs, declarator, loc=specs.loc)

    def parse_type_spec_only(self) -> Node:
        """A bare type specifier (pattern parameter of type type_spec)."""
        specs = self.parse_decl_specs()
        if specs.storage or specs.qualifiers:
            raise ParseError(
                "storage classes and qualifiers are not part of a "
                "type_spec actual parameter",
                specs.loc,
            )
        assert specs.type_spec is not None
        return specs.type_spec

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _starts_declaration(self, token: Token) -> bool:
        if token.kind is TokenKind.KEYWORD and token.text in _DECL_KEYWORDS:
            return True
        if token.kind is TokenKind.AT:
            return True
        if token.kind is TokenKind.IDENT and self.is_typedef_name(token.text):
            return True
        if token.kind is TokenKind.PLACEHOLDER:
            asttype = token.value.asttype
            if asttype.is_usable_as(DECL) or asttype.is_usable_as(
                list_of(DECL)
            ):
                return True
            if asttype.is_usable_as(TYPE_SPEC):
                return True
        return False

    def parse_compound_statement(self) -> stmts.CompoundStmt:
        open_brace = self.stream.expect_punct("{")
        self.push_typedef_scope()
        saved_c_scope = self.c_scope
        self.c_scope = saved_c_scope.child()
        env = self.type_env.child() if self.meta_mode else self.type_env
        declarations: list[Node] = []
        statements: list[Node] = []
        try:
            with self._scoped_env(env):
                # Declaration list (Figure 3: placeholder types decide
                # where declarations end and statements begin).
                while True:
                    token = self.peek()
                    if token.is_punct("}"):
                        break
                    if token.kind is TokenKind.IDENT:
                        defn = self.macro_dispatch(token.text, "decl")
                        if defn is not None:
                            try:
                                expanded = self._invocation_at(defn, "decl")
                            except Ms2Error as exc:
                                if not self._recovering:
                                    raise
                                declarations.append(
                                    self._recover_in_compound(
                                        exc, self.diagnostics
                                    )
                                )
                                if self.stream.at_eof():
                                    break
                                continue
                            if isinstance(expanded, list):
                                declarations.extend(expanded)
                            else:
                                declarations.append(expanded)
                            continue
                    if token.kind is TokenKind.PLACEHOLDER and (
                        _is_decl_placeholder(token.value.asttype)
                    ):
                        self.next_token()
                        self.stream.accept_punct(";")
                        declarations.append(
                            decls.PlaceholderDecl(
                                token.value.meta_expr, token.value.asttype,
                                loc=token.location,
                            )
                        )
                        continue
                    if self._starts_declaration(token):
                        try:
                            declaration = self.parse_declaration()
                        except Ms2Error as exc:
                            if not self._recovering:
                                raise
                            declarations.append(
                                self._recover_in_compound(
                                    exc, self.diagnostics
                                )
                            )
                            if self.stream.at_eof():
                                break
                            continue
                        if self.meta_mode and not self.template_mode:
                            self._bind_meta_locals(declaration, env)
                        elif not self.template_mode and isinstance(
                            declaration, decls.Declaration
                        ):
                            self.c_scope.record_declaration(declaration)
                        declarations.append(declaration)
                        continue
                    break
                # Statement list.
                while not self.peek().is_punct("}"):
                    token = self.peek()
                    if token.kind is TokenKind.PLACEHOLDER and (
                        _is_decl_placeholder(token.value.asttype)
                    ):
                        raise ParseError(
                            "syntactically illegal program: a "
                            "declaration-typed placeholder cannot follow "
                            "statements in a compound statement",
                            token.location,
                        )
                    try:
                        statements.append(self.parse_statement())
                    except Ms2Error as exc:
                        if not self._recovering:
                            raise
                        statements.append(
                            self._recover_in_compound(exc, self.diagnostics)
                        )
                        if self.stream.at_eof():
                            break
        finally:
            self.pop_typedef_scope()
            self.c_scope = saved_c_scope
        self.stream.expect_punct("}")
        return stmts.CompoundStmt(declarations, statements,
                                  loc=open_brace.location)

    def _bind_meta_locals(
        self, declaration: decls.Declaration, env: TypeEnv
    ) -> None:
        """Meta-body locals enter the type env as soon as parsed, so
        that placeholders later in the body can reference them."""
        for name, asttype in bindings_from_declaration(declaration):
            env.bind(name, asttype)

    def parse_statement(self) -> Node:
        token = self.peek()

        if token.kind is TokenKind.PLACEHOLDER:
            payload = token.value
            asttype = payload.asttype
            if asttype.is_usable_as(STMT) or (
                isinstance(asttype, ListType)
                and asttype.element.is_usable_as(STMT)
            ):
                self.next_token()
                self.stream.accept_punct(";")
                return stmts.PlaceholderStmt(
                    payload.meta_expr, asttype, loc=token.location
                )
            # Otherwise: must be an expression placeholder — falls
            # through to the expression-statement case below.

        if token.is_punct("{"):
            return self.parse_compound_statement()
        if token.is_punct(";"):
            self.next_token()
            return stmts.NullStmt(loc=token.location)

        if token.kind is TokenKind.KEYWORD:
            handler = _STMT_KEYWORD_HANDLERS.get(token.text)
            if handler is not None:
                return handler(self)

        if token.kind is TokenKind.IDENT:
            defn = self.macro_dispatch(token.text, "stmt")
            if defn is not None:
                expanded = self._invocation_at(defn, "stmt")
                if isinstance(expanded, list):
                    # A stmt-list macro at a single-statement position
                    # becomes a compound statement.
                    return stmts.CompoundStmt([], expanded,
                                              loc=token.location)
                return expanded
            # Labeled statement: ident ':' (but not '::').
            if self.stream.peek(1).is_punct(":"):
                name = self.next_token()
                self.next_token()  # ':'
                inner = self.parse_statement()
                return stmts.LabeledStmt(name.text, inner,
                                         loc=name.location)

        expr = self.parse_expression()
        self.stream.expect_punct(";")
        return stmts.ExprStmt(expr, loc=expr.loc)

    # Individual statement keywords --------------------------------------

    def _parse_if(self) -> Node:
        kw = self.next_token()
        self.stream.expect_punct("(")
        cond = self.parse_expression()
        self.stream.expect_punct(")")
        then = self.parse_statement()
        otherwise: Node | None = None
        if self.peek().is_keyword("else"):
            self.next_token()
            otherwise = self.parse_statement()
        return stmts.IfStmt(cond, then, otherwise, loc=kw.location)

    def _parse_while(self) -> Node:
        kw = self.next_token()
        self.stream.expect_punct("(")
        cond = self.parse_expression()
        self.stream.expect_punct(")")
        body = self.parse_statement()
        return stmts.WhileStmt(cond, body, loc=kw.location)

    def _parse_do(self) -> Node:
        kw = self.next_token()
        body = self.parse_statement()
        self.stream.expect_keyword("while")
        self.stream.expect_punct("(")
        cond = self.parse_expression()
        self.stream.expect_punct(")")
        self.stream.expect_punct(";")
        return stmts.DoWhileStmt(body, cond, loc=kw.location)

    def _parse_for(self) -> Node:
        kw = self.next_token()
        self.stream.expect_punct("(")
        init = None if self.peek().is_punct(";") else self.parse_expression()
        self.stream.expect_punct(";")
        cond = None if self.peek().is_punct(";") else self.parse_expression()
        self.stream.expect_punct(";")
        step = None if self.peek().is_punct(")") else self.parse_expression()
        self.stream.expect_punct(")")
        body = self.parse_statement()
        return stmts.ForStmt(init, cond, step, body, loc=kw.location)

    def _parse_switch(self) -> Node:
        kw = self.next_token()
        self.stream.expect_punct("(")
        expr = self.parse_expression()
        self.stream.expect_punct(")")
        body = self.parse_statement()
        return stmts.SwitchStmt(expr, body, loc=kw.location)

    def _parse_case(self) -> Node:
        kw = self.next_token()
        expr = self.parse_conditional()
        self.stream.expect_punct(":")
        stmt = self.parse_statement()
        return stmts.CaseStmt(expr, stmt, loc=kw.location)

    def _parse_default(self) -> Node:
        kw = self.next_token()
        self.stream.expect_punct(":")
        stmt = self.parse_statement()
        return stmts.DefaultStmt(stmt, loc=kw.location)

    def _parse_break(self) -> Node:
        kw = self.next_token()
        self.stream.expect_punct(";")
        return stmts.BreakStmt(loc=kw.location)

    def _parse_continue(self) -> Node:
        kw = self.next_token()
        self.stream.expect_punct(";")
        return stmts.ContinueStmt(loc=kw.location)

    def _parse_return(self) -> Node:
        kw = self.next_token()
        expr: Node | None = None
        if not self.peek().is_punct(";"):
            expr = self.parse_expression()
        self.stream.expect_punct(";")
        return stmts.ReturnStmt(expr, loc=kw.location)

    def _parse_goto(self) -> Node:
        kw = self.next_token()
        label = self.stream.expect_ident()
        self.stream.expect_punct(";")
        return stmts.GotoStmt(label.text, loc=kw.location)

    # ==================================================================
    # Macro definitions (``syntax``)
    # ==================================================================

    def parse_macro_definition(self) -> Node:
        kw = self.stream.expect_keyword("syntax")
        if self.template_mode:
            raise MacroSyntaxError(
                "macro definitions cannot appear inside templates",
                kw.location,
            )

        ret = self.next_token()
        if (
            ret.kind not in (TokenKind.IDENT, TokenKind.KEYWORD)
            or ret.text not in AST_SPECIFIER_NAMES
        ):
            raise MacroSyntaxError(
                f"expected an AST specifier after 'syntax', got "
                f"{ret.describe()}",
                ret.location,
            )
        name = self.stream.expect_ident()
        returns_list = False
        if self.peek().is_punct("[") and self.stream.peek(1).is_punct("]"):
            self.next_token()
            self.next_token()
            returns_list = True

        pattern = self._parse_pattern_block(name.text)

        # Parse the body with the pattern's bindings in scope.
        env = self.global_type_env.child()
        for pname, ptype in pattern.binding_types().items():
            env.bind(pname, ptype)
        ret_type: AstType = prim(ret.text)
        if returns_list:
            ret_type = list_of(ret_type)

        with self._meta(True), self._scoped_env(env):
            body = self.parse_compound_statement()
            checker = BodyChecker(env, ret_type)
            self._timed_check(checker, body)

        macro = decls.MacroDef(
            ret.text, returns_list, name.text, pattern, body,
            loc=kw.location,
        )
        if self.host is not None:
            self.host.handle_macro_def(macro, self)
        return macro

    def _parse_pattern_block(self, macro_name: str) -> Pattern:
        open_tok = self.next_token()
        if open_tok.kind is not TokenKind.LBRACE_BAR:
            raise MacroSyntaxError(
                f"expected '{{|' to open the macro pattern, got "
                f"{open_tok.describe()}",
                open_tok.location,
            )
        raw: list[Token] = []
        while True:
            token = self.stream.next()
            if token.kind is TokenKind.BAR_RBRACE:
                break
            if token.kind is TokenKind.EOF:
                raise MacroSyntaxError(
                    "unterminated macro pattern (missing '|}')",
                    open_tok.location,
                )
            raw.append(token)
        parser = PatternParser(raw)
        pattern = parser.parse_pattern()
        if parser.pos != len(raw):
            extra = raw[parser.pos]
            raise MacroSyntaxError(
                f"trailing tokens in pattern: {extra.describe()}",
                extra.location,
            )
        validate_pattern(pattern, macro_name)
        return pattern

    # ==================================================================
    # Meta declarations (``metadcl``)
    # ==================================================================

    def parse_meta_declaration(self) -> Node:
        kw = self.stream.expect_keyword("metadcl")
        with self._meta(True):
            specs = self.parse_decl_specs()
            if self.stream.accept_punct(";"):
                raise MacroSyntaxError(
                    "metadcl requires at least one declarator", kw.location
                )
            declarator = self.parse_declarator()
            if self.peek().is_punct("{"):
                fn = self._parse_meta_function(specs, declarator, [])
                meta = decls.MetaDecl(fn, loc=kw.location)
                if self.host is not None:
                    self.host.handle_meta_function(fn, self)
                return meta
            init_declarators = [self._init_declarator_from(declarator)]
            while self.stream.accept_punct(","):
                init_declarators.append(self.parse_init_declarator())
            self.stream.expect_punct(";")
        declaration = decls.Declaration(specs, init_declarators,
                                        loc=kw.location)
        # Bind the globals in the meta type environment.
        for name, asttype in bindings_from_declaration(declaration):
            self.global_type_env.bind(name, asttype)
        meta = decls.MetaDecl(declaration, loc=kw.location)
        if self.host is not None:
            self.host.handle_meta_decl(meta, self)
        return meta

    # ==================================================================
    # Backquote templates
    # ==================================================================

    def parse_backquote(self) -> nodes.Backquote:
        bq = self.stream.expect_kind(TokenKind.BACKQUOTE)
        token = self.stream.peek()
        if token.is_punct("("):
            self.stream.next()
            with self._template(True):
                template = self.parse_expression()
            self.stream.expect_punct(")")
            return nodes.Backquote("exp", template, EXP, loc=bq.location)
        if token.is_punct("{"):
            with self._template(True):
                template = self.parse_compound_statement()
            # "The open brace signifies a statement follows": the braces
            # delimit the template.  A single brace-enclosed statement is
            # that statement; several become a compound statement.  Write
            # `{{...}} to force a genuine one-statement compound.
            if not template.decls and len(template.stmts) == 1:
                template = template.stmts[0]
            return nodes.Backquote("stmt", template, STMT, loc=bq.location)
        if token.is_punct("["):
            self.stream.next()
            with self._template(True):
                template = self.parse_template_declaration()
            self.stream.expect_punct("]")
            return nodes.Backquote("decl", template, DECL, loc=bq.location)
        if token.kind is TokenKind.LBRACE_BAR:
            return self._parse_general_backquote(bq)
        raise ParseError(
            "expected '(', '{', '[' or '{|' after backquote, got "
            f"{token.describe()}",
            token.location,
        )

    def parse_template_declaration(self) -> Node:
        """A top-level declaration inside a ``\\`[...]`` template."""
        specs = self.parse_decl_specs()
        if self.stream.accept_punct(";"):
            return decls.Declaration(specs, [], loc=specs.loc)
        token = self.peek()
        if token.kind is TokenKind.PLACEHOLDER and (
            _is_init_declarator_list_type(token.value.asttype)
            or token.value.asttype.is_usable_as(prim("init_declarator"))
        ):
            # Figure 2: the placeholder type decides whether it is the
            # whole init-declarator list or a single element.
            first = self.parse_init_declarator()
        else:
            declarator = self.parse_declarator()
            if self.peek().is_punct("{"):
                body = self.parse_compound_statement()
                return decls.FunctionDef(specs, declarator, [], body,
                                         loc=specs.loc)
            first = self._init_declarator_from(declarator)
        init_declarators = [first]
        while self.stream.accept_punct(","):
            init_declarators.append(self.parse_init_declarator())
        self.stream.expect_punct(";")
        return decls.Declaration(specs, init_declarators, loc=specs.loc)

    def _parse_general_backquote(self, bq: Token) -> nodes.Backquote:
        """The general form `` `{| pspec :: syntax |} ``."""
        self.stream.next()  # '{|'
        raw: list[Token] = []
        depth = 0
        while True:
            peeked = self.stream.peek()
            # The pspec-terminating '::' is the first one outside any
            # tuple sub-pattern parentheses (whose parameters contain
            # their own '::').
            if peeked.kind is TokenKind.COLON_COLON and depth == 0:
                break
            token = self.stream.next()
            if token.kind is TokenKind.EOF:
                raise ParseError(
                    "unterminated general backquote (missing '::')",
                    bq.location,
                )
            if token.is_punct("("):
                depth += 1
            elif token.is_punct(")"):
                depth -= 1
            raw.append(token)
        self.stream.next()  # '::'
        pattern_parser = PatternParser(raw)
        pspec = pattern_parser.parse_pspec()
        if pattern_parser.pos != len(raw):
            raise ParseError(
                "trailing tokens in backquote parameter specifier",
                bq.location,
            )
        from repro.macros.invocation import InvocationParser

        with self._template(True):
            inv_parser = InvocationParser(self)
            value = inv_parser.parse_pspec_value(pspec, follow_text="|}")
        close = self.stream.next()
        if close.kind is not TokenKind.BAR_RBRACE:
            raise ParseError(
                f"expected '|}}' closing general backquote, got "
                f"{close.describe()}",
                close.location,
            )
        return nodes.Backquote(
            "pattern", value, pspec.binding_type(), loc=bq.location
        )

    # ==================================================================
    # Anonymous functions
    # ==================================================================

    def parse_anon_function(self) -> nodes.AnonFunction:
        """``( declaration-list expression )`` — meta-code only."""
        open_paren = self.stream.expect_punct("(")
        params: list[tuple[str, AstType | None]] = []
        env = self.type_env.child()
        while self._starts_declaration(self.peek()):
            declaration = self.parse_declaration()
            for name, asttype in bindings_from_declaration(declaration):
                params.append((name, asttype))
                env.bind(name, asttype)
        if not params:
            raise ParseError(
                "anonymous function requires at least one parameter "
                "declaration",
                open_paren.location,
            )
        with self._scoped_env(env):
            body = self.parse_expression()
        self.stream.expect_punct(")")
        return nodes.AnonFunction(
            [(n, t) for n, t in params], body, loc=open_paren.location
        )

    # ==================================================================
    # Macro invocations
    # ==================================================================

    def parse_macro_invocation_node(self, defn) -> Node:
        """Parse an invocation (no expansion).

        Uses the macro's compiled parse routine when one was attached
        (the paper's suggested acceleration), the interpreted pattern
        engine otherwise.
        """
        from repro.macros.invocation import InvocationParser

        prof = self.profiler
        t0 = perf_counter() if prof is not None else 0.0
        keyword = self.next_token()
        matcher = getattr(defn, "compiled_matcher", None)
        if matcher is not None:
            if self.stats is not None:
                self.stats.compiled_parses += 1
            invocation = matcher.parse_invocation(self, defn, keyword)
            invocation.parse_mode = "compiled"
        else:
            if self.stats is not None:
                self.stats.interpreted_parses += 1
            inv_parser = InvocationParser(self)
            invocation = inv_parser.parse_invocation(defn, keyword)
            invocation.parse_mode = "interpreted"
        if prof is not None:
            prof.add("invocation-parse", perf_counter() - t0)
        return invocation

    def expand_expression_invocation(self, defn) -> Node:
        """Expression-position invocation; expands inline when enabled."""
        invocation = self.parse_macro_invocation_node(defn)
        if self.template_mode or not self.expand_inline or self.host is None:
            return invocation
        result = self.host.expand_invocation(invocation, "exp")
        if isinstance(result, list):
            raise ParseError(
                f"macro {defn.name!r} produced a list where a single "
                "expression is required",
                invocation.loc,
            )
        return result

    def _invocation_at(self, defn, position: str) -> Node | list[Node]:
        invocation = self.parse_macro_invocation_node(defn)
        # Statement/declaration invocations may carry a trailing ';'.
        self.stream.accept_punct(";")
        if self.template_mode or not self.expand_inline or self.host is None:
            return invocation
        return self.host.expand_invocation(invocation, position)


_STMT_KEYWORD_HANDLERS = {
    "if": Parser._parse_if,
    "while": Parser._parse_while,
    "do": Parser._parse_do,
    "for": Parser._parse_for,
    "switch": Parser._parse_switch,
    "case": Parser._parse_case,
    "default": Parser._parse_default,
    "break": Parser._parse_break,
    "continue": Parser._parse_continue,
    "return": Parser._parse_return,
    "goto": Parser._parse_goto,
}


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _specs_are_meta(specs: decls.DeclSpecs) -> bool:
    return isinstance(specs.type_spec, ctypes.AstTypeSpec)


def _walk_declarator(declarator: Node):
    from repro.cast.base import walk

    return walk(declarator)


def _innermost_is_function(declarator: Node) -> bool:
    current = declarator
    while isinstance(current, decls.PointerDeclarator):
        current = current.inner
    return isinstance(current, decls.FuncDeclarator)


def _find_func_declarator(declarator: Node) -> decls.FuncDeclarator:
    current = declarator
    while not isinstance(current, decls.FuncDeclarator):
        if isinstance(current, decls.PointerDeclarator):
            current = current.inner
        else:
            raise MacroSyntaxError("expected a function declarator")
    return current


def _declared_names(declaration: decls.Declaration) -> list[str]:
    names: list[str] = []
    for item in declaration.init_declarators:
        if isinstance(item, decls.InitDeclarator):
            name = _declarator_name(item.declarator)
            if name is not None:
                names.append(name)
    return names


def _declarator_name(declarator: Node) -> str | None:
    current = declarator
    while True:
        if isinstance(current, decls.NameDeclarator):
            return current.name
        if isinstance(
            current,
            (decls.PointerDeclarator, decls.ArrayDeclarator,
             decls.FuncDeclarator),
        ):
            current = current.inner
            continue
        return None


def _is_init_declarator_list_type(asttype: AstType) -> bool:
    if not isinstance(asttype, ListType):
        return False
    element = asttype.element
    return (
        element.is_usable_as(prim("init_declarator"))
        or element.is_usable_as(prim("declarator"))
        or element.is_usable_as(ID)
    )


def _is_decl_placeholder(asttype: AstType) -> bool:
    if asttype.is_usable_as(DECL):
        return True
    return isinstance(asttype, ListType) and asttype.element.is_usable_as(
        DECL
    )
