"""Token stream with pushback and savepoints.

The pushback stack is what lets the tokenizer/parser co-routine of the
paper work: when the parser (inside a template) meets a ``$``, it
parses and type-analyzes the placeholder expression, then *pushes a
synthesized placeholder token back onto the stream*, so every parsing
routine downstream sees an ordinary token whose type it can inspect
with one token of lookahead.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.lexer.tokens import Token, TokenKind


class TokenStream:
    """A cursor over a token list (which always ends with EOF)."""

    def __init__(self, tokens: list[Token]) -> None:
        if not tokens or tokens[-1].kind is not TokenKind.EOF:
            raise ValueError("token list must end with EOF")
        self.tokens = tokens
        self.index = 0
        self.pushback: list[Token] = []

    # ------------------------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        """The token ``ahead`` positions from the cursor (EOF past end)."""
        if ahead < len(self.pushback):
            return self.pushback[-1 - ahead]
        list_index = self.index + (ahead - len(self.pushback))
        if list_index >= len(self.tokens):
            return self.tokens[-1]
        return self.tokens[list_index]

    def next(self) -> Token:
        if self.pushback:
            return self.pushback.pop()
        token = self.tokens[self.index]
        if token.kind is not TokenKind.EOF:
            self.index += 1
        return token

    def push(self, token: Token) -> None:
        """Push a token back; it becomes the next token returned."""
        self.pushback.append(token)

    def at_eof(self) -> bool:
        return self.peek().kind is TokenKind.EOF

    # ------------------------------------------------------------------

    def expect_punct(self, spelling: str) -> Token:
        token = self.next()
        if not token.is_punct(spelling):
            raise ParseError(
                f"expected {spelling!r}, got {token.describe()}",
                token.location,
            )
        return token

    def expect_keyword(self, name: str) -> Token:
        token = self.next()
        if not token.is_keyword(name):
            raise ParseError(
                f"expected keyword {name!r}, got {token.describe()}",
                token.location,
            )
        return token

    def expect_ident(self) -> Token:
        token = self.next()
        if token.kind is not TokenKind.IDENT:
            raise ParseError(
                f"expected an identifier, got {token.describe()}",
                token.location,
            )
        return token

    def expect_kind(self, kind: TokenKind) -> Token:
        token = self.next()
        if token.kind is not kind:
            raise ParseError(
                f"expected {kind.value}, got {token.describe()}",
                token.location,
            )
        return token

    def accept_punct(self, spelling: str) -> Token | None:
        if self.peek().is_punct(spelling):
            return self.next()
        return None

    def accept_keyword(self, name: str) -> Token | None:
        if self.peek().is_keyword(name):
            return self.next()
        return None

    # ------------------------------------------------------------------

    def save(self) -> tuple[int, list[Token]]:
        """Capture the cursor for tentative parsing."""
        return (self.index, list(self.pushback))

    def restore(self, state: tuple[int, list[Token]]) -> None:
        self.index, pushback = state
        self.pushback = list(pushback)
