"""Expression parsing (operator-precedence, as in the paper's parser).

The paper's parser "is a hand-written recursive descent parser at the
declaration and statement levels, but a bottom-up precedence parser at
the expression level"; this mixin implements the expression level via
precedence climbing over the standard C operator table.

The mixin expects its host (:class:`repro.parser.core.Parser`) to
provide token plumbing (``peek``/``next_token``), type-name detection,
template/meta mode flags, placeholder handling, backquote parsing, and
macro-invocation parsing.
"""

from __future__ import annotations

from repro.asttypes.types import EXP, ID, NUM, ListType
from repro.cast import nodes
from repro.cast.base import Node
from repro.errors import ParseError
from repro.lexer.tokens import Token, TokenKind

#: Binary operator precedence (higher binds tighter); all left-assoc.
BINARY_PRECEDENCE = {
    "||": 4, "&&": 5, "|": 6, "^": 7, "&": 8,
    "==": 9, "!=": 9,
    "<": 10, ">": 10, "<=": 10, ">=": 10,
    "<<": 11, ">>": 11,
    "+": 12, "-": 12,
    "*": 13, "/": 13, "%": 13,
}

_ASSIGN_OPS = nodes.ASSIGN_OPS
_PREFIX_OPS = ("+", "-", "*", "&", "!", "~", "++", "--")


class ExpressionParserMixin:
    """Precedence-climbing expression parser for C + meta-expressions."""

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def parse_expression(self) -> Node:
        """Full expression, including the comma operator."""
        left = self.parse_assignment()
        while self.peek().is_punct(","):
            loc = self.next_token().location
            right = self.parse_assignment()
            left = nodes.CommaOp(left, right, loc=loc)
        return left

    def parse_assignment(self) -> Node:
        """Assignment-expression (no top-level comma)."""
        left = self.parse_conditional()
        token = self.peek()
        if token.kind is TokenKind.PUNCT and token.text in _ASSIGN_OPS:
            op = self.next_token()
            right = self.parse_assignment()
            return nodes.AssignOp(op.text, left, right, loc=op.location)
        return left

    def parse_conditional(self) -> Node:
        cond = self.parse_binary(0)
        if self.peek().is_punct("?"):
            loc = self.next_token().location
            then = self.parse_expression()
            self.stream.expect_punct(":")
            otherwise = self.parse_conditional()
            return nodes.ConditionalOp(cond, then, otherwise, loc=loc)
        return cond

    def parse_binary(self, min_prec: int) -> Node:
        left = self.parse_unary()
        while True:
            token = self.peek()
            if token.kind is not TokenKind.PUNCT:
                return left
            prec = BINARY_PRECEDENCE.get(token.text)
            if prec is None or prec < min_prec:
                return left
            op = self.next_token()
            right = self.parse_binary(prec + 1)
            left = nodes.BinaryOp(op.text, left, right, loc=op.location)

    # ------------------------------------------------------------------
    # Unary / postfix / primary
    # ------------------------------------------------------------------

    def parse_unary(self) -> Node:
        token = self.peek()
        if token.is_keyword("sizeof"):
            self.next_token()
            if self.peek().is_punct("(") and self.starts_type_name(
                self.peek(1)
            ):
                self.stream.expect_punct("(")
                type_name = self.parse_type_name()
                self.stream.expect_punct(")")
                return nodes.SizeofType(type_name, loc=token.location)
            operand = self.parse_unary()
            return nodes.SizeofExpr(operand, loc=token.location)
        if token.kind is TokenKind.PUNCT and token.text in _PREFIX_OPS:
            self.next_token()
            operand = self.parse_unary()
            return nodes.UnaryOp(token.text, operand, loc=token.location)
        if token.is_punct("(") and self.starts_type_name(self.peek(1)):
            result = self.parse_cast_or_anon_function()
            if result is not None:
                return result
        return self.parse_postfix()

    def parse_cast_or_anon_function(self) -> Node | None:
        """Disambiguate ``(type) e`` casts from ``(decls expr)`` functions.

        In meta-mode, a parenthesis followed by declaration specifiers
        may open either a cast or an anonymous function; a tentative
        parse of the first declaration decides (``;`` means function,
        ``)`` means cast).  Returns None when the tentative parse shows
        this is neither (caller falls through to a parenthesized
        expression).
        """
        state = self.stream.save()
        open_paren = self.stream.expect_punct("(")
        try:
            type_name = self.parse_type_name()
        except ParseError:
            self.stream.restore(state)
            return None
        nxt = self.peek()
        if nxt.is_punct(")"):
            self.next_token()
            operand = self.parse_unary()
            return nodes.Cast(type_name, operand, loc=open_paren.location)
        if (nxt.is_punct(";") or nxt.is_punct(",")) and self.meta_mode:
            # ';' ends the first parameter declaration; ',' continues a
            # multi-name one (`(@id a, b; ...)`).  Either way this is
            # an anonymous function, not a cast.
            self.stream.restore(state)
            return self.parse_anon_function()
        self.stream.restore(state)
        return None

    def parse_postfix(self) -> Node:
        expr = self.parse_primary()
        while True:
            token = self.peek()
            if token.is_punct("("):
                self.next_token()
                args: list[Node] = []
                if not self.peek().is_punct(")"):
                    args.append(self.parse_argument())
                    while self.peek().is_punct(","):
                        self.next_token()
                        args.append(self.parse_argument())
                self.stream.expect_punct(")")
                expr = nodes.Call(expr, args, loc=token.location)
            elif token.is_punct("["):
                self.next_token()
                index = self.parse_expression()
                self.stream.expect_punct("]")
                expr = nodes.Index(expr, index, loc=token.location)
            elif token.is_punct(".") or token.is_punct("->"):
                self.next_token()
                nxt = self.peek()
                if nxt.kind is TokenKind.PLACEHOLDER:
                    # Template member name: p->$(f.name).
                    if not nxt.value.asttype.is_usable_as(ID):
                        raise ParseError(
                            "a member-name placeholder must have AST "
                            f"type id, got {nxt.value.asttype}",
                            nxt.location,
                        )
                    self.next_token()
                    member_name: object = nodes.PlaceholderExpr(
                        nxt.value.meta_expr, nxt.value.asttype,
                        loc=nxt.location,
                    )
                else:
                    member_name = self.stream.expect_ident().text
                expr = nodes.Member(
                    expr, member_name, arrow=token.text == "->",
                    loc=token.location,
                )
            elif token.is_punct("++") or token.is_punct("--"):
                self.next_token()
                expr = nodes.PostfixOp(token.text, expr, loc=token.location)
            else:
                return expr

    def parse_argument(self) -> Node:
        """One call argument: an assignment-expression.

        In meta-mode an argument may also be an anonymous function
        (``map((@id x; ...), xs)``); ``parse_unary`` handles that via
        the cast/function disambiguation.  Inside templates, a
        list-typed placeholder may stand for several arguments at once
        (it is spliced at instantiation time).
        """
        token = self.peek()
        if token.kind is TokenKind.PLACEHOLDER and isinstance(
            token.value.asttype, ListType
        ):
            if token.value.asttype.element.is_usable_as(EXP):
                self.next_token()
                return nodes.PlaceholderExpr(
                    token.value.meta_expr, token.value.asttype,
                    loc=token.location,
                )
        return self.parse_assignment()

    def parse_primary(self) -> Node:
        token = self.peek()

        if token.kind is TokenKind.PLACEHOLDER:
            payload = token.value
            if self._placeholder_fits_expression(payload):
                self.next_token()
                return nodes.PlaceholderExpr(
                    payload.meta_expr, payload.asttype, loc=token.location
                )
            raise ParseError(
                f"placeholder of AST type {payload.asttype} cannot stand "
                "where an expression is expected",
                token.location,
            )

        if token.kind is TokenKind.BACKQUOTE:
            if not self.meta_mode:
                raise ParseError(
                    "code templates (backquote) are only valid in meta-code",
                    token.location,
                )
            return self.parse_backquote()

        if token.kind is TokenKind.IDENT:
            defn = self.macro_dispatch(token.text, "exp")
            if defn is not None:
                return self.expand_expression_invocation(defn)
            self.next_token()
            return nodes.Identifier(token.text, loc=token.location)

        if token.kind is TokenKind.INT_LIT:
            self.next_token()
            return nodes.IntLit(token.value, token.text, loc=token.location)
        if token.kind is TokenKind.FLOAT_LIT:
            self.next_token()
            return nodes.FloatLit(token.value, token.text, loc=token.location)
        if token.kind is TokenKind.CHAR_LIT:
            self.next_token()
            return nodes.CharLit(token.value, token.text, loc=token.location)
        if token.kind is TokenKind.STRING_LIT:
            self.next_token()
            lit = nodes.StringLit(token.value, token.text, loc=token.location)
            # Adjacent string literals concatenate, as in C.
            while self.peek().kind is TokenKind.STRING_LIT:
                more = self.next_token()
                lit = nodes.StringLit(
                    lit.value + more.value, lit.text + " " + more.text,
                    loc=lit.loc,
                )
            return lit

        if token.is_punct("("):
            self.next_token()
            inner = self.parse_expression()
            self.stream.expect_punct(")")
            return inner

        raise ParseError(
            f"expected an expression, got {token.describe()}",
            token.location,
        )

    @staticmethod
    def _placeholder_fits_expression(payload) -> bool:
        from repro.asttypes.types import ANY, CType

        asttype = payload.asttype
        if isinstance(asttype, ListType):
            # A list placeholder may stand for an argument list; the
            # statement/decl parsers handle list splicing — a bare list
            # in scalar expression position is rejected.
            return False
        if isinstance(asttype, CType):
            # C scalars (the result of pstring, length, arithmetic…)
            # become literals at instantiation time.
            return asttype.name in ("int", "char", "float", "string")
        if asttype is ANY:
            return True
        return asttype.is_usable_as(EXP) or asttype in (ID, NUM)
