"""The re-entrant recursive-descent parser for C + the macro language."""

from repro.parser.core import MacroHost, Parser
from repro.parser.stream import TokenStream

__all__ = ["MacroHost", "Parser", "TokenStream"]
