"""repro — a reproduction of "Programmable Syntax Macros" (PLDI 1993).

The package implements MS2, Weise & Crew's fully programmable,
statically type-checked syntax macro system for C, together with every
substrate it needs: a C front end (lexer, recursive-descent/precedence
parser, typed AST, unparser), the AST type language and its
definition-time checker, the pattern language with one-token-lookahead
validation, backquote code templates with placeholder-token parsing,
the embedded meta-language interpreter, and baseline character- and
token-level macro processors for comparison.

Quickstart::

    from repro import MacroProcessor

    mp = MacroProcessor()
    print(mp.expand_to_c('''
        syntax stmt Painting {| $$stmt::body |}
        { return(`{BeginPaint(hDC, &ps); $body; EndPaint(hDC, &ps);}); }

        void redraw(void) { Painting { draw(); } }
    '''))
"""

import sys as _sys

# Recursive-descent parsing, tree-walking expansion and printing all
# recurse with program depth; lift CPython's conservative default so
# realistic left-deep expression chains don't overflow the C stack.
if _sys.getrecursionlimit() < 20_000:
    _sys.setrecursionlimit(20_000)

from repro.cast.printer import render_c
from repro.cast.sexpr import render_sexpr
from repro.diagnostics import Diagnostic, DiagnosticSink, ExpansionBudget
from repro.engine import MacroProcessor, expand_source
from repro.options import ExpandResult, Ms2DeprecationWarning, Ms2Options
from repro.provenance import ExpandedLocation, ExpansionSite
from repro.trace import ExpansionSpan, PhaseProfiler, Tracer
from repro.errors import (
    ExpansionBudgetError,
    ExpansionError,
    LexError,
    MacroSyntaxError,
    MacroTypeError,
    MetaInterpError,
    Ms2Error,
    ParseError,
    PatternLookaheadError,
    ResourceLimitError,
    SourceLocation,
)

__version__ = "1.0.0"

__all__ = [
    "Diagnostic",
    "DiagnosticSink",
    "ExpandedLocation",
    "ExpansionBudget",
    "ExpandResult",
    "ExpansionBudgetError",
    "ExpansionError",
    "ExpansionSite",
    "ExpansionSpan",
    "ResourceLimitError",
    "LexError",
    "MacroProcessor",
    "Ms2DeprecationWarning",
    "Ms2Options",
    "MacroSyntaxError",
    "MacroTypeError",
    "MetaInterpError",
    "Ms2Error",
    "ParseError",
    "PatternLookaheadError",
    "PhaseProfiler",
    "SourceLocation",
    "Tracer",
    "expand_source",
    "render_c",
    "render_sexpr",
    "__version__",
]
