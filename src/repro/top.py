"""``repro top`` — a live terminal view of a running daemon.

Polls the daemon's ``stats`` op (the same payload ``/statusz``
serves) on an interval and renders a compact dashboard: request
rate, latency quantiles interpolated from the server's histogram,
in-flight work, expansion-cache hit ratio, worker-pool depth and
persistent-cache traffic.  Rates are computed from the *delta*
between consecutive polls, so the view shows current throughput,
not lifetime averages.

Everything here is pure functions over stats payloads plus one
polling loop, so tests drive :func:`render_dashboard` directly with
canned payloads and ``--iterations`` bounds the loop.
"""

from __future__ import annotations

import sys
import time
from typing import IO, Any, Sequence

from repro.telemetry import LATENCY_BUCKETS_MS

__all__ = ["histogram_quantile", "render_dashboard", "run_top"]


def histogram_quantile(
    q: float, bounds: Sequence[float], counts: Sequence[int]
) -> float:
    """The ``q``-quantile (0..1) of a bucketed histogram.

    ``bounds`` are the finite upper bounds; ``counts`` holds one
    per-bucket (non-cumulative) count per bound plus the overflow
    bucket.  Linear interpolation inside the winning bucket, the
    Prometheus ``histogram_quantile`` convention; observations in the
    overflow bucket clamp to the largest finite bound.
    """
    total = sum(counts)
    if total == 0:
        return 0.0
    rank = q * total
    cumulative = 0
    for index, count in enumerate(counts):
        previous = cumulative
        cumulative += count
        if cumulative >= rank and count > 0:
            if index >= len(bounds):
                return float(bounds[-1]) if bounds else 0.0
            lower = float(bounds[index - 1]) if index > 0 else 0.0
            upper = float(bounds[index])
            fraction = (rank - previous) / count
            return lower + (upper - lower) * fraction
    return float(bounds[-1]) if bounds else 0.0


def _latency_series(
    payload: dict[str, Any],
) -> tuple[list[float], list[int]]:
    """(finite bounds, per-bucket counts incl. overflow) from a stats
    payload's cumulative-free ``latency_ms.buckets`` dict."""
    buckets = (payload.get("latency_ms") or {}).get("buckets") or {}
    bounds = sorted(
        float(bound) for bound in buckets if bound != "+Inf"
    )
    if not bounds:
        # An empty payload still renders against the bucket layout
        # every server uses (the one shared constant, so merged
        # multi-shard histograms can never skew the percentile math).
        bounds = list(LATENCY_BUCKETS_MS)
    counts = [int(buckets.get(f"{bound:g}", 0)) for bound in bounds]
    counts.append(int(buckets.get("+Inf", 0)))
    return bounds, counts


def _rate(curr: float, prev: float, dt: float) -> float:
    return max(0.0, curr - prev) / dt if dt > 0 else 0.0


def render_dashboard(
    curr: dict[str, Any],
    prev: dict[str, Any] | None = None,
    dt: float = 0.0,
) -> str:
    """The dashboard text for one poll of the ``stats`` payload.

    ``prev``/``dt`` (the previous poll and the seconds between them)
    turn lifetime totals into rates; on the first poll both rates
    read 0.
    """
    latency = curr.get("latency_ms") or {}
    bounds, counts = _latency_series(curr)
    served = int(latency.get("count", 0))
    prev_latency = (prev or {}).get("latency_ms") or {}
    req_rate = _rate(served, int(prev_latency.get("count", 0)), dt)
    p50 = histogram_quantile(0.50, bounds, counts)
    p99 = histogram_quantile(0.99, bounds, counts)

    cache = curr.get("expansion_cache") or {}
    workers = curr.get("workers") or {}
    disk = curr.get("disk_cache") or {}
    server = curr.get("server") or {}
    telemetry = curr.get("telemetry") or {}
    idle = sum((workers.get("idle") or {}).values())
    responses = curr.get("responses") or {}

    lines = [
        "repro top — {address}  up {uptime:.0f}s  pid {pid}{drain}".format(
            address=server.get("address", "?"),
            uptime=float(curr.get("uptime_s", 0.0)),
            pid=server.get("pid", "?"),
            drain="  [DRAINING]" if server.get("draining") else "",
        ),
        (
            f"requests   {req_rate:8.1f}/s   served {served}   "
            f"in-flight {curr.get('in_flight', 0)}"
            f"/{server.get('max_inflight', '?')}   "
            f"conns {curr.get('connections_open', 0)}"
        ),
        (
            f"latency    p50 {p50:8.2f}ms   p99 {p99:8.2f}ms   "
            f"mean {float(latency.get('mean', 0.0)):8.2f}ms"
        ),
        (
            f"responses  ok {responses.get('ok', 0)}   "
            f"error {responses.get('error', 0)}   "
            f"busy {curr.get('busy_rejections', 0)}   "
            f"bad-frames {curr.get('bad_frames', 0)}"
        ),
        (
            "exp-cache  hit {rate:6.1%}   hits {hits}   misses {misses}"
            .format(
                rate=float(cache.get("hit_rate", 0.0)),
                hits=cache.get("hits", 0),
                misses=cache.get("misses", 0),
            )
        ),
        (
            f"workers    warm {workers.get('warm_hits', 0)}   "
            f"cold {workers.get('cold_builds', 0)}   "
            f"idle {idle}   "
            f"replenishes {workers.get('replenishes', 0)}"
        ),
        (
            f"disk       hits {disk.get('hits', 0)}   "
            f"misses {disk.get('misses', 0)}   "
            f"failures {disk.get('failures', 0)}   "
            f"evictions {disk.get('evictions', 0)}   "
            f"load {float(disk.get('load_ms', 0.0)):.1f}ms   "
            f"store {float(disk.get('store_ms', 0.0)):.1f}ms"
        ),
    ]
    backends = curr.get("cache_backends") or {}
    for name, tier in sorted((backends.get("tiers") or {}).items()):
        if not isinstance(tier, dict):
            continue
        lines.append(
            f"cache:{name:<10.10}  hits {tier.get('hits', 0)}   "
            f"misses {tier.get('misses', 0)}   "
            f"timeouts {tier.get('timeouts', 0)}   "
            f"load {float(tier.get('load_ms', 0.0)):.1f}ms   "
            f"store {float(tier.get('store_ms', 0.0)):.1f}ms"
        )
    wb = backends.get("write_behind") or {}
    if wb.get("limit") or wb.get("queued"):
        lines.append(
            f"cache:wb   depth {wb.get('depth', 0)}"
            f"/{wb.get('limit', 0)}   "
            f"flushed {wb.get('flushed', 0)}   "
            f"dropped {wb.get('dropped', 0)}   "
            f"failed {wb.get('failed', 0)}"
        )
    resilience = curr.get("resilience") or {}
    if any(resilience.values()):
        lines.append(
            f"resilience restarts {resilience.get('worker_restarts', 0)}"
            f"   replenish-fail "
            f"{resilience.get('replenish_failures', 0)}   "
            f"retries {resilience.get('client_retries', 0)}   "
            f"fallbacks {resilience.get('client_fallbacks', 0)}   "
            f"eventlog-err {resilience.get('eventlog_errors', 0)}"
        )
    fault_info = curr.get("faults") or {}
    if fault_info.get("armed"):
        injected = fault_info.get("injected") or {}
        fired = " ".join(
            f"{site}={count}" for site, count in sorted(injected.items())
        )
        lines.append(
            f"faults     ARMED seed {fault_info.get('seed')}   "
            f"injected {fired or '(none yet)'}"
        )
    if telemetry.get("metrics_address"):
        lines.append(
            f"telemetry  http://{telemetry['metrics_address']}/metrics"
            f"   events {telemetry.get('event_log_records') or 0}"
        )
    shards = curr.get("shards") or []
    if shards:
        lines.append(
            f"shards     {len(shards)} reporting of "
            f"{server.get('shards', len(shards))} configured   "
            f"restarts {server.get('shard_restarts', 0)}"
        )
        for entry in shards:
            lines.append(
                f"  shard {entry.get('shard', '?')}   "
                f"pid {entry.get('pid', '?')}   "
                f"in-flight {entry.get('in_flight', 0)}   "
                f"reqs {entry.get('requests_total', 0)}   "
                f"tier {entry.get('load_tier', '?')}   "
                f"up {float(entry.get('uptime_s', 0.0)):.0f}s"
            )
    return "\n".join(lines)


def run_top(
    address: str,
    *,
    interval: float = 2.0,
    iterations: int | None = None,
    out: IO[str] | None = None,
    clear: bool = True,
) -> int:
    """Poll ``stats`` and redraw until interrupted (or for a bounded
    number of ``iterations``)."""
    from repro.client import Ms2Client

    stream = out if out is not None else sys.stdout
    prev: dict[str, Any] | None = None
    prev_at = 0.0
    done = 0
    try:
        with Ms2Client(address) as client:
            while iterations is None or done < iterations:
                curr = client.stats()
                now = time.monotonic()
                dt = now - prev_at if prev is not None else 0.0
                if clear and stream.isatty():
                    stream.write("\x1b[2J\x1b[H")
                stream.write(
                    render_dashboard(curr, prev, dt) + "\n"
                )
                stream.flush()
                prev, prev_at = curr, now
                done += 1
                if iterations is not None and done >= iterations:
                    break
                time.sleep(interval)
    except KeyboardInterrupt:
        pass
    return 0
