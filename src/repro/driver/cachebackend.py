"""Pluggable backends for the persistent snapshot cache.

:class:`~repro.driver.diskcache.PersistentCache` memoizes whole-file
builds on one machine.  Fleet-scale builds (CI farms, the sharded
daemon, many developer laptops) want those snapshots to be *shared,
addressable build objects*: expand a file once anywhere, replay it
everywhere.  This module abstracts the cache behind the
:class:`CacheBackend` protocol and adds two implementations on top of
the local directory:

:class:`RemoteCacheBackend`
    Speaks the ``cache_get`` / ``cache_put`` / ``cache_stats``
    operations of the daemon's NDJSON protocol — any ``repro serve``
    instance doubles as the cache authority, storing snapshots under
    its own ``.ms2-cache/`` root with the usual per-entry locking
    (and, under ``--shards N``, every shard serves the shared root).
    Payloads cross the wire as the same JSON snapshot dicts the disk
    format frames, protected end-to-end by a sha256 content digest
    (:func:`snapshot_digest`): a corrupted or forged reply reads as a
    miss, never as wrong output.  Every failure mode — daemon down,
    connection reset, corrupt payload, an answer slower than
    ``timeout_s`` — degrades to a counted miss (*fail-open*): a
    remote cache can make builds faster, never break them.

:class:`TieredBackend`
    Composes local + remote: reads go through the local tier first
    and remote hits are promoted into it; stores land locally on the
    build path while remote publishes ride a **bounded write-behind
    queue** drained by one background thread — the build path never
    blocks on the network, and queue overflow drops the publish and
    counts it (:meth:`TieredBackend.counters`, ``write_behind``).
    :meth:`TieredBackend.close` flushes the queue, so snapshots
    published by a finished build are visible to the fleet.

Chaos: the remote paths carry the ``remote_cache.get`` /
``remote_cache.put`` fault sites (see :mod:`repro.faults`), so every
degradation above is rehearsed deterministically in the chaos suite.
"""

from __future__ import annotations

import hashlib
import json
import queue
import threading
from time import perf_counter
from typing import Any, Protocol, runtime_checkable

from repro import faults
from repro.driver.diskcache import PersistentCache
from repro.errors import Ms2Error

__all__ = [
    "CacheBackend",
    "RemoteCacheBackend",
    "RemoteCacheError",
    "TieredBackend",
    "backend_tiers",
    "snapshot_digest",
    "validate_snapshot",
]

#: Keys every well-formed snapshot payload must carry (mirrors the
#: disk format's requirement).
_REQUIRED_KEYS = frozenset({"key", "output"})

#: Consecutive transport failures after which a remote is declared
#: down for the rest of the session (each skipped op is counted).
#: Without this, a hung authority would tax every file the full
#: ``timeout_s``.
_BREAKER_THRESHOLD = 3


@runtime_checkable
class CacheBackend(Protocol):
    """What :class:`~repro.driver.scheduler.BuildSession` needs from
    a snapshot cache.  :class:`PersistentCache` is the reference
    implementation; anything structurally compatible plugs in."""

    def load(self, key: str) -> dict[str, Any] | None:
        """The stored payload for ``key``, or None on miss."""

    def store(self, key: str, payload: dict[str, Any]) -> bool:
        """Persist ``payload`` under ``key``; True when it landed."""

    def discard(self, key: str) -> None:
        """Evict ``key`` after its payload proved semantically
        unusable; re-book the preceding load's hit as a miss."""

    def counters(self) -> dict[str, Any]:
        """This session's hit/miss/latency counters."""

    def describe(self) -> str:
        """A short human-readable label (report/`repro top`)."""

    def close(self) -> None:
        """Flush and release resources (idempotent)."""


class RemoteCacheError(Ms2Error):
    """A remote cache failure surfaced because ``fail_open=False``
    asked for loud misconfiguration instead of silent degradation."""


def snapshot_digest(payload: dict[str, Any]) -> str:
    """The content digest a snapshot carries across the wire: sha256
    over the canonical compact JSON body, truncated to 16 hex chars —
    the same 8 integrity bytes the MS2C disk format stores between
    header and body, spelled printably for the NDJSON frame."""
    body = json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return hashlib.sha256(body).hexdigest()[:16]


def validate_snapshot(payload: Any, key: str) -> dict[str, Any] | None:
    """Structural validation shared by every transport: the payload
    for ``key``, or None when it is not a usable snapshot dict."""
    if not isinstance(payload, dict):
        return None
    if not _REQUIRED_KEYS <= payload.keys():
        return None
    if payload.get("key") != key:
        return None
    if not isinstance(payload["output"], str):
        return None
    return payload


def backend_tiers(
    counters: dict[str, Any], default_tier: str = "local"
) -> dict[str, dict[str, float]]:
    """Per-tier numeric counters from any backend's
    :meth:`~CacheBackend.counters` payload — the shape the
    ``ms2_cache_backend_*`` metric families and ``repro top`` label
    by tier.  Flat payloads (a bare :class:`PersistentCache` or
    :class:`RemoteCacheBackend`) come back under ``default_tier``."""
    tiers = counters.get("tiers")
    if isinstance(tiers, dict):
        return {
            name: {
                k: v
                for k, v in sub.items()
                if isinstance(v, (int, float)) and not isinstance(v, bool)
            }
            for name, sub in tiers.items()
            if isinstance(sub, dict)
        }
    return {
        default_tier: {
            k: v
            for k, v in counters.items()
            if isinstance(v, (int, float)) and not isinstance(v, bool)
        }
    }


# ---------------------------------------------------------------------------
# Remote backend
# ---------------------------------------------------------------------------


class RemoteCacheBackend:
    """Snapshots served by a ``repro serve`` daemon over NDJSON.

    One instance may be used from several threads (the tiered
    write-behind uploader publishes while the build thread reads):
    each thread gets its own connection, counters are lock-guarded.
    """

    def __init__(
        self,
        address: str,
        *,
        timeout_s: float | None = None,
        fail_open: bool = True,
    ) -> None:
        from repro.driver.cacheconfig import DEFAULT_REMOTE_TIMEOUT_S

        self.address = str(address)
        self.timeout_s = (
            float(timeout_s)
            if timeout_s is not None
            else DEFAULT_REMOTE_TIMEOUT_S
        )
        self.fail_open = bool(fail_open)
        self._mu = threading.Lock()
        self._tls = threading.local()
        self._clients: list[Any] = []
        #: Consecutive transport failures (breaker input).
        self._consecutive_errors = 0
        #: True once the breaker declared the authority down.
        self.down = False
        # Counters (same names as PersistentCache, plus the remote-
        # only failure taxonomy).
        self.hits = 0
        self.misses = 0
        self.failures = 0
        self.evictions = 0
        self.loads = 0
        self.stores = 0
        self.load_ms = 0.0
        self.store_ms = 0.0
        #: Ops answered past ``timeout_s`` (the answer was discarded).
        self.timeouts = 0
        #: Transport/protocol errors absorbed as misses.
        self.errors = 0
        #: Ops skipped outright because the breaker is open.
        self.skipped = 0

    # ------------------------------------------------------------------

    def _client(self) -> Any:
        client = getattr(self._tls, "client", None)
        if client is None:
            from repro.client import Ms2Client

            client = Ms2Client(self.address, timeout=self.timeout_s)
            self._tls.client = client
            with self._mu:
                self._clients.append(client)
        return client

    def _drop_client(self) -> None:
        client = getattr(self._tls, "client", None)
        if client is not None:
            client.close()
            self._tls.client = None
            with self._mu:
                try:
                    self._clients.remove(client)
                except ValueError:
                    pass

    def _note_error(self) -> None:
        with self._mu:
            self.errors += 1
            self._consecutive_errors += 1
            if self._consecutive_errors >= _BREAKER_THRESHOLD:
                self.down = True

    def _note_success(self) -> None:
        with self._mu:
            self._consecutive_errors = 0

    def _absorb(self, exc: BaseException, op: str, key: str) -> None:
        """Count a remote failure; re-raise unless failing open."""
        self._drop_client()
        self._note_error()
        if not self.fail_open:
            raise RemoteCacheError(
                f"remote cache {op} for {key[:12]}... failed against "
                f"{self.address}: {type(exc).__name__}: {exc}"
            ) from exc

    # ------------------------------------------------------------------

    def load(self, key: str) -> dict[str, Any] | None:
        start = perf_counter()
        try:
            if self.down:
                with self._mu:
                    self.skipped += 1
                self.misses += 1
                return None
            try:
                reply = self._client().call("cache_get", key=key)
                if faults.ACTIVE is not None:
                    # The chaos seam for the whole response: io_error/
                    # conn_reset read as transport failures, corrupt
                    # mangles the payload into the digest check below,
                    # delay pushes the op past ``timeout_s``.
                    blob = faults.ACTIVE.hit(
                        "remote_cache.get",
                        json.dumps(reply).encode("utf-8"),
                        context=key,
                    )
                    reply = json.loads(blob.decode("utf-8"))
            except Exception as exc:  # noqa: BLE001 — fail-open seam
                self._absorb(exc, "get", key)
                self.misses += 1
                return None
            self._note_success()
            if not isinstance(reply, dict) or not reply.get("found"):
                self.misses += 1
                return None
            payload = validate_snapshot(reply.get("snapshot"), key)
            if (
                payload is None
                or reply.get("digest") != snapshot_digest(payload)
            ):
                # Corrupted or forged in transit — the wire twin of a
                # rotten disk snapshot: count and re-expand.
                self.failures += 1
                self.misses += 1
                if not self.fail_open:
                    raise RemoteCacheError(
                        f"remote cache payload for {key[:12]}... from "
                        f"{self.address} failed integrity checks"
                    )
                return None
            if (perf_counter() - start) > self.timeout_s:
                # Slower than the budget: an answer that arrives too
                # late is a miss — re-expanding is faster.
                self.timeouts += 1
                self.misses += 1
                return None
            self.hits += 1
            return payload
        finally:
            self.loads += 1
            self.load_ms += (perf_counter() - start) * 1000.0

    def store(self, key: str, payload: dict[str, Any]) -> bool:
        start = perf_counter()
        try:
            if self.down:
                with self._mu:
                    self.skipped += 1
                return False
            body = dict(payload)
            body["key"] = key
            try:
                if faults.ACTIVE is not None:
                    faults.ACTIVE.hit("remote_cache.put", context=key)
                reply = self._client().call(
                    "cache_put",
                    key=key,
                    snapshot=body,
                    digest=snapshot_digest(body),
                )
            except Exception as exc:  # noqa: BLE001 — fail-open seam
                self._absorb(exc, "put", key)
                return False
            self._note_success()
            if (perf_counter() - start) > self.timeout_s:
                self.timeouts += 1
            return bool(isinstance(reply, dict) and reply.get("stored"))
        finally:
            self.stores += 1
            self.store_ms += (perf_counter() - start) * 1000.0

    def discard(self, key: str) -> None:
        """The caller found a served payload semantically unusable.
        There is no wire eviction op — the next correct ``cache_put``
        for the key overwrites it at the authority — so this only
        re-books the hit locally, mirroring
        :meth:`PersistentCache.discard`'s accounting."""
        self.hits = max(0, self.hits - 1)
        self.misses += 1
        self.failures += 1

    def stats(self) -> dict[str, Any]:
        """The authority's own counters (the ``cache_stats`` op), or
        ``{}`` when it cannot be reached."""
        try:
            return self._client().call("cache_stats")
        except Exception:  # noqa: BLE001 — diagnostics only
            self._drop_client()
            return {}

    def counters(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "failures": self.failures,
            "evictions": self.evictions,
            "loads": self.loads,
            "stores": self.stores,
            "load_ms": round(self.load_ms, 3),
            "store_ms": round(self.store_ms, 3),
            "timeouts": self.timeouts,
            "errors": self.errors,
            "skipped": self.skipped,
            "down": 1 if self.down else 0,
        }

    def describe(self) -> str:
        return f"remote {self.address}"

    def close(self) -> None:
        with self._mu:
            clients, self._clients = self._clients, []
        for client in clients:
            client.close()
        self._tls = threading.local()


# ---------------------------------------------------------------------------
# Tiered backend
# ---------------------------------------------------------------------------

#: Queue terminator for the write-behind uploader.
_SENTINEL: Any = object()


class TieredBackend:
    """Local directory in front, remote authority behind.

    Reads are read-through (local, then remote, promoting remote hits
    into the local tier); writes land locally on the build path and
    are published to the remote through a bounded queue drained by
    one daemon thread.  ``write_behind=0`` publishes synchronously.
    """

    def __init__(
        self,
        local: PersistentCache | None,
        remote: RemoteCacheBackend,
        *,
        write_behind: int | None = None,
    ) -> None:
        from repro.driver.cacheconfig import DEFAULT_WRITE_BEHIND

        self.local = local
        self.remote = remote
        self.write_behind = (
            int(write_behind)
            if write_behind is not None
            else DEFAULT_WRITE_BEHIND
        )
        self._queue: queue.Queue | None = (
            queue.Queue(maxsize=self.write_behind)
            if self.write_behind > 0
            else None
        )
        self._thread: threading.Thread | None = None
        self._mu = threading.Lock()
        #: (key, tier) of the most recent hit — :meth:`discard`
        #: re-books the serving tier (the scheduler discards
        #: immediately after the load it is rejecting).
        self._last_hit: tuple[str, str] | None = None
        # Effective counters, as the build path experiences them.
        self.hits = 0
        self.misses = 0
        self.loads = 0
        self.stores = 0
        self.load_ms = 0.0
        self.store_ms = 0.0
        # Write-behind accounting.
        self.wb_queued = 0
        self.wb_dropped = 0
        self.wb_flushed = 0
        self.wb_failed = 0

    # ------------------------------------------------------------------

    def load(self, key: str) -> dict[str, Any] | None:
        start = perf_counter()
        try:
            if self.local is not None:
                payload = self.local.load(key)
                if payload is not None:
                    self.hits += 1
                    self._last_hit = (key, "local")
                    return payload
            payload = self.remote.load(key)
            if payload is not None:
                if self.local is not None:
                    # Promote: the next rebuild on this machine hits
                    # the local tier without touching the network.
                    self.local.store(key, payload)
                self.hits += 1
                self._last_hit = (key, "remote")
                return payload
            self.misses += 1
            return None
        finally:
            self.loads += 1
            self.load_ms += (perf_counter() - start) * 1000.0

    def store(self, key: str, payload: dict[str, Any]) -> bool:
        start = perf_counter()
        try:
            landed = True
            if self.local is not None:
                landed = self.local.store(key, payload)
            if self._queue is None:
                self.remote.store(key, payload)
            else:
                self._ensure_uploader()
                try:
                    self._queue.put_nowait((key, dict(payload)))
                    with self._mu:
                        self.wb_queued += 1
                except queue.Full:
                    # The build is outrunning the uploader: dropping
                    # the publish keeps the build path non-blocking —
                    # the snapshot still landed locally.
                    with self._mu:
                        self.wb_dropped += 1
            return landed
        finally:
            self.stores += 1
            self.store_ms += (perf_counter() - start) * 1000.0

    def discard(self, key: str) -> None:
        self.hits = max(0, self.hits - 1)
        self.misses += 1
        tier = "remote" if self.local is None else "local"
        if self._last_hit is not None and self._last_hit[0] == key:
            tier = self._last_hit[1]
            self._last_hit = None
        if tier == "local" and self.local is not None:
            self.local.discard(key)
        else:
            self.remote.discard(key)
            if self.local is not None:
                # Drop the copy load() just promoted — it carries the
                # same semantic defect the caller is rejecting.
                self.local.discard(key)

    # ------------------------------------------------------------------

    def _ensure_uploader(self) -> None:
        if self._thread is not None and self._thread.is_alive():
            return
        with self._mu:
            if self._thread is not None and self._thread.is_alive():
                return
            self._thread = threading.Thread(
                target=self._drain,
                name="ms2-cache-writebehind",
                daemon=True,
            )
            self._thread.start()

    def _drain(self) -> None:
        assert self._queue is not None
        while True:
            item = self._queue.get()
            try:
                if item is _SENTINEL:
                    return
                key, payload = item
                ok = self.remote.store(key, payload)
                with self._mu:
                    if ok:
                        self.wb_flushed += 1
                    else:
                        self.wb_failed += 1
            except Exception:  # noqa: BLE001 — uploader must survive
                with self._mu:
                    self.wb_failed += 1
            finally:
                self._queue.task_done()

    def queue_depth(self) -> int:
        """Publishes currently waiting for the uploader."""
        return self._queue.qsize() if self._queue is not None else 0

    def flush(self, timeout_s: float = 30.0) -> None:
        """Block until every queued publish has been attempted."""
        thread = self._thread
        if self._queue is None or thread is None:
            return
        deadline = perf_counter() + timeout_s
        while self.queue_depth() > 0 and perf_counter() < deadline:
            if not thread.is_alive():
                return
            threading.Event().wait(0.005)

    def close(self) -> None:
        """Flush-then-stop: every publish accepted before ``close``
        is attempted before it returns (the ordering the two-machine
        warm-build workflow depends on)."""
        thread = self._thread
        if self._queue is not None and thread is not None:
            self._queue.put(_SENTINEL)
            thread.join(timeout=30.0)
            self._thread = None
        if self.local is not None:
            self.local.close()
        self.remote.close()

    # ------------------------------------------------------------------

    def counters(self) -> dict[str, Any]:
        tiers: dict[str, Any] = {}
        failures = 0
        evictions = 0
        if self.local is not None:
            tiers["local"] = self.local.counters()
            failures += self.local.failures
            evictions += self.local.evictions
        tiers["remote"] = self.remote.counters()
        failures += self.remote.failures
        evictions += self.remote.evictions
        with self._mu:
            write_behind = {
                "queued": self.wb_queued,
                "dropped": self.wb_dropped,
                "flushed": self.wb_flushed,
                "failed": self.wb_failed,
                "depth": self.queue_depth(),
                "limit": self.write_behind,
            }
        return {
            "hits": self.hits,
            "misses": self.misses,
            "failures": failures,
            "evictions": evictions,
            "loads": self.loads,
            "stores": self.stores,
            "load_ms": round(self.load_ms, 3),
            "store_ms": round(self.store_ms, 3),
            "tiers": tiers,
            "write_behind": write_behind,
        }

    def describe(self) -> str:
        if self.local is not None:
            return f"{self.local.describe()} + {self.remote.describe()}"
        return self.remote.describe()
