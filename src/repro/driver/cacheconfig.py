"""The unified configuration surface of the snapshot cache.

Historically the persistent cache was configured with a lone
``BuildSession(cache_dir=...)`` keyword; a distributed cache needs
more knobs (the remote authority's address, the write-behind queue
depth, the remote timeout, the fail-open switch), and scattering them
as keyword arguments would repeat the sprawl
:class:`~repro.options.Ms2Options` and
:class:`~repro.serveconfig.ServeConfig` were built to end.
:class:`CacheConfig` is their sibling for the cache layer:

- the **single source of defaults** — ``repro build``'s
  ``--cache-dir`` / ``--remote-cache`` argparse defaults and the
  library's behaviour both come from ``CacheConfig()``,
- **JSON round-trippable** (:meth:`CacheConfig.to_json` /
  :meth:`CacheConfig.from_json`), so a build farm can ship one cache
  policy to every runner the way the shard supervisor ships a
  :class:`~repro.serveconfig.ServeConfig`,
- **validated once** (:meth:`CacheConfig.validate`), so a bad remote
  address or a negative queue depth fails before the first build,
- the **backend factory** (:meth:`CacheConfig.build_backend`): the
  one place the local / remote / tiered composition is decided.

The legacy ``BuildSession(cache_dir=..., use_disk_cache=...)``
keyword arguments keep working through
:meth:`CacheConfig.from_legacy_kwargs`, which emits one
:class:`~repro.options.Ms2DeprecationWarning` per call — exactly the
``ServeConfig`` shim pattern.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.driver.diskcache import DEFAULT_CACHE_DIR
from repro.options import warn_legacy

__all__ = [
    "CACHE_FIELDS",
    "CacheConfig",
    "DEFAULT_REMOTE_TIMEOUT_S",
    "DEFAULT_WRITE_BEHIND",
]

#: Client-side budget for one remote cache operation, seconds.  A
#: remote answer that arrives later than this is treated as a miss —
#: slower than re-expanding is worse than useless.
DEFAULT_REMOTE_TIMEOUT_S = 2.0

#: Bounded depth of the asynchronous write-behind queue (snapshot
#: publishes waiting for the background uploader).  0 publishes
#: synchronously; overflow drops the write and counts it.
DEFAULT_WRITE_BEHIND = 64


@dataclass(frozen=True, slots=True)
class CacheConfig:
    """Every knob of the persistent snapshot cache, as a frozen value.

    Construct once, share freely: the object is immutable, comparable
    and JSON round-trippable.  Derive variants with :meth:`replace`.
    ``CacheConfig()`` is today's behaviour exactly — a local
    ``.ms2-cache/`` directory, no remote.
    """

    #: Local snapshot-directory root; None disables the local tier.
    local_dir: str | None = DEFAULT_CACHE_DIR
    #: Address of a ``repro serve`` daemon doubling as the cache
    #: authority (any :func:`~repro.client.parse_server_address`
    #: form); None disables the remote tier.
    remote: str | None = None
    #: Write-behind queue depth for remote publishes (0 = publish
    #: synchronously on the build path).
    write_behind: int = DEFAULT_WRITE_BEHIND
    #: Client-side budget for one remote cache op, seconds.
    remote_timeout_s: float = DEFAULT_REMOTE_TIMEOUT_S
    #: When True (default), every remote failure — daemon down,
    #: connection reset, corrupt payload, timeout — degrades to a
    #: cache miss and the build expands locally.  False turns remote
    #: failures into exceptions (CI setups that must notice a
    #: misconfigured authority).
    fail_open: bool = True

    # ------------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """Whether any cache tier is configured at all."""
        return self.local_dir is not None or self.remote is not None

    def replace(self, **changes: Any) -> "CacheConfig":
        """A copy with the given fields changed."""
        return dataclasses.replace(self, **changes)

    def validate(self) -> "CacheConfig":
        """``self`` if the configuration is usable; raises
        :class:`ValueError` naming the first impossibility."""
        if self.write_behind < 0:
            raise ValueError("write_behind must be >= 0")
        if self.remote_timeout_s <= 0:
            raise ValueError("remote_timeout_s must be > 0")
        if self.remote is not None:
            from repro.client import parse_server_address

            parse_server_address(self.remote)  # raises ValueError
        return self

    def build_backend(self) -> Any:
        """The :class:`~repro.driver.cachebackend.CacheBackend` this
        configuration describes, or None when both tiers are off:

        - local only — the classic
          :class:`~repro.driver.diskcache.PersistentCache`;
        - remote only — a bare
          :class:`~repro.driver.cachebackend.RemoteCacheBackend`;
        - both — a :class:`~repro.driver.cachebackend.TieredBackend`
          (read-through local first, async write-behind to remote).
        """
        from repro.driver.cachebackend import (
            RemoteCacheBackend,
            TieredBackend,
        )
        from repro.driver.diskcache import PersistentCache

        self.validate()
        local = (
            PersistentCache(self.local_dir)
            if self.local_dir is not None
            else None
        )
        if self.remote is None:
            return local
        remote = RemoteCacheBackend(
            self.remote,
            timeout_s=self.remote_timeout_s,
            fail_open=self.fail_open,
        )
        if local is None:
            return remote
        return TieredBackend(
            local, remote, write_behind=self.write_behind
        )

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------

    def to_json(self) -> dict[str, Any]:
        """Every field as JSON-able values; :meth:`from_json`
        round-trips it exactly."""
        return {name: getattr(self, name) for name in CACHE_FIELDS}

    @classmethod
    def from_json(cls, data: dict[str, Any] | None) -> "CacheConfig":
        """Rebuild a config from a :meth:`to_json` payload.  Unknown
        keys are ignored (payloads written by newer versions still
        load); values of the wrong JSON type raise
        :class:`ValueError`."""
        if data is None:
            return cls()
        if not isinstance(data, dict):
            raise ValueError("cache config payload must be a JSON object")
        kwargs: dict[str, Any] = {}
        for name in CACHE_FIELDS:
            if name not in data:
                continue
            kwargs[name] = _check_field(name, data[name])
        return cls(**kwargs)

    # ------------------------------------------------------------------
    # Legacy-kwargs shim
    # ------------------------------------------------------------------

    @classmethod
    def from_legacy_kwargs(cls, **legacy: Any) -> "CacheConfig":
        """Fold the legacy ``BuildSession`` cache keyword arguments
        into a config value, emitting one
        :class:`~repro.options.Ms2DeprecationWarning` per call.

        ``cache_dir=PATH`` maps to ``local_dir`` (``None`` disables
        the local tier, as it always did); ``use_disk_cache=False``
        disables caching outright.
        """
        unknown = set(legacy) - _LEGACY_FIELDS
        if unknown:
            raise TypeError(
                f"unknown cache option(s): {sorted(unknown)}"
            )
        warn_legacy(
            f"passing {', '.join(sorted(legacy))} as BuildSession "
            "keyword argument(s)",
            "CacheConfig",
        )
        kwargs: dict[str, Any] = {}
        if "cache_dir" in legacy:
            value = legacy.pop("cache_dir")
            kwargs["local_dir"] = (
                str(value) if value is not None else None
            )
        if not legacy.pop("use_disk_cache", True):
            kwargs["local_dir"] = None
            kwargs["remote"] = None
        return cls(**kwargs)


#: Every field name of :class:`CacheConfig`, declaration order.
CACHE_FIELDS: tuple[str, ...] = tuple(
    f.name for f in dataclasses.fields(CacheConfig)
)

#: The cache keyword arguments the legacy ``BuildSession`` took.
_LEGACY_FIELDS = frozenset({"cache_dir", "use_disk_cache"})

_DEFAULTS = None  # populated lazily below (needs the class finalized)


def _check_field(name: str, value: Any) -> Any:
    """Validate one wire value for :meth:`CacheConfig.from_json`."""
    global _DEFAULTS
    if _DEFAULTS is None:
        _DEFAULTS = CacheConfig()
    default = getattr(_DEFAULTS, name)
    if isinstance(default, bool):
        if not isinstance(value, bool):
            raise ValueError(f"cache option {name!r} must be a boolean")
        return value
    if isinstance(default, int):
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValueError(f"cache option {name!r} must be an integer")
        return value
    if isinstance(default, float):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(f"cache option {name!r} must be a number")
        return float(value)
    if value is None:
        return None
    if isinstance(value, (str, Path)):
        return str(value)
    raise ValueError(f"cache option {name!r} must be a string or null")
