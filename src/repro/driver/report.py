"""Batch-build reporting: per-file results and the aggregate view.

One :class:`FileResult` per translation unit records where its output
came from (fresh expansion or persistent-cache snapshot), its
diagnostics, its pipeline counters and its trace spans — all in
JSON-ready form, because results cross process boundaries and are
persisted verbatim as cache snapshots.  :class:`BuildReport` rolls a
batch of them into one object: aggregate
:class:`~repro.stats.PipelineStats` (summed with
:meth:`~repro.stats.PipelineStats.merge`), cache counters, wall time,
and the text / JSON renderings behind ``repro build --report``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.stats import PipelineStats

__all__ = ["BuildReport", "FileResult"]


@dataclass(slots=True)
class FileResult:
    """The outcome of building one translation unit."""

    #: Input path as given to the driver.
    path: str
    #: ``"ok"`` (expanded, possibly with recovered diagnostics),
    #: ``"error"`` (fail-fast error; ``output`` is empty) or
    #: ``"poisoned"`` (the file repeatedly crashed its build worker
    #: and was quarantined so the rest of the batch could finish).
    status: str
    #: Expanded C text.
    output: str = ""
    #: True when the output was replayed from a persistent snapshot.
    from_cache: bool = False
    #: The (source, macros, options) content key for this build.
    key: str = ""
    #: Wall-clock milliseconds spent on this file (0 for cache hits).
    duration_ms: float = 0.0
    #: Rendered diagnostics (``Diagnostic.to_json`` form).
    diagnostics: list[dict[str, Any]] = field(default_factory=list)
    #: Pipeline counters for this file (``PipelineStats.to_json``).
    stats: dict[str, Any] = field(default_factory=dict)
    #: Trace spans for this file (``ExpansionSpan.to_json`` records).
    spans: list[dict[str, Any]] = field(default_factory=list)
    #: Fail-fast error text when ``status != "ok"``.
    error: str | None = None
    #: Exception class name behind ``error`` (e.g. ``"OSError"``,
    #: ``"BrokenProcessPool"``); lets the server distinguish
    #: transient infrastructure failures from real expansion errors.
    error_type: str | None = None

    @property
    def ok(self) -> bool:
        """True unless the file failed outright or collected an
        error-severity diagnostic."""
        if self.status != "ok":
            return False
        return not any(
            d.get("severity") == "error" for d in self.diagnostics
        )

    def to_json(self) -> dict[str, Any]:
        """JSON-ready rendering (one entry of ``--report json``; also
        the server's ``expand_file`` response body)."""
        return {
            "path": self.path,
            "status": self.status,
            "ok": self.ok,
            "from_cache": self.from_cache,
            "key": self.key,
            "duration_ms": round(self.duration_ms, 3),
            "output": self.output,
            "diagnostics": self.diagnostics,
            "stats": self.stats,
            "spans": self.spans,
            "error": self.error,
            "error_type": self.error_type,
        }

    #: Legacy spelling of :meth:`to_json`.
    as_dict = to_json


@dataclass(slots=True)
class BuildReport:
    """Everything one ``repro build`` invocation did."""

    #: Per-file outcomes, input order.
    results: list[FileResult] = field(default_factory=list)
    #: Worker processes used (1 = in-process sequential).
    jobs: int = 1
    #: Cache root, or None when the persistent cache was disabled.
    cache_dir: str | None = None
    #: Whether unchanged files were allowed to skip expansion.
    incremental: bool = True
    #: End-to-end wall milliseconds for the batch.
    elapsed_ms: float = 0.0
    #: Cache-backend session counters (hits/misses/failures/evictions
    #: plus load/store call counts and latency totals; tiered backends
    #: add nested ``"tiers"`` and ``"write_behind"`` sections).
    cache: dict[str, Any] = field(default_factory=dict)
    #: Worker-pool rebuilds after a crashed worker process.
    worker_restarts: int = 0

    # ------------------------------------------------------------------

    @property
    def ok(self) -> bool:
        """True when every file built cleanly."""
        return all(result.ok for result in self.results)

    @property
    def files_from_cache(self) -> int:
        return sum(1 for r in self.results if r.from_cache)

    @property
    def files_expanded(self) -> int:
        return sum(
            1 for r in self.results
            if not r.from_cache and r.status == "ok"
        )

    @property
    def files_failed(self) -> int:
        return sum(1 for r in self.results if r.status == "error")

    @property
    def files_poisoned(self) -> int:
        return sum(1 for r in self.results if r.status == "poisoned")

    def aggregate_stats(self) -> PipelineStats:
        """Every file's pipeline counters summed into one object."""
        total = PipelineStats()
        for result in self.results:
            if result.stats:
                total.merge(PipelineStats.from_json(result.stats))
        return total

    # ------------------------------------------------------------------

    def to_json(self) -> dict[str, Any]:
        """The ``--report json`` payload."""
        return {
            "ok": self.ok,
            "files": len(self.results),
            "files_from_cache": self.files_from_cache,
            "files_expanded": self.files_expanded,
            "files_failed": self.files_failed,
            "files_poisoned": self.files_poisoned,
            "worker_restarts": self.worker_restarts,
            "jobs": self.jobs,
            "incremental": self.incremental,
            "cache_dir": self.cache_dir,
            "cache": self.cache,
            "elapsed_ms": round(self.elapsed_ms, 3),
            "stats": self.aggregate_stats().to_json(),
            "results": [result.to_json() for result in self.results],
        }

    #: Legacy spelling of :meth:`to_json`.
    as_dict = to_json

    def render(self) -> str:
        """Human-readable batch summary (the default CLI output)."""
        lines = []
        for result in self.results:
            if result.status == "poisoned":
                tag = "POISON"
            elif result.status == "error":
                tag = "FAIL"
            elif result.from_cache:
                tag = "cached"
            else:
                tag = "built"
            detail = f"{result.duration_ms:8.1f}ms"
            if result.diagnostics:
                detail += f"  {len(result.diagnostics)} diagnostic(s)"
            if result.error:
                first_line = result.error.splitlines()[0]
                detail += f"  {first_line}"
            lines.append(f"{tag:>6}  {result.path}  {detail}")
        summary = (
            f"-- {len(self.results)} file(s): "
            f"{self.files_expanded} built, "
            f"{self.files_from_cache} from cache, "
            f"{self.files_failed} failed"
        )
        if self.files_poisoned:
            summary += f", {self.files_poisoned} poisoned"
        summary += f" [{self.jobs} job(s), {self.elapsed_ms:.1f}ms]"
        lines.append(summary)
        if self.worker_restarts:
            lines.append(
                f"-- resilience: {self.worker_restarts} worker "
                "restart(s) after crashed build worker(s)"
            )
        if self.cache:
            lines.append(
                "-- disk cache: "
                f"{self.cache.get('hits', 0)} hit(s), "
                f"{self.cache.get('misses', 0)} miss(es), "
                f"{self.cache.get('failures', 0)} failure(s), "
                f"{self.cache.get('evictions', 0)} eviction(s) "
                f"[load {self.cache.get('load_ms', 0):.1f}ms, "
                f"store {self.cache.get('store_ms', 0):.1f}ms]"
            )
            tiers = self.cache.get("tiers")
            if isinstance(tiers, dict):
                for name, tier in tiers.items():
                    if not isinstance(tier, dict):
                        continue
                    line = (
                        f"--   {name}: "
                        f"{tier.get('hits', 0)} hit(s), "
                        f"{tier.get('misses', 0)} miss(es), "
                        f"{tier.get('failures', 0)} failure(s) "
                        f"[load {tier.get('load_ms', 0):.1f}ms, "
                        f"store {tier.get('store_ms', 0):.1f}ms]"
                    )
                    extras = []
                    if tier.get("timeouts"):
                        extras.append(f"{tier['timeouts']} timeout(s)")
                    if tier.get("errors"):
                        extras.append(f"{tier['errors']} error(s)")
                    if tier.get("down"):
                        extras.append("circuit OPEN")
                    if extras:
                        line += "  " + ", ".join(extras)
                    lines.append(line)
            wb = self.cache.get("write_behind")
            if isinstance(wb, dict) and wb.get("limit"):
                lines.append(
                    "--   write-behind: "
                    f"{wb.get('flushed', 0)} flushed, "
                    f"{wb.get('dropped', 0)} dropped, "
                    f"{wb.get('failed', 0)} failed "
                    f"(queue {wb.get('depth', 0)}/{wb.get('limit', 0)})"
                )
        return "\n".join(lines)
