"""Advisory file locking for the persistent build cache.

Multiple build workers — and multiple *invocations* of ``repro
build`` — may share one ``.ms2-cache/`` directory.  Snapshot files
themselves are written atomically (temp file + ``os.replace``), so a
reader can never observe a half-written snapshot; the lock exists for
the compound operations around them: claim-then-write of one cache
entry, and directory-level maintenance (eviction of corrupt entries,
``clear``).

:class:`FileLock` is a context manager over an ``flock``-style
advisory lock on a dedicated ``*.lock`` file.  On POSIX it uses
:func:`fcntl.flock` (locks die with the process, so a crashed worker
can never wedge the cache); where ``fcntl`` is unavailable it falls
back to ``O_CREAT | O_EXCL`` lock files stamped with the owner's PID
and broken when the owner is provably dead or the file outlives
:data:`_STALE_AGE`.  Acquisition polls with a short sleep rather
than blocking in the kernel so a ``timeout`` can be honoured
portably.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from types import TracebackType

from repro import faults

try:  # POSIX fast path
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

__all__ = ["FileLock", "LockTimeout"]

#: Seconds between acquisition attempts while polling.
_POLL_INTERVAL = 0.01

#: Age (seconds) after which a fallback lock file is presumed to
#: belong to a dead process and is broken.  Irrelevant on POSIX,
#: where flock locks vanish with their holder.
_STALE_AGE = 30.0


class LockTimeout(OSError):
    """Raised when a lock cannot be acquired within the timeout."""


class FileLock:
    """An advisory inter-process lock bound to ``path``.

    >>> with FileLock(cache_dir / "entry.lock"):
    ...     write_snapshot(...)

    Re-entrant use within one process is not supported (and not
    needed by the driver, which holds each lock for one store).
    """

    def __init__(self, path: Path | str, timeout: float = 10.0) -> None:
        self.path = Path(path)
        self.timeout = timeout
        self._fd: int | None = None

    @property
    def held(self) -> bool:
        """True while this instance holds the lock."""
        return self._fd is not None

    # ------------------------------------------------------------------

    def acquire(self) -> None:
        """Take the lock, polling until ``timeout`` elapses."""
        if self._fd is not None:
            raise RuntimeError(f"lock {self.path} already held")
        if faults.ACTIVE is not None:
            faults.ACTIVE.hit("lock.acquire", context=str(self.path))
        deadline = time.monotonic() + self.timeout
        while True:
            if self._try_acquire():
                return
            if time.monotonic() >= deadline:
                raise LockTimeout(
                    f"could not acquire {self.path} "
                    f"within {self.timeout:g}s"
                )
            time.sleep(_POLL_INTERVAL)

    def _try_acquire(self) -> bool:
        if fcntl is not None:
            return self._try_acquire_flock()
        return self._try_acquire_exclusive()

    def _try_acquire_flock(self) -> bool:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            os.close(fd)
            return False
        self._fd = fd
        return True

    def _try_acquire_exclusive(self) -> bool:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            fd = os.open(
                self.path, os.O_CREAT | os.O_EXCL | os.O_RDWR, 0o644
            )
        except FileExistsError:
            self._break_if_stale()
            return False
        os.write(fd, str(os.getpid()).encode("ascii"))
        self._fd = fd
        return True

    def _break_if_stale(self) -> None:
        """Reclaim a fallback lock file left by a crashed process.

        Two independent reclaim conditions: the recorded owner PID is
        provably dead (``kill -0`` says no such process), or the file
        has outlived :data:`_STALE_AGE` (covers unreadable/garbled PID
        stamps and PID reuse by a long-lived unrelated process).  A
        live owner under the age limit is never disturbed.
        """
        try:
            stat = self.path.stat()
        except OSError:
            return  # already released
        age = time.time() - stat.st_mtime
        if not (self._owner_dead() or age > _STALE_AGE):
            return
        try:
            self.path.unlink()
        except OSError:
            pass

    def _owner_dead(self) -> bool:
        """True only when the lock file names a PID that provably no
        longer exists.  Unreadable or malformed stamps, and live or
        permission-denied PIDs, all read as "maybe alive"."""
        try:
            raw = self.path.read_bytes()
            pid = int(raw.decode("ascii").strip() or "0")
        except (OSError, ValueError):
            return False
        if pid <= 0:
            return False
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return True
        except OSError:
            pass  # e.g. EPERM: alive but not ours
        return False

    def release(self) -> None:
        """Drop the lock (idempotent)."""
        fd, self._fd = self._fd, None
        if fd is None:
            return
        if fcntl is not None:
            try:
                fcntl.flock(fd, fcntl.LOCK_UN)
            except OSError:
                pass
            os.close(fd)
            # The lock file itself stays behind — unlinking it would
            # race against a process that just opened it and is about
            # to flock the now-orphaned inode.
        else:  # pragma: no cover
            os.close(fd)
            try:
                self.path.unlink()
            except OSError:
                pass

    # ------------------------------------------------------------------

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.release()
