"""The parallel batch-build scheduler.

:class:`BuildSession` turns a set of ``.c``/``.ms2`` translation
units into expanded C concurrently.  The model follows the paper's
multi-file workflow — macro packages first, then program files, where
"meta-programming constructs and regular code can either be located
in separate files, or mixed together" — scaled out:

- every worker process shares the same macro-package preamble (the
  named standard packages plus any package source files), loaded once
  per worker by the pool initializer;
- each translation unit is expanded *independently*, by a fresh
  :class:`~repro.engine.MacroProcessor` over the shared packages, so
  macro definitions inside one program file can never leak into
  another and results are identical to building each file alone;
- results are keyed by ``(path, source hash, macro hash, options
  hash)`` and stored in the
  :class:`~repro.driver.diskcache.PersistentCache`, so an incremental
  rebuild skips files whose key is unchanged — across runs and across
  processes.  The path is part of the key because output can embed it
  (``--annotate`` ``#line`` directives, provenance comments,
  diagnostic locations): identical content at two paths must never
  share a snapshot.

Workers communicate in plain dicts (the
:class:`~repro.driver.report.FileResult` wire form); the session
aggregates them into one :class:`~repro.driver.report.BuildReport`.
With ``jobs=1`` the whole build runs in-process through the very same
worker code path, which keeps sequential and parallel builds
byte-identical by construction.
"""

from __future__ import annotations

import hashlib
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter
from typing import Any, Iterable, Sequence

from repro import __version__, faults
from repro.driver.cacheconfig import CacheConfig
from repro.driver.report import BuildReport, FileResult
from repro.engine import MacroProcessor
from repro.errors import ExpansionBudgetError, Ms2Error
from repro.macros.cache import CACHE_FORMAT_VERSION
from repro.options import Ms2Options

__all__ = ["BuildSession", "resolve_inputs", "write_outputs"]

#: Source-file suffixes the driver picks up when handed a directory.
SOURCE_SUFFIXES = (".c", ".ms2")

#: Base pause before re-running a task whose worker process died
#: (scaled by attempt number — a crashing worker often means memory
#: pressure, and an immediate respawn just reproduces it).
_RESTART_BACKOFF_S = 0.05

#: Distinguishes "cache left to its default" from an explicit
#: ``cache=None`` (which disables caching).
_UNSET_CACHE: Any = object()


def resolve_inputs(paths: Iterable[Path | str]) -> list[Path]:
    """Expand the CLI's ``<dir|files...>`` arguments into a sorted,
    de-duplicated list of translation units.  Directories contribute
    every ``*.c``/``*.ms2`` file below them."""
    out: list[Path] = []
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            found = sorted(
                p for p in path.rglob("*")
                if p.is_file() and p.suffix in SOURCE_SUFFIXES
            )
            if not found:
                raise FileNotFoundError(
                    f"no {'/'.join(SOURCE_SUFFIXES)} files under {path}"
                )
            candidates = found
        elif path.is_file():
            candidates = [path]
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                out.append(candidate)
    return out


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class _WorkerConfig:
    """Everything a worker needs to rebuild the shared macro context
    (picklable: names + sources + a hook-free options value)."""

    package_names: tuple[str, ...]
    package_sources: tuple[tuple[str, str], ...]  # (filename, source)
    options: Ms2Options


#: Per-process worker state, set by :func:`_worker_init`.
_WORKER: dict = {}


def _worker_init(config: _WorkerConfig) -> None:
    """Pool initializer: remember the shared macro context.  Also used
    verbatim by the in-process sequential path."""
    _WORKER["config"] = config


def _fresh_processor(config: _WorkerConfig) -> MacroProcessor:
    """A processor with the shared packages loaded — the per-file
    isolation boundary (definitions in one program file never leak
    into another)."""
    from repro.packages import register_named

    mp = MacroProcessor(options=config.options)
    for name in config.package_names:
        register_named(mp, name)
    for filename, source in config.package_sources:
        mp.load(source, filename)
    return mp


def _build_one(
    task: tuple[str, str], config: _WorkerConfig | None = None
) -> dict:
    """Expand one translation unit; returns the FileResult wire dict.

    Ms2Error faults (fail-fast mode) become ``status: "error"``
    records — one bad file never aborts the batch.

    ``config`` falls back to the pool-initializer global only on the
    process-pool path; the in-process path passes it explicitly so
    concurrent sessions in one process cannot stomp each other.
    """
    path, source = task
    if config is None:
        config = _WORKER["config"]
    start = perf_counter()
    try:
        if faults.ACTIVE is not None:
            # "driver.worker" is the batch-build chaos site: a kill
            # fault here dies like a real worker crash (os._exit, no
            # exception), anything else surfaces below.
            faults.ACTIVE.hit("driver.worker", context=path)
        mp = _fresh_processor(config)
        result = mp.expand(source, path)
    except Ms2Error as exc:
        return {
            "path": path,
            "status": "error",
            "error": str(exc),
            "error_type": type(exc).__name__,
            "duration_ms": (perf_counter() - start) * 1000.0,
        }
    except Exception as exc:  # infrastructure failure, not the file
        return {
            "path": path,
            "status": "error",
            "error": f"{type(exc).__name__}: {exc}",
            "error_type": type(exc).__name__,
            "duration_ms": (perf_counter() - start) * 1000.0,
        }
    record = result.to_json()
    return {
        "path": path,
        "status": "ok",
        "output": record["output"],
        "diagnostics": record["diagnostics"],
        "stats": record["stats"],
        "spans": record["spans"],
        "duration_ms": (perf_counter() - start) * 1000.0,
    }


# ---------------------------------------------------------------------------
# Session side
# ---------------------------------------------------------------------------


class BuildSession:
    """A batch compilation session over one macro context.

    Parameters
    ----------
    options:
        The :class:`~repro.options.Ms2Options` applied to every file;
        its :meth:`~repro.options.Ms2Options.options_hash` is one
        third of the incremental-rebuild key.  Runtime trace hooks
        are stripped (they cannot cross process boundaries).
    package_names:
        Standard packages (``repro.packages`` registry names) loaded
        into every worker before any file is expanded.
    package_sources:
        ``(filename, source)`` pairs of macro-package files, loaded
        after the named packages — the paper's separate meta-program
        files.
    jobs:
        Worker processes.  1 (the default) builds sequentially
        in-process through the same code path.
    cache:
        The snapshot cache, in any of four spellings: a
        :class:`~repro.driver.cacheconfig.CacheConfig` (the full
        surface — local dir, remote authority, write-behind policy),
        a path (shorthand for a local-only config rooted there), a
        ready :class:`~repro.driver.cachebackend.CacheBackend`
        instance, or ``None`` to disable caching.  Omitted, it
        defaults to ``CacheConfig()`` — a local ``.ms2-cache/``.
        The legacy ``cache_dir=`` / ``use_disk_cache=`` keywords
        keep working through
        :meth:`~repro.driver.cacheconfig.CacheConfig.from_legacy_kwargs`
        (one :class:`~repro.options.Ms2DeprecationWarning`).
    incremental:
        When True (default), files whose (source, macros, options)
        key has a usable snapshot are served from the cache without
        expanding.  When False every file is re-expanded, but fresh
        results are still stored for future runs.
    retries:
        How many times a task whose worker *process died* (signal,
        ``os._exit``, OOM kill) is re-run, each time in a fresh
        single-worker pool so one poisonous file cannot take
        neighbours down with it again.  A file that outlives its
        worker on every attempt is quarantined as ``status:
        "poisoned"`` instead of aborting the batch.
    """

    def __init__(
        self,
        options: Ms2Options | None = None,
        *,
        package_names: Sequence[str] = (),
        package_sources: Sequence[tuple[str, str]] = (),
        jobs: int = 1,
        cache: Any = _UNSET_CACHE,
        incremental: bool = True,
        retries: int = 2,
        **legacy: Any,
    ) -> None:
        base = options if options is not None else Ms2Options()
        self.options = base.without_runtime_hooks()
        self.package_names = tuple(package_names)
        self.package_sources = tuple(
            (str(name), source) for name, source in package_sources
        )
        self.jobs = max(1, int(jobs))
        self.incremental = incremental
        self.retries = max(0, int(retries))
        #: Pools rebuilt after a worker process died mid-batch.
        self.worker_restarts = 0
        self.cache_config, self.cache = self._resolve_cache(
            cache, legacy
        )
        self.macro_hash = self._macro_hash()
        self._config = _WorkerConfig(
            package_names=self.package_names,
            package_sources=self.package_sources,
            options=self.options,
        )

    @staticmethod
    def _resolve_cache(
        cache: Any, legacy: dict[str, Any]
    ) -> tuple[CacheConfig | None, Any]:
        """(config, backend) from the ``cache=`` argument or the
        legacy ``cache_dir=`` / ``use_disk_cache=`` keywords."""
        if legacy:
            if cache is not _UNSET_CACHE:
                raise TypeError(
                    "BuildSession takes either cache=... or the "
                    "legacy cache keyword arguments, not both"
                )
            config = CacheConfig.from_legacy_kwargs(**legacy)
            return config, config.build_backend()
        if cache is _UNSET_CACHE:
            config = CacheConfig()
            return config, config.build_backend()
        if cache is None:
            return None, None
        if isinstance(cache, CacheConfig):
            return cache, cache.build_backend()
        if isinstance(cache, (str, Path)):
            config = CacheConfig(local_dir=str(cache))
            return config, config.build_backend()
        # A ready backend object (anything speaking the protocol).
        return None, cache

    def close(self) -> None:
        """Release the cache backend — flushes the tiered backend's
        write-behind queue, so every snapshot this session published
        is visible to the fleet before the process moves on."""
        if self.cache is not None:
            self.cache.close()

    def __enter__(self) -> "BuildSession":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # The incremental-rebuild key
    # ------------------------------------------------------------------

    def _macro_hash(self) -> str:
        """Digest of the shared macro context: package names, package
        sources, pipeline version, snapshot format version.  Any
        change to what macros mean invalidates every file's key."""
        digest = hashlib.sha256()
        digest.update(__version__.encode("utf-8"))
        digest.update(bytes([CACHE_FORMAT_VERSION]))
        for name in self.package_names:
            digest.update(b"\x00name\x00" + name.encode("utf-8"))
        for filename, source in self.package_sources:
            digest.update(b"\x00file\x00" + filename.encode("utf-8"))
            digest.update(source.encode("utf-8"))
        return digest.hexdigest()[:16]

    def file_key(self, name: str, source: str) -> str:
        """The content key for one translation unit:
        path x sha256(source) x macro hash x options hash.

        The path participates because expanded output is not a pure
        function of content: ``annotate`` embeds the filename in
        ``#line`` directives and provenance comments, and recovered
        diagnostics carry file locations.  Identical content at two
        paths therefore keys two distinct snapshots."""
        source_sha = hashlib.sha256(source.encode("utf-8")).hexdigest()
        name_sha = hashlib.sha256(name.encode("utf-8")).hexdigest()
        return hashlib.sha256(
            (
                f"{name_sha}\x00{source_sha}\x00{self.macro_hash}"
                f"\x00{self.options.options_hash()}"
            ).encode("ascii")
        ).hexdigest()

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------

    def build(self, paths: Iterable[Path | str]) -> BuildReport:
        """Build files and/or directories of translation units."""
        files = resolve_inputs(paths)
        sources = [(str(path), path.read_text()) for path in files]
        return self.build_sources(sources)

    def build_sources(
        self, sources: Sequence[tuple[str, str]]
    ) -> BuildReport:
        """Build ``(name, source)`` pairs (the filesystem-free core
        of :meth:`build`)."""
        start = perf_counter()
        results: list[FileResult | None] = [None] * len(sources)
        pending: list[tuple[int, str, str, str]] = []

        for index, (name, source) in enumerate(sources):
            key = self.file_key(name, source)
            snapshot = (
                self.cache.load(key)
                if (self.cache is not None and self.incremental)
                else None
            )
            if snapshot is not None and snapshot.get("path") != name:
                # The key covers the path, so a mismatch means the
                # snapshot was copied or forged — replaying it would
                # emit another file's embedded locations.
                self.cache.discard(key)
                snapshot = None
            if snapshot is not None:
                # Replayed result: output and diagnostics are part of
                # the file's meaning and come back; stats/spans stay
                # empty because no pipeline work happened this run.
                results[index] = FileResult(
                    path=name,
                    status="ok",
                    output=snapshot["output"],
                    diagnostics=list(snapshot.get("diagnostics", [])),
                    from_cache=True,
                    key=key,
                )
            else:
                pending.append((index, name, source, key))

        for index, key, record in self._expand_pending(pending):
            result = FileResult(
                path=record["path"],
                status=record["status"],
                output=record.get("output", ""),
                diagnostics=record.get("diagnostics", []),
                stats=record.get("stats", {}),
                spans=record.get("spans", []),
                duration_ms=record.get("duration_ms", 0.0),
                error=record.get("error"),
                error_type=record.get("error_type"),
                key=key,
            )
            results[index] = result
            if self._cacheable(result) and self.cache is not None:
                self.cache.store(
                    key,
                    {
                        "path": result.path,
                        "output": result.output,
                        "diagnostics": result.diagnostics,
                        "stats": result.stats,
                        "spans": result.spans,
                        "macro_hash": self.macro_hash,
                        "options_hash": self.options.options_hash(),
                    },
                )

        return BuildReport(
            results=[r for r in results if r is not None],
            jobs=self.jobs,
            cache_dir=(
                self.cache.describe() if self.cache is not None else None
            ),
            incremental=self.incremental,
            elapsed_ms=(perf_counter() - start) * 1000.0,
            cache=(
                self.cache.counters() if self.cache is not None else {}
            ),
            worker_restarts=self.worker_restarts,
        )

    @staticmethod
    def _cacheable(result: FileResult) -> bool:
        """Whether a fresh result may be persisted.  Failures are
        never cached, and neither is recovered output truncated by a
        budget — ``deadline_s`` makes budget exhaustion wall-clock
        nondeterministic, so replaying it would pin one transient
        timeout's output forever."""
        if result.status != "ok":
            return False
        budget = ExpansionBudgetError.__name__
        return not any(
            d.get("category") == budget for d in result.diagnostics
        )

    def _expand_pending(
        self, pending: list[tuple[int, str, str, str]]
    ) -> list[tuple[int, str, dict]]:
        """Expand cache misses, in-process or on a process pool."""
        if not pending:
            return []
        tasks = [(name, source) for _, name, source, _ in pending]
        if self.jobs == 1 or len(pending) == 1:
            records = [_build_one(task, self._config) for task in tasks]
        else:
            records = self._expand_on_pool(tasks)
        return [
            (index, key, record)
            for (index, _, _, key), record in zip(pending, records)
        ]

    def _expand_on_pool(
        self, tasks: list[tuple[str, str]]
    ) -> list[dict]:
        """Run ``tasks`` on a process pool, surviving worker death.

        A worker that dies (signal, ``os._exit``, OOM kill) breaks
        the whole :class:`ProcessPoolExecutor`: every unfinished
        future raises :class:`BrokenProcessPool`, including tasks
        that never ran.  Rather than abort the batch, each such task
        is re-run — in its *own* single-worker pool, so the one
        poisonous file among the innocent bystanders can only kill
        itself — up to ``self.retries`` times with a short backoff.
        Tasks that outlive a worker on every attempt come back as
        ``status: "poisoned"`` records and the batch completes.
        """
        records: list[dict | None] = [None] * len(tasks)
        crashed: list[int] = []
        pool = ProcessPoolExecutor(
            max_workers=min(self.jobs, len(tasks)),
            initializer=_worker_init,
            initargs=(self._config,),
        )
        try:
            futures = [pool.submit(_build_one, task) for task in tasks]
            for i, future in enumerate(futures):
                try:
                    records[i] = future.result()
                except BrokenProcessPool:
                    crashed.append(i)
                except Exception as exc:
                    # e.g. an unpicklable result — an error for this
                    # file, not a reason to abort the batch.
                    records[i] = self._infra_error(tasks[i][0], exc)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        if crashed:
            self.worker_restarts += 1
            for i in crashed:
                records[i] = self._retry_after_crash(tasks[i])
        return [r for r in records if r is not None]

    def _retry_after_crash(self, task: tuple[str, str]) -> dict:
        """Re-run one task whose worker died, in isolation."""
        path = task[0]
        attempts = 0
        for attempt in range(1, self.retries + 1):
            attempts = attempt
            time.sleep(_RESTART_BACKOFF_S * attempt)
            with ProcessPoolExecutor(
                max_workers=1,
                initializer=_worker_init,
                initargs=(self._config,),
            ) as solo:
                try:
                    return solo.submit(_build_one, task).result()
                except BrokenProcessPool:
                    self.worker_restarts += 1
                except Exception as exc:
                    return self._infra_error(path, exc)
        return {
            "path": path,
            "status": "poisoned",
            "error": (
                "build worker process died "
                f"{attempts + 1} time(s) expanding this file; "
                "quarantined so the batch could finish"
            ),
            "error_type": BrokenProcessPool.__name__,
        }

    @staticmethod
    def _infra_error(path: str, exc: BaseException) -> dict:
        return {
            "path": path,
            "status": "error",
            "error": f"{type(exc).__name__}: {exc}",
            "error_type": type(exc).__name__,
        }


def write_outputs(report: BuildReport, out_dir: Path | str) -> list[Path]:
    """Write each successful result's expanded C under ``out_dir``;
    returns the written paths.

    Outputs land flat as ``<stem>.c`` when every stem is distinct.
    When two inputs share a stem (``a/util.c`` and ``b/util.c``, easy
    to get from a recursive directory build), the inputs' directory
    structure below their deepest common ancestor is mirrored instead
    so nothing is silently overwritten; inputs that still collide
    (``util.c`` next to ``util.ms2``) raise :class:`ValueError`.
    """
    root = Path(out_dir)
    root.mkdir(parents=True, exist_ok=True)
    ok_results = [r for r in report.results if r.status == "ok"]
    targets = [Path(Path(r.path).stem + ".c") for r in ok_results]
    if len(set(targets)) != len(targets):
        try:
            base = os.path.commonpath(
                [Path(r.path).parent for r in ok_results]
            )
            targets = [
                Path(r.path).parent.relative_to(base)
                / (Path(r.path).stem + ".c")
                for r in ok_results
            ]
        except ValueError:  # mixed absolute/relative inputs
            pass
        if len(set(targets)) != len(targets):
            dupes = sorted(
                {str(t) for t in targets if targets.count(t) > 1}
            )
            raise ValueError(
                "output filename collision under "
                f"{root}: {', '.join(dupes)}"
            )
    written = []
    for result, rel in zip(ok_results, targets):
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(result.output)
        written.append(target)
    return written
