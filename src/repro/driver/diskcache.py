"""The persistent, content-addressed build cache.

Where the in-memory :class:`~repro.macros.cache.ExpansionCache`
memoizes single macro expansions *within* a process, this cache
memoizes whole translation-unit builds *across* processes and runs:
the expanded C text of a file, plus its diagnostics, stats and trace
spans, keyed by the triple

    (source hash, macro-definition hash, options hash)

so an incremental rebuild skips every file whose inputs are
unchanged.  Entries live as snapshot files under a cache root
(``.ms2-cache/`` by default), two-level fanned-out by key prefix::

    .ms2-cache/
        ab/
            ab3f...9c.ms2c      # MS2C\\x01 header + JSON payload
            ab3f...9c.lock      # per-entry advisory lock

Payloads are JSON, not pickle: the cache directory is shared between
invocations (and potentially users), and loading a snapshot must
never be able to execute code — a hostile ``.ms2c`` file can at worst
read as corrupt.  Robustness mirrors the in-memory path exactly:

- snapshots reuse the versioned ``MS2C`` + format-byte header from
  :mod:`repro.macros.cache`; a version bump invalidates old entries
  wholesale (they read as *stale* and are evicted);
- **corrupt or truncated** snapshots — JSON decode explosions, wrong
  payload shape, key mismatch — are evicted and counted, and the
  caller falls back to re-expansion; corruption can never surface as
  an exception from a build;
- writes go to a temp file in the same directory followed by
  ``os.replace``, so readers only ever observe complete snapshots,
  and a per-entry :class:`~repro.driver.locks.FileLock` serializes
  writers racing on one entry;
- a cache directory deleted mid-build is recreated on the next
  store; a store that still cannot land is dropped silently (the
  build result is unaffected — only warm-cache reuse is lost).
"""

from __future__ import annotations

import io
import json
import os
import tempfile
from pathlib import Path
from time import perf_counter
from typing import Any

from repro import faults
from repro.driver.locks import FileLock, LockTimeout
from repro.macros.cache import (
    CACHE_FORMAT_VERSION,
    frame_snapshot,
    unframe_snapshot,
)

__all__ = ["PersistentCache", "DEFAULT_CACHE_DIR"]

#: Default cache root, relative to the build's working directory.
DEFAULT_CACHE_DIR = ".ms2-cache"

#: Snapshot filename extension.
_SNAPSHOT_SUFFIX = ".ms2c"

#: Keys every well-formed snapshot payload must carry.
_REQUIRED_KEYS = frozenset({"key", "output"})

#: Bytes of sha256(body) stored between header and body.  RAM blobs
#: don't need this, but disk rots: without it a flipped bit inside a
#: JSON string could decode "successfully" into wrong output.
_DIGEST_LEN = 8


def _digest(body: bytes) -> bytes:
    import hashlib

    return hashlib.sha256(body).digest()[:_DIGEST_LEN]


class PersistentCache:
    """Snapshot files for whole-file build results under one root.

    The payloads stored are plain JSON-able dicts (text, rendered
    diagnostics, counters) — nothing that depends on importability of
    pipeline internals at load time beyond the stdlib.
    """

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        #: Snapshots served this session.
        self.hits = 0
        #: Lookups that found no usable snapshot.
        self.misses = 0
        #: Snapshots rejected as corrupt, truncated or stale (each
        #: was evicted; the caller re-expanded).
        self.failures = 0
        #: Snapshot files actually removed from disk (integrity
        #: rejections plus caller-driven :meth:`discard` calls).
        self.evictions = 0
        #: Wall milliseconds spent in :meth:`load` / :meth:`store`
        #: (the hit/miss/latency telemetry the remote-cache backend
        #: will need — see ROADMAP).
        self.load_ms = 0.0
        self.store_ms = 0.0
        #: Number of load/store calls behind those totals.
        self.loads = 0
        self.stores = 0

    # ------------------------------------------------------------------

    def path_for(self, key: str) -> Path:
        """The snapshot path for ``key`` (two-level fan-out)."""
        return self.root / key[:2] / f"{key}{_SNAPSHOT_SUFFIX}"

    def _lock_for(self, key: str) -> FileLock:
        return FileLock(
            self.path_for(key).with_suffix(".lock"), timeout=10.0
        )

    # ------------------------------------------------------------------

    def load(self, key: str) -> dict[str, Any] | None:
        """The stored payload for ``key``, or None on miss.

        Every way a snapshot can be unusable — absent, truncated,
        version-stamped by another format, undecodable, wrong shape,
        keyed for different inputs — funnels into the same answer:
        evict (when present), count, return None, caller re-expands.
        """
        start = perf_counter()
        try:
            path = self.path_for(key)
            try:
                blob = path.read_bytes()
                if faults.ACTIVE is not None:
                    # io_error faults land in this except and read as
                    # a miss; corrupt faults mangle the blob and fall
                    # through to the integrity check below.
                    blob = faults.ACTIVE.hit(
                        "cache.load", blob, context=key
                    )
            except OSError:
                self.misses += 1
                return None
            payload = self._decode(blob, key)
            if payload is None:
                self._evict(key)
                self.failures += 1
                self.misses += 1
                return None
            self.hits += 1
            return payload
        finally:
            self.loads += 1
            self.load_ms += (perf_counter() - start) * 1000.0

    @staticmethod
    def _decode(blob: bytes, key: str) -> dict[str, Any] | None:
        framed = unframe_snapshot(blob)
        if framed is None:
            return None  # stale version stamp or garbled header
        if len(framed) < _DIGEST_LEN:
            return None  # truncated before the integrity digest
        stamp, body = framed[:_DIGEST_LEN], framed[_DIGEST_LEN:]
        if stamp != _digest(body):
            return None  # body corrupted on disk
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return None  # corrupt bytes / not JSON — unusable
        if not isinstance(payload, dict):
            return None
        if not _REQUIRED_KEYS <= payload.keys():
            return None
        if payload["key"] != key:
            return None  # renamed/copied snapshot file
        if not isinstance(payload["output"], str):
            return None
        return payload

    def store(self, key: str, payload: dict[str, Any]) -> bool:
        """Persist ``payload`` under ``key``; True when it landed.

        The write is atomic (temp file + ``os.replace``) and guarded
        by the per-entry lock.  Failure to persist — cache directory
        deleted mid-build, lock wedged, disk full — is absorbed: the
        build keeps its in-memory result and only loses reuse.
        """
        start = perf_counter()
        try:
            payload = dict(payload)
            payload["key"] = key
            payload["format"] = CACHE_FORMAT_VERSION
            try:
                body = json.dumps(
                    payload, sort_keys=True, separators=(",", ":")
                ).encode("utf-8")
            except (TypeError, ValueError):
                return False  # payload not JSON-able
            blob = frame_snapshot(_digest(body) + body)
            try:
                if faults.ACTIVE is not None:
                    blob = faults.ACTIVE.hit(
                        "cache.store", blob, context=key
                    )
                with self._lock_for(key):
                    return self._write_atomic(self.path_for(key), blob)
            except (LockTimeout, OSError):
                return False
        finally:
            self.stores += 1
            self.store_ms += (perf_counter() - start) * 1000.0

    @staticmethod
    def _write_atomic(path: Path, blob: bytes) -> bool:
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                prefix=path.stem, suffix=".tmp", dir=path.parent
            )
        except OSError:
            return False
        try:
            with io.FileIO(fd, "w") as tmp:
                tmp.write(blob)
            os.replace(tmp_name, path)
            return True
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            return False

    def discard(self, key: str) -> None:
        """Evict ``key`` after the *caller* found its (structurally
        valid) payload semantically unusable — e.g. the stored path
        disagrees with the file being built.  Re-books the preceding
        :meth:`load`'s hit as a miss and counts a failure."""
        self._evict(key)
        self.hits = max(0, self.hits - 1)
        self.misses += 1
        self.failures += 1

    def _evict(self, key: str) -> None:
        try:
            self.path_for(key).unlink()
        except OSError:
            return
        self.evictions += 1

    # ------------------------------------------------------------------

    def entries(self) -> list[Path]:
        """Every snapshot file currently under the root."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob(f"*/*{_SNAPSHOT_SUFFIX}"))

    def clear(self) -> int:
        """Delete every snapshot; returns the number removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def describe(self) -> str:
        """Short label for reports: the cache root."""
        return str(self.root)

    def close(self) -> None:
        """Nothing to release — entries live as closed files.  Part
        of the :class:`~repro.driver.cachebackend.CacheBackend`
        protocol, where the tiered backend uses it to flush its
        write-behind queue."""

    def counters(self) -> dict[str, float]:
        """This session's counters — the payload surfaced by
        :class:`~repro.driver.report.BuildReport`, the server
        ``stats`` op, and the ``/metrics`` disk-cache series."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "failures": self.failures,
            "evictions": self.evictions,
            "loads": self.loads,
            "stores": self.stores,
            "load_ms": round(self.load_ms, 3),
            "store_ms": round(self.store_ms, 3),
        }
