"""Parallel batch compilation with a persistent cross-run cache.

The paper's MS2 processed whole multi-file C programs one translation
unit at a time; this subsystem is the production-scale driver on top
of the same pipeline:

>>> from repro.driver import BuildSession, CacheConfig
>>> from repro import Ms2Options
>>> session = BuildSession(Ms2Options(), package_names=["loops"],
...                        jobs=4, cache=CacheConfig(
...                            local_dir=".ms2-cache",
...                            remote="tcp://build-host:7777"))
>>> report = session.build(["srcdir/"])          # doctest: +SKIP
>>> report.ok, report.files_from_cache           # doctest: +SKIP

- :mod:`repro.driver.scheduler` — the :class:`BuildSession` fan-out
  (process pool, shared macro context, per-file isolation);
- :mod:`repro.driver.cacheconfig` — the frozen :class:`CacheConfig`
  value every cache default derives from;
- :mod:`repro.driver.cachebackend` — the :class:`CacheBackend`
  protocol plus the remote (daemon-served) and tiered (read-through,
  write-behind) backends;
- :mod:`repro.driver.diskcache` — content-hash-keyed snapshot files
  that survive runs, with the in-memory cache's exact corruption
  fallback semantics;
- :mod:`repro.driver.locks` — the advisory file lock protecting
  compound cache operations from concurrent invocations;
- :mod:`repro.driver.report` — per-file results aggregated into one
  :class:`BuildReport` (``repro build --report json``).
"""

from repro.driver.cachebackend import (
    CacheBackend,
    RemoteCacheBackend,
    TieredBackend,
)
from repro.driver.cacheconfig import CacheConfig
from repro.driver.diskcache import DEFAULT_CACHE_DIR, PersistentCache
from repro.driver.locks import FileLock, LockTimeout
from repro.driver.report import BuildReport, FileResult
from repro.driver.scheduler import (
    BuildSession,
    resolve_inputs,
    write_outputs,
)

__all__ = [
    "BuildReport",
    "BuildSession",
    "CacheBackend",
    "CacheConfig",
    "DEFAULT_CACHE_DIR",
    "FileLock",
    "FileResult",
    "LockTimeout",
    "PersistentCache",
    "RemoteCacheBackend",
    "TieredBackend",
    "resolve_inputs",
    "write_outputs",
]
