"""Parallel batch compilation with a persistent cross-run cache.

The paper's MS2 processed whole multi-file C programs one translation
unit at a time; this subsystem is the production-scale driver on top
of the same pipeline:

>>> from repro.driver import BuildSession
>>> from repro import Ms2Options
>>> session = BuildSession(Ms2Options(), package_names=["loops"],
...                        jobs=4, cache_dir=".ms2-cache")
>>> report = session.build(["srcdir/"])          # doctest: +SKIP
>>> report.ok, report.files_from_cache           # doctest: +SKIP

- :mod:`repro.driver.scheduler` — the :class:`BuildSession` fan-out
  (process pool, shared macro context, per-file isolation);
- :mod:`repro.driver.diskcache` — content-hash-keyed snapshot files
  that survive runs, with the in-memory cache's exact corruption
  fallback semantics;
- :mod:`repro.driver.locks` — the advisory file lock protecting
  compound cache operations from concurrent invocations;
- :mod:`repro.driver.report` — per-file results aggregated into one
  :class:`BuildReport` (``repro build --report json``).
"""

from repro.driver.diskcache import DEFAULT_CACHE_DIR, PersistentCache
from repro.driver.locks import FileLock, LockTimeout
from repro.driver.report import BuildReport, FileResult
from repro.driver.scheduler import (
    BuildSession,
    resolve_inputs,
    write_outputs,
)

__all__ = [
    "BuildReport",
    "BuildSession",
    "DEFAULT_CACHE_DIR",
    "FileLock",
    "FileResult",
    "LockTimeout",
    "PersistentCache",
    "resolve_inputs",
    "write_outputs",
]
