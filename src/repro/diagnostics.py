"""Multi-error diagnostics and expansion resource budgets.

The paper's "syntactic safety" story is about *what* errors say; this
module is about *how many* the pipeline can report before giving up,
and about bounding how much work a runaway meta-program may consume.

:class:`DiagnosticSink` collects :class:`Diagnostic` records during a
recovery-mode run (``MacroProcessor.expand_program(..., recover=True)``
or ``repro expand --recover``).  Each diagnostic preserves the full
provenance-aware rendering of the :class:`~repro.errors.Ms2Error` it
was born from — including the "expanded from Macro at file:line:col"
backtrace — so recovered runs lose no information relative to the
fail-fast default.  A ``max_errors`` cap bounds cascades: once reached
the sink records a closing note and the parser stops recovering.

:class:`ExpansionBudget` bounds total expansions, produced AST nodes
and wall-clock time, alongside the expander's fixed depth cap.
Exhaustion raises :class:`~repro.errors.ExpansionBudgetError` — an
ordinary ``Ms2Error``, so in recovery mode it degrades to a diagnostic
plus a poisoned node rather than aborting the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

from repro.errors import ExpansionBudgetError, Ms2Error, SourceLocation

__all__ = [
    "ERROR",
    "WARNING",
    "NOTE",
    "Diagnostic",
    "DiagnosticSink",
    "ExpansionBudget",
    "DEFAULT_MAX_ERRORS",
]

#: Severity levels, ordered from most to least severe.
ERROR = "error"
WARNING = "warning"
NOTE = "note"

#: Default cap on ``error``-severity diagnostics per recovered run.
DEFAULT_MAX_ERRORS = 20


def _parse_location(text) -> SourceLocation | None:
    """Parse a ``file:line:col`` rendering back into a
    :class:`SourceLocation` (None when absent or unparseable —
    filenames may contain colons, so split from the right)."""
    if not isinstance(text, str):
        return None
    filename, _, rest = text.rpartition(":")
    filename, _, line = filename.rpartition(":")
    try:
        return SourceLocation(
            line=int(line), column=int(rest), filename=filename or "<string>"
        )
    except ValueError:
        return None


@dataclass(slots=True)
class Diagnostic:
    """One reported problem.

    ``rendered`` is the full user-facing text (location prefix plus
    any expansion backtrace); ``message`` is the bare message and
    ``location``/``category`` support programmatic filtering.
    """

    severity: str
    message: str
    location: SourceLocation | None = None
    #: The originating error class name (``"ParseError"``, ...), or a
    #: tool-chosen tag for synthesized notes.
    category: str = ""
    rendered: str = ""

    def __post_init__(self) -> None:
        if not self.rendered:
            prefix = f"{self.location}: " if self.location else ""
            self.rendered = f"{prefix}{self.message}"

    @classmethod
    def from_error(cls, exc: Ms2Error, severity: str = ERROR) -> "Diagnostic":
        """Wrap an :class:`Ms2Error`, preserving its provenance-aware
        rendering (``str(exc)`` is the multi-frame backtrace)."""
        return cls(
            severity=severity,
            message=exc.message,
            location=exc.location,
            category=type(exc).__name__,
            rendered=str(exc),
        )

    def render(self) -> str:
        return f"{self.severity}: {self.rendered}"

    def to_json(self) -> dict:
        """The wire form (server responses, batch-driver reports,
        persistent snapshots).  Locations flatten to their
        ``file:line:col`` rendering — the round trip preserves
        everything a consumer needs; expansion backtraces live in
        ``rendered``."""
        return {
            "severity": self.severity,
            "message": self.message,
            "location": str(self.location) if self.location else None,
            "category": self.category,
            "rendered": self.rendered,
        }

    #: Legacy spelling of :meth:`to_json`.
    as_dict = to_json

    @classmethod
    def from_json(cls, data: dict) -> "Diagnostic":
        """Rebuild from a :meth:`to_json` payload (cache replay and
        the client side of the server protocol).  The location string
        parses back into a plain :class:`SourceLocation` (character
        offset and backtrace frames are not wire data)."""
        return cls(
            severity=data.get("severity", ERROR),
            message=data.get("message", ""),
            location=_parse_location(data.get("location")),
            category=data.get("category", ""),
            rendered=data.get("rendered", ""),
        )

    #: Legacy spelling of :meth:`from_json`.
    from_dict = from_json


class DiagnosticSink:
    """Collects diagnostics during a recovery-mode run.

    ``emit``/``emit_error`` return ``True`` while the consumer should
    keep recovering and ``False`` once the error cap is reached; the
    cap-hit itself is recorded as a closing ``note`` diagnostic.
    """

    def __init__(self, max_errors: int = DEFAULT_MAX_ERRORS) -> None:
        self.max_errors = max(1, max_errors)
        self.diagnostics: list[Diagnostic] = []
        self.error_count = 0
        self._gave_up = False

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    @property
    def saturated(self) -> bool:
        """True once the error cap was hit (recovery should stop)."""
        return self._gave_up

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == ERROR]

    def emit(self, diagnostic: Diagnostic) -> bool:
        """Record one diagnostic; returns False once at the cap."""
        if diagnostic.severity != ERROR:
            self.diagnostics.append(diagnostic)
            return not self._gave_up
        if self.error_count >= self.max_errors:
            self._give_up()
            return False
        self.error_count += 1
        self.diagnostics.append(diagnostic)
        if self.error_count >= self.max_errors:
            self._give_up()
            return False
        return True

    def emit_error(self, exc: Ms2Error) -> bool:
        """Record an :class:`Ms2Error` at ``error`` severity."""
        return self.emit(Diagnostic.from_error(exc))

    def _give_up(self) -> None:
        if self._gave_up:
            return
        self._gave_up = True
        message = (
            f"too many errors ({self.max_errors}); giving up on recovery"
        )
        self.diagnostics.append(
            Diagnostic(NOTE, message, None, "DiagnosticSink", message)
        )

    def render(self) -> str:
        """All diagnostics, one rendered entry per line group."""
        return "\n".join(d.render() for d in self.diagnostics)


@dataclass(slots=True)
class ExpansionBudget:
    """Resource bounds for one expansion run.

    All limits are optional; an unset limit is unbounded.  The
    wall-clock deadline starts counting at the first charge, so a
    budget can be constructed ahead of time.  Once any limit trips,
    ``exhausted`` latches and every further charge raises again —
    callers in recovery mode turn each raise into one poisoned node
    without restarting the runaway work.
    """

    #: Cap on total macro expansions (cache replays included).
    max_expansions: int | None = None
    #: Cap on total AST nodes produced by expansions.
    max_output_nodes: int | None = None
    #: Wall-clock allowance in seconds, measured from the first charge.
    deadline_s: float | None = None

    expansions_used: int = field(default=0, init=False)
    output_nodes_used: int = field(default=0, init=False)
    exhausted: str | None = field(default=None, init=False)
    _started_at: float | None = field(default=None, init=False)

    def _trip(self, reason: str, loc: SourceLocation | None) -> None:
        self.exhausted = reason
        raise ExpansionBudgetError(f"expansion budget exhausted: {reason}", loc)

    def charge_expansion(self, loc: SourceLocation | None = None) -> None:
        """Account for one macro expansion; checks the deadline too."""
        if self.exhausted is not None:
            raise ExpansionBudgetError(
                f"expansion budget exhausted: {self.exhausted}", loc
            )
        if self._started_at is None:
            self._started_at = perf_counter()
        elif (
            self.deadline_s is not None
            and perf_counter() - self._started_at > self.deadline_s
        ):
            self._trip(
                f"wall-clock deadline of {self.deadline_s:g}s passed", loc
            )
        self.expansions_used += 1
        if (
            self.max_expansions is not None
            and self.expansions_used > self.max_expansions
        ):
            self._trip(
                f"more than {self.max_expansions} macro expansions", loc
            )

    def charge_output(self, result, loc: SourceLocation | None = None) -> None:
        """Account for the AST produced by one expansion."""
        if self.max_output_nodes is None:
            return
        from repro.cast.base import Node, walk

        produced = 0
        items = result if isinstance(result, list) else [result]
        for item in items:
            if isinstance(item, Node):
                produced += sum(1 for _ in walk(item))
        self.output_nodes_used += produced
        if self.output_nodes_used > self.max_output_nodes:
            self._trip(
                f"more than {self.max_output_nodes} output AST nodes", loc
            )
