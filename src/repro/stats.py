"""Hit/miss counters for the fast paths of the pipeline.

One :class:`PipelineStats` instance is threaded through a
:class:`~repro.engine.MacroProcessor`'s scanner, parser dispatch,
expander and expansion cache, so a single object answers "what did
the fast paths actually do" for a whole session.  The CLI exposes it
via ``python -m repro expand --stats``.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class PipelineStats:
    """Counters for one macro-processing session."""

    # -- expansion cache ------------------------------------------------
    #: Invocations answered by replaying a cached expansion.
    cache_hits: int = 0
    #: Cacheable invocations that had to run the meta-program.
    cache_misses: int = 0
    #: Invocations of macros the purity analysis refused to cache.
    cache_uncacheable: int = 0

    # -- compiled dispatch ---------------------------------------------
    #: Macro-keyword probes answered by the dispatch index.
    dispatch_hits: int = 0
    #: Identifier probes that were not macro keywords.
    dispatch_misses: int = 0
    #: Invocations parsed by a compiled per-macro routine.
    compiled_parses: int = 0
    #: Invocations parsed by the interpreted pattern engine.
    interpreted_parses: int = 0

    # -- expander -------------------------------------------------------
    #: Total invocations expanded (cache hits included).
    expansions: int = 0

    # -- scanner --------------------------------------------------------
    #: Tokens produced by the master-regex fast path.
    tokens_scanned: int = 0
    #: Identifier/punctuator texts answered from the intern table.
    tokens_interned: int = 0

    def cache_hit_rate(self) -> float:
        """Hits over cacheable lookups (0.0 when nothing was cacheable)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def as_dict(self) -> dict[str, int | float]:
        return {
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_uncacheable": self.cache_uncacheable,
            "cache_hit_rate": round(self.cache_hit_rate(), 4),
            "dispatch_hits": self.dispatch_hits,
            "dispatch_misses": self.dispatch_misses,
            "compiled_parses": self.compiled_parses,
            "interpreted_parses": self.interpreted_parses,
            "expansions": self.expansions,
            "tokens_scanned": self.tokens_scanned,
            "tokens_interned": self.tokens_interned,
        }

    def summary(self) -> str:
        """Multi-line human-readable rendering (the ``--stats`` output)."""
        lines = ["-- pipeline stats --"]
        for key, value in self.as_dict().items():
            lines.append(f"{key:22} {value}")
        return "\n".join(lines)
