"""Counters and phase aggregates for the pipeline's observability layer.

One :class:`PipelineStats` instance is threaded through a
:class:`~repro.engine.MacroProcessor`'s scanner, parser dispatch,
expander, hygiene renamer, meta-interpreter and expansion cache, so a
single object answers "what did the pipeline actually do" for a whole
session.  The CLI exposes it via ``python -m repro expand --stats``
(text), ``--stats-json`` (machine-readable) and ``--profile``
(per-phase wall time, populated when the
:class:`~repro.trace.PhaseProfiler` is enabled).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class PipelineStats:
    """Counters for one macro-processing session."""

    # -- expansion cache ------------------------------------------------
    #: Invocations answered by replaying a cached expansion.
    cache_hits: int = 0
    #: Cacheable invocations that had to run the meta-program.
    cache_misses: int = 0
    #: Invocations of macros the purity analysis refused to cache.
    cache_uncacheable: int = 0

    # -- compiled dispatch ---------------------------------------------
    #: Macro-keyword probes answered by the dispatch index.
    dispatch_hits: int = 0
    #: Identifier probes that were not macro keywords.
    dispatch_misses: int = 0
    #: Invocations parsed by a compiled per-macro routine.
    compiled_parses: int = 0
    #: Invocations parsed by the interpreted pattern engine.
    interpreted_parses: int = 0

    # -- body compiler (repro.macros.codegen) --------------------------
    #: Macro bodies lowered to Python (once per definition).
    bodies_compiled: int = 0
    #: Backquote templates lowered inside those bodies.
    templates_compiled: int = 0
    #: Macro bodies that fell back to the interpreter (one per
    #: definition; the construct that punted stays interpreted).
    compile_fallbacks: int = 0
    #: Wall milliseconds spent compiling bodies (successes and
    #: fallbacks both; paid once per definition, then amortized).
    compile_time_ms: float = 0.0

    # -- expander -------------------------------------------------------
    #: Total invocations expanded (cache hits included).
    expansions: int = 0

    # -- recovery / robustness -----------------------------------------
    #: Syntax errors recovered via panic-mode resync (recover mode).
    parse_recoveries: int = 0
    #: Failing invocations degraded to poisoned nodes (recover mode).
    expansion_recoveries: int = 0
    #: Cache entries whose snapshot failed to replay (corrupt or
    #: stale blob); each fell back to re-running the meta-program.
    cache_replay_failures: int = 0

    # -- hygiene / meta builtins ---------------------------------------
    #: Template-declared locals renamed by the hygienic renamer.
    hygiene_renames: int = 0
    #: ``gensym`` calls (explicit in meta-programs, plus those issued
    #: by the hygienic renamer itself).
    gensym_calls: int = 0

    # -- scanner --------------------------------------------------------
    #: Tokens produced by the master-regex fast path.
    tokens_scanned: int = 0
    #: Identifier/punctuator texts answered from the intern table.
    tokens_interned: int = 0

    # -- phase profiler (populated only under ``profile=True``) --------
    #: Cumulative wall seconds per pipeline phase.  Phases nest, so
    #: totals overlap (``meta-eval`` contains ``template-fill``).
    phase_seconds: dict = field(default_factory=dict)
    #: Number of timed entries per phase.
    phase_calls: dict = field(default_factory=dict)

    def merge(self, other: "PipelineStats") -> None:
        """Fold another session's counters into this one (the batch
        driver aggregates every worker's per-file stats this way).
        Phase timings sum; derived rates are recomputed on demand."""
        for stats_field in self.__dataclass_fields__:
            value = getattr(other, stats_field)
            if isinstance(value, (int, float)):
                setattr(
                    self, stats_field, getattr(self, stats_field) + value
                )
        for name, seconds in other.phase_seconds.items():
            self.phase_seconds[name] = (
                self.phase_seconds.get(name, 0.0) + seconds
            )
        for name, calls in other.phase_calls.items():
            self.phase_calls[name] = self.phase_calls.get(name, 0) + calls

    @classmethod
    def from_json(cls, data: dict) -> "PipelineStats":
        """Rebuild counters from a :meth:`to_json` payload; unknown
        and derived keys (``cache_hit_rate``) are ignored, so payloads
        written by other pipeline versions still load."""
        stats = cls()
        for stats_field in stats.__dataclass_fields__:
            value = data.get(stats_field)
            current = getattr(stats, stats_field)
            if isinstance(value, int) and isinstance(current, int):
                setattr(stats, stats_field, value)
            elif isinstance(value, (int, float)) and isinstance(
                current, float
            ):
                setattr(stats, stats_field, float(value))
        for name, entry in (data.get("phases") or {}).items():
            stats.phase_seconds[name] = entry.get("ms", 0.0) / 1000.0
            stats.phase_calls[name] = entry.get("calls", 0)
        return stats

    #: Legacy spelling of :meth:`from_json`.
    from_dict = from_json

    def cache_hit_rate(self) -> float:
        """Hits over cacheable lookups (0.0 when nothing was cacheable)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def to_json(self) -> dict:
        """Machine-readable snapshot (the ``--stats-json`` payload
        and the server wire form).

        The ``phases`` sub-dict appears only when the phase profiler
        actually recorded timings (``profile=True`` sessions).
        """
        out = {
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_uncacheable": self.cache_uncacheable,
            "cache_hit_rate": round(self.cache_hit_rate(), 4),
            "dispatch_hits": self.dispatch_hits,
            "dispatch_misses": self.dispatch_misses,
            "compiled_parses": self.compiled_parses,
            "interpreted_parses": self.interpreted_parses,
            "bodies_compiled": self.bodies_compiled,
            "templates_compiled": self.templates_compiled,
            "compile_fallbacks": self.compile_fallbacks,
            "compile_time_ms": round(self.compile_time_ms, 3),
            "expansions": self.expansions,
            "parse_recoveries": self.parse_recoveries,
            "expansion_recoveries": self.expansion_recoveries,
            "cache_replay_failures": self.cache_replay_failures,
            "hygiene_renames": self.hygiene_renames,
            "gensym_calls": self.gensym_calls,
            "tokens_scanned": self.tokens_scanned,
            "tokens_interned": self.tokens_interned,
        }
        if self.phase_seconds:
            out["phases"] = {
                name: {
                    "calls": self.phase_calls.get(name, 0),
                    "ms": round(self.phase_seconds[name] * 1000, 3),
                }
                for name in sorted(self.phase_seconds)
            }
        return out

    #: Legacy spelling of :meth:`to_json`.
    as_dict = to_json

    def summary(self) -> str:
        """Multi-line human-readable rendering (the ``--stats`` output)."""
        lines = ["-- pipeline stats --"]
        for key, value in self.as_dict().items():
            if isinstance(value, dict):
                continue  # phases get their own table (--profile)
            lines.append(f"{key:22} {value}")
        return "\n".join(lines)

    def profile_summary(self) -> str:
        """Per-phase wall-time table (the ``--profile`` output).

        Phase timers nest, so the column does not sum to end-to-end
        wall time — each row answers "how long did the pipeline spend
        inside this phase".
        """
        lines = ["-- phase profile (phases nest; totals overlap) --"]
        if not self.phase_seconds:
            lines.append("(no phases recorded; run with profiling enabled)")
            return "\n".join(lines)
        header = f"{'phase':18} {'calls':>8} {'total_ms':>10} {'avg_us':>10}"
        lines.append(header)
        for name, seconds in sorted(
            self.phase_seconds.items(), key=lambda kv: -kv[1]
        ):
            calls = self.phase_calls.get(name, 0)
            avg_us = (seconds / calls * 1e6) if calls else 0.0
            lines.append(
                f"{name:18} {calls:>8} {seconds * 1000:>10.2f} "
                f"{avg_us:>10.1f}"
            )
        return "\n".join(lines)
