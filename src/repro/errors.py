"""Shared error types and source locations for the MS2 reproduction.

Every user-visible failure raised by the library derives from
:class:`Ms2Error` and carries a :class:`SourceLocation` when one is
available, so that tooling built on top of the library can point at the
offending source text, exactly as the paper requires for "syntactic
safety" (users must only ever see errors in terms of code they wrote).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class SourceLocation:
    """A position within a source buffer.

    ``line`` and ``column`` are 1-based; ``offset`` is the 0-based
    character offset into the buffer.  ``filename`` defaults to
    ``"<string>"`` for programs supplied as in-memory strings.
    """

    line: int = 1
    column: int = 1
    offset: int = 0
    filename: str = "<string>"

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


#: Location used for synthesized nodes (gensym identifiers, macro output).
SYNTHETIC = SourceLocation(line=0, column=0, offset=-1, filename="<synthetic>")


class Ms2Error(Exception):
    """Base class for all errors raised by this library."""

    def __init__(self, message: str, location: SourceLocation | None = None):
        self.message = message
        self.location = location
        super().__init__(self._format())

    def _format(self) -> str:
        """Render the error for the user.

        Locations carrying an expansion backtrace (see
        :mod:`repro.provenance`; duck-typed here via the
        ``expanded_from`` attribute so this module stays import-free)
        render as a multi-frame "expanded from Macro at file:line:col"
        trace ending at user source — never as the bare
        ``<synthetic>`` position.
        """
        loc = self.location
        if loc is None:
            return self.message
        frames = getattr(loc, "expanded_from", ())
        if not frames:
            return f"{loc}: {self.message}"
        primary: SourceLocation = loc
        if loc.filename == SYNTHETIC.filename:
            # Synthesized node with no written-at position: lead with
            # the innermost invocation site instead.
            primary = frames[0].location
        lines = [f"{primary}: {self.message}"]
        for frame in frames:
            lines.append(
                f"  expanded from {frame.macro} at {frame.location}"
            )
        return "\n".join(lines)


class LexError(Ms2Error):
    """Raised when the scanner encounters malformed input."""


class ParseError(Ms2Error):
    """Raised for syntax errors in base-language or meta-language code."""


class MacroSyntaxError(ParseError):
    """Raised for malformed macro definitions (headers, patterns)."""


class PatternLookaheadError(MacroSyntaxError):
    """Raised when a macro pattern cannot be parsed with one-token lookahead.

    The paper requires that "detecting the end of a repetition or the
    presence of an optional element require only one token lookahead"
    and that the pattern parser "report an error in the specification
    of a pattern" otherwise.
    """


class MacroTypeError(Ms2Error):
    """Raised by the definition-time AST type checker.

    This is the static guarantee at the heart of the paper: macros
    that would build syntactically invalid fragments are rejected when
    they are *defined*, not when they are used.
    """


class ExpansionError(Ms2Error):
    """Raised when running a macro body fails at expansion time."""


class MetaInterpError(ExpansionError):
    """Raised by the embedded meta-language interpreter."""


class ExpansionBudgetError(ExpansionError):
    """Raised when expansion exhausts a configured resource budget.

    Budgets (:class:`repro.diagnostics.ExpansionBudget`) bound the
    total number of expansions, the number of AST nodes produced, and
    wall-clock time.  Exhaustion is an ordinary :class:`Ms2Error`: in
    recovery mode it becomes a diagnostic, never a crash.
    """


class ResourceLimitError(Ms2Error):
    """Raised when the host runtime's own limits are hit.

    Wraps conditions like Python's :class:`RecursionError` during a
    pathologically deep parse, so callers only ever see
    :class:`Ms2Error` subclasses escape the pipeline.
    """
