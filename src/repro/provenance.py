"""Expansion provenance: where macro-generated code came from.

The paper's "syntactic safety" requirement is that users only ever see
errors in terms of code they wrote.  Before this module, every node a
macro synthesized carried the bare ``SYNTHETIC`` location, so a failure
inside generated code pointed at ``<synthetic>:0:0`` with no record of
which invocation produced it.

Provenance fixes that by enriching locations instead of nodes: an
:class:`ExpandedLocation` is a :class:`~repro.errors.SourceLocation`
(the position where the text of the node was *written* — a template
line in a macro package, or the synthetic origin) plus an *expansion
backtrace*: the chain of :class:`ExpansionSite` invocation frames that
produced the node, innermost first.  The last frame is always user
source.

The chain composes through locations, not through any global stack:
when macro ``Outer``'s template contains an invocation of ``Inner``,
the ``Inner`` invocation node is first re-stamped with ``Outer``'s
chain, so when the expander reaches it, :func:`expansion_chain`
prepends the ``Inner`` frame to the frames already riding on the
invocation's location.  Cache replays participate for free — the
replaying expander stamps the whole replayed tree with a fresh
:class:`ExpandedLocation` built from the *replay* site, so a cached
expansion reused at a second call site reports the second site in its
backtrace (see :mod:`repro.macros.cache`).

``repro.errors`` deliberately does not import this module; rendering
in :meth:`~repro.errors.Ms2Error._format` duck-types on the
``expanded_from`` attribute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.cast.base import Node, walk
from repro.errors import SourceLocation

__all__ = [
    "ExpandedLocation",
    "ExpansionSite",
    "expansion_chain",
    "format_expansion_backtrace",
    "provenance_of",
    "replay_location",
    "restamp_tree",
    "strip_expansion",
    "user_site",
]


@dataclass(frozen=True, slots=True)
class ExpansionSite:
    """One frame of an expansion backtrace: which macro was invoked,
    and where the invocation appeared."""

    macro: str
    location: SourceLocation

    def __str__(self) -> str:
        return f"expanded from {self.macro} at {self.location}"


@dataclass(frozen=True, slots=True)
class ExpandedLocation(SourceLocation):
    """A location inside macro-generated code.

    The base fields say where the node's text was written (template
    source, or the synthetic origin); ``expanded_from`` is the chain of
    invocation sites that produced it, innermost first.  The final
    frame is the user-source invocation.
    """

    expanded_from: tuple[ExpansionSite, ...] = ()


def provenance_of(loc: SourceLocation | None) -> tuple[ExpansionSite, ...]:
    """The expansion backtrace riding on ``loc`` (empty for plain
    locations and ``None``)."""
    return getattr(loc, "expanded_from", ())


def strip_expansion(loc: SourceLocation) -> SourceLocation:
    """``loc`` without its backtrace (a plain :class:`SourceLocation`)."""
    if type(loc) is SourceLocation:
        return loc
    return SourceLocation(loc.line, loc.column, loc.offset, loc.filename)


def expansion_chain(
    macro: str, invocation_loc: SourceLocation
) -> tuple[ExpansionSite, ...]:
    """The backtrace for code produced by invoking ``macro`` at
    ``invocation_loc``.

    The invocation site itself becomes the innermost frame; any frames
    already riding on the invocation's location (because the invocation
    node was itself macro-generated) follow, so nesting composes
    without any global state.
    """
    site = ExpansionSite(macro, strip_expansion(invocation_loc))
    return (site,) + provenance_of(invocation_loc)


def replay_location(
    invocation_loc: SourceLocation, chain: tuple[ExpansionSite, ...]
) -> ExpandedLocation:
    """The location stamped over every node of a cache replay: the
    replaying invocation's position, carrying the replay-site chain."""
    base = strip_expansion(invocation_loc)
    return ExpandedLocation(
        base.line, base.column, base.offset, base.filename, chain
    )


def user_site(loc: SourceLocation | None) -> SourceLocation | None:
    """The outermost (user-source) invocation site for ``loc``, or
    ``None`` when the location carries no backtrace."""
    frames = provenance_of(loc)
    return frames[-1].location if frames else None


def format_expansion_backtrace(
    frames: tuple[ExpansionSite, ...], indent: str = "  "
) -> str:
    """Render ``frames`` as the multi-line backtrace suffix used by
    :meth:`~repro.errors.Ms2Error._format`."""
    return "\n".join(f"{indent}{frame}" for frame in frames)


# ---------------------------------------------------------------------------
# Stamping freshly expanded trees
# ---------------------------------------------------------------------------


def restamp_tree(
    result: Node | list[Any],
    chain: tuple[ExpansionSite, ...],
    mark: int | None,
) -> None:
    """Stamp ``chain`` onto every macro-origin node of a fresh
    expansion result (in place).

    A node is macro-origin when it carries this expansion's hygiene
    ``mark`` (template-built) or a synthetic location (constructed by
    meta builtins such as ``gensym``/``symbolconc``).  Nodes spliced in
    from the actual parameters keep their user locations untouched, and
    nodes that already carry an :class:`ExpandedLocation` (results of
    inner expansions) keep their longer, more precise chain.
    """
    memo: dict[SourceLocation, ExpandedLocation] = {}
    trees = result if isinstance(result, list) else [result]
    for tree in trees:
        if isinstance(tree, Node):
            _restamp(tree, chain, mark, memo)


def _restamp(
    root: Node,
    chain: tuple[ExpansionSite, ...],
    mark: int | None,
    memo: dict[SourceLocation, ExpandedLocation],
) -> None:
    for item in walk(root):
        loc = item.loc
        if type(loc) is ExpandedLocation:
            continue
        if item.mark != mark and loc.filename != "<synthetic>":
            continue
        stamped = memo.get(loc)
        if stamped is None:
            stamped = memo[loc] = ExpandedLocation(
                loc.line, loc.column, loc.offset, loc.filename, chain
            )
        item.loc = stamped
