"""Command-line interface: the macro processor as a C preprocessor.

Usage (also via ``python -m repro``)::

    python -m repro expand prog.c               # expand to stdout
    python -m repro expand -p exceptions prog.c # preload a package
    python -m repro expand --hygienic prog.c
    python -m repro expand --profile --annotate prog.c
    python -m repro trace -p loops prog.c       # expansion span tree
    python -m repro trace examples/quickstart.py
    python -m repro macros -p exceptions        # list macro keywords
    python -m repro figures                     # print Figures 2 and 3

``expand`` reads the named files in order (macro packages first, the
program last) and writes the expanded C of the *last* file to stdout,
mirroring the paper's model of meta-program files feeding program
files.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.engine import MacroProcessor
from repro.errors import Ms2Error

#: Names accepted by ``-p/--package``.
PACKAGE_NAMES = (
    "exceptions", "painting", "painting-protected", "dynbind",
    "enumio", "dispatch", "loops",
)


def _load_package(mp: MacroProcessor, name: str) -> None:
    from repro import packages

    if name == "exceptions":
        packages.exceptions.register(mp)
    elif name == "painting":
        packages.painting.register(mp)
    elif name == "painting-protected":
        packages.painting.register(mp, protected=True)
    elif name == "dynbind":
        packages.dynbind.register(mp)
    elif name == "enumio":
        packages.enumio.register(mp)
    elif name == "dispatch":
        packages.dispatch.register(mp)
    elif name == "loops":
        packages.loops.register(mp)
    else:
        raise SystemExit(
            f"unknown package {name!r} (choose from: "
            f"{', '.join(PACKAGE_NAMES)})"
        )


def build_arg_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI definition."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MS2 programmable syntax macros for C "
        "(Weise & Crew, PLDI 1993)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    expand = sub.add_parser(
        "expand", help="expand macros in C source files"
    )
    expand.add_argument(
        "files", nargs="+", type=Path,
        help="input files; earlier files act as macro packages, the "
        "last file's expansion is printed",
    )
    expand.add_argument(
        "-p", "--package", action="append", default=[],
        metavar="NAME", choices=PACKAGE_NAMES,
        help=f"preload a standard package ({', '.join(PACKAGE_NAMES)})",
    )
    expand.add_argument(
        "--hygienic", action="store_true",
        help="rename template-declared locals automatically",
    )
    expand.add_argument(
        "--compiled-patterns", action="store_true", default=True,
        help="use compiled per-macro invocation parse routines "
        "(the default; see --no-compiled-patterns)",
    )
    expand.add_argument(
        "--no-compiled-patterns", dest="compiled_patterns",
        action="store_false",
        help="parse invocations with the interpreted pattern engine",
    )
    expand.add_argument(
        "--no-cache", dest="cache", action="store_false", default=True,
        help="disable the expansion cache (re-run every meta-program)",
    )
    expand.add_argument(
        "--stats", action="store_true",
        help="print pipeline fast-path counters to stderr afterwards",
    )
    expand.add_argument(
        "--stats-json", action="store_true",
        help="print pipeline counters as JSON to stderr afterwards",
    )
    expand.add_argument(
        "--profile", action="store_true",
        help="time each pipeline phase; print the table to stderr",
    )
    expand.add_argument(
        "--annotate", action="store_true",
        help="mark macro-generated code with provenance comments and "
        "#line directives",
    )
    expand.add_argument(
        "--keep-meta", action="store_true",
        help="keep syntax/metadcl items in the output",
    )
    expand.add_argument(
        "--recover", action="store_true",
        help="keep going after errors: report every diagnostic "
        "(stderr), emit poisoned /* <error: ...> */ comments for the "
        "failed regions, exit 1 if any errors were found",
    )
    expand.add_argument(
        "--max-errors", type=int, default=None, metavar="N",
        help="stop recovering after N errors (with --recover; "
        "default 20)",
    )
    expand.add_argument(
        "--max-expansions", type=int, default=None, metavar="N",
        help="budget: abort after N macro expansions",
    )
    expand.add_argument(
        "--max-output-nodes", type=int, default=None, metavar="N",
        help="budget: abort after macros have produced N AST nodes",
    )
    expand.add_argument(
        "--deadline-ms", type=float, default=None, metavar="MS",
        help="budget: abort expansion after MS milliseconds of "
        "wall-clock time",
    )

    trace = sub.add_parser(
        "trace",
        help="expand, then render the nested macro-expansion span tree",
    )
    trace.add_argument(
        "files", nargs="+", type=Path,
        help="input files as for 'expand'; alternatively a single "
        "example script (*.py) exposing PROGRAM/TRACE_PROGRAM",
    )
    trace.add_argument(
        "-p", "--package", action="append", default=[],
        metavar="NAME", choices=PACKAGE_NAMES,
        help=f"preload a standard package ({', '.join(PACKAGE_NAMES)})",
    )
    trace.add_argument(
        "--no-cache", dest="cache", action="store_false", default=True,
        help="disable the expansion cache (every span shows a miss)",
    )
    trace.add_argument(
        "--profile", action="store_true",
        help="also print the per-phase wall-time table",
    )
    trace.add_argument(
        "--jsonl", type=Path, metavar="PATH",
        help="append completed spans to PATH as JSON lines",
    )

    macros = sub.add_parser("macros", help="list defined macro keywords")
    macros.add_argument(
        "files", nargs="*", type=Path, help="macro package files"
    )
    macros.add_argument(
        "-p", "--package", action="append", default=[],
        metavar="NAME", choices=PACKAGE_NAMES,
    )

    sub.add_parser(
        "figures", help="print the paper's Figure 2 and Figure 3 tables"
    )

    check = sub.add_parser(
        "check",
        help="expand, then lint the output for undeclared identifiers "
        "and macro-introduced captures",
    )
    check.add_argument("files", nargs="+", type=Path)
    check.add_argument(
        "-p", "--package", action="append", default=[],
        metavar="NAME", choices=PACKAGE_NAMES,
    )
    check.add_argument(
        "--extern", action="append", default=[], metavar="NAME",
        help="identifier supplied by the runtime (repeatable)",
    )
    return parser


def _make_budget(args: argparse.Namespace):
    """An ExpansionBudget from the CLI flags, or None when unset."""
    if (
        args.max_expansions is None
        and args.max_output_nodes is None
        and args.deadline_ms is None
    ):
        return None
    from repro.diagnostics import ExpansionBudget

    return ExpansionBudget(
        max_expansions=args.max_expansions,
        max_output_nodes=args.max_output_nodes,
        deadline_s=(
            args.deadline_ms / 1000.0
            if args.deadline_ms is not None
            else None
        ),
    )


def cmd_expand(args: argparse.Namespace) -> int:
    """``repro expand``: load packages/files, print expanded C."""
    mp = MacroProcessor(
        hygienic=args.hygienic,
        compiled_patterns=args.compiled_patterns,
        cache=args.cache,
        profile=args.profile,
        budget=_make_budget(args),
    )
    for name in args.package:
        _load_package(mp, name)
    *packages_files, program = args.files
    for path in packages_files:
        mp.load(path.read_text(), str(path))
    source = program.read_text()
    diagnostics = None
    if args.keep_meta:
        from repro.cast.printer import render_c

        if args.recover:
            unit, diagnostics = mp.expand_program(
                source, str(program),
                recover=True, max_errors=args.max_errors,
            )
        else:
            unit = mp.expand_program(source, str(program))
        print(render_c(unit, annotate=args.annotate), end="")
    elif args.recover:
        text, diagnostics = mp.expand_to_c(
            source, str(program),
            annotate=args.annotate,
            recover=True, max_errors=args.max_errors,
        )
        print(text, end="")
    else:
        print(
            mp.expand_to_c(source, str(program), annotate=args.annotate),
            end="",
        )
    if diagnostics:
        for diagnostic in diagnostics:
            print(diagnostic.render(), file=sys.stderr)
    if args.stats:
        print(mp.stats.summary(), file=sys.stderr)
    if args.stats_json:
        import json

        print(json.dumps(mp.stats.as_dict()), file=sys.stderr)
    if args.profile:
        print(mp.stats.profile_summary(), file=sys.stderr)
    if diagnostics and any(d.severity == "error" for d in diagnostics):
        return 1
    return 0


def _trace_example(mp: MacroProcessor, path: Path) -> tuple[str, str]:
    """Load an ``examples/*.py`` script's macros into ``mp`` and
    return its traceable program source.

    The protocol: the module's ``TRACE_PROGRAM`` (or, failing that,
    ``PROGRAM``) string is the program to expand; every
    ``repro.packages.*`` module it imported is registered; every
    source string named in its ``TRACE_SOURCES`` list is loaded as a
    macro package first.
    """
    import importlib.util

    spec = importlib.util.spec_from_file_location(path.stem, path)
    if spec is None or spec.loader is None:
        raise SystemExit(f"cannot import example {path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)

    program = getattr(module, "TRACE_PROGRAM", None) or getattr(
        module, "PROGRAM", None
    )
    if program is None:
        raise SystemExit(
            f"{path} defines neither TRACE_PROGRAM nor PROGRAM; "
            "nothing to trace"
        )
    for value in vars(module).values():
        if (
            getattr(value, "__name__", "").startswith("repro.packages.")
            and hasattr(value, "register")
        ):
            value.register(mp)
    for source in getattr(module, "TRACE_SOURCES", []):
        mp.load(source, f"<{path.stem} macros>")
    return program, str(path)


def cmd_trace(args: argparse.Namespace) -> int:
    """``repro trace``: expand, then print the expansion span tree."""
    jsonl_stream = args.jsonl.open("w") if args.jsonl else None
    mp = MacroProcessor(
        trace=True,
        trace_jsonl=jsonl_stream,
        profile=args.profile,
        cache=args.cache,
    )
    try:
        if len(args.files) == 1 and args.files[0].suffix == ".py":
            source, filename = _trace_example(mp, args.files[0])
        else:
            for name in args.package:
                _load_package(mp, name)
            *package_files, program = args.files
            for path in package_files:
                mp.load(path.read_text(), str(path))
            source, filename = program.read_text(), str(program)
        mp.expand_to_c(source, filename)
    except Ms2Error:
        # Show the spans recorded up to the failure, then let main()
        # format the error (with its expansion backtrace).
        print(mp.tracer.render_tree())
        raise
    finally:
        mp.tracer.close()
        if jsonl_stream is not None:
            jsonl_stream.close()
    print(mp.tracer.render_tree())
    if args.profile:
        print(mp.stats.profile_summary())
    return 0


def cmd_macros(args: argparse.Namespace) -> int:
    """``repro macros``: list macro keywords with their signatures."""
    mp = MacroProcessor()
    for name in args.package:
        _load_package(mp, name)
    for path in args.files:
        mp.load(path.read_text(), str(path))
    for name in mp.table.names():
        defn = mp.table.lookup(name)
        suffix = "[]" if defn.returns_list else ""
        print(f"syntax {defn.ret_spec}{suffix} {name} "
              f"{{| {defn.pattern} |}}")
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    """``repro figures``: print the Figure 2 and Figure 3 tables."""
    from repro.figures import figure2_rows, figure3_rows

    print("Figure 2 — parses of [int $y;] by the AST type of y")
    for label, sx in figure2_rows():
        print(f"  {label:20} {sx}")
    print()
    print("Figure 3 — parses of {int x; $ph1 $ph2 return(x);}")
    for a, b, sx in figure3_rows():
        print(f"  {a:5} {b:5} {sx}")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    """``repro check``: expand and lint (captures + undeclared names)."""
    from repro.analysis import detect_captures, undeclared_identifiers

    mp = MacroProcessor()
    for name in args.package:
        _load_package(mp, name)
    *package_files, program = args.files
    for path in package_files:
        mp.load(path.read_text(), str(path))
    unit = mp.expand_to_ast(program.read_text(), str(program))

    problems = 0
    for capture in detect_captures(unit):
        print(f"capture: {capture}", file=sys.stderr)
        problems += 1
    report = undeclared_identifiers(unit, externs=set(args.extern))
    for fn_name in sorted(report):
        names = ", ".join(sorted(report[fn_name]))
        print(
            f"undeclared: in {fn_name}(): {names}",
            file=sys.stderr,
        )
        problems += 1
    if problems:
        print(f"{problems} problem(s) found", file=sys.stderr)
        return 1
    print("clean: no captures, no undeclared identifiers")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_arg_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "expand":
            return cmd_expand(args)
        if args.command == "trace":
            return cmd_trace(args)
        if args.command == "macros":
            return cmd_macros(args)
        if args.command == "figures":
            return cmd_figures(args)
        if args.command == "check":
            return cmd_check(args)
    except Ms2Error as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
