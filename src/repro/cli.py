"""Command-line interface: the macro processor as a C preprocessor.

Usage (also via ``python -m repro``)::

    python -m repro expand prog.c               # expand to stdout
    python -m repro expand -p exceptions prog.c # preload a package
    python -m repro expand --hygienic prog.c
    python -m repro expand --profile --annotate prog.c
    python -m repro build srcdir/ -j 4          # batch build w/ cache
    python -m repro build a.c b.c --report json
    python -m repro trace -p loops prog.c       # expansion span tree
    python -m repro trace examples/quickstart.py
    python -m repro macros -p exceptions        # list macro keywords
    python -m repro figures                     # print Figures 2 and 3

``expand`` reads the named files in order (macro packages first, the
program last) and writes the expanded C of the *last* file to stdout,
mirroring the paper's model of meta-program files feeding program
files.  ``build`` expands *every* named file (or every ``.c``/``.ms2``
under a named directory) as an independent translation unit, in
parallel, against a persistent content-hash cache — see
:mod:`repro.driver`.

Every subcommand funnels its flags through one
:func:`options_from_args`, so the CLI's defaults are, by construction,
the :class:`~repro.options.Ms2Options` defaults the library uses.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

from repro import faults
from repro.driver.cacheconfig import CacheConfig
from repro.driver.diskcache import DEFAULT_CACHE_DIR
from repro.engine import MacroProcessor
from repro.errors import Ms2Error
from repro.options import Ms2Options
from repro.packages import PACKAGE_NAMES, register_named

#: The single source of defaults for every flag below.
_DEFAULTS = Ms2Options()


def _load_package(mp: MacroProcessor, name: str) -> None:
    try:
        register_named(mp, name)
    except KeyError as exc:
        raise SystemExit(str(exc.args[0])) from None


def _add_package_flag(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument(
        "-p", "--package", action="append", default=[],
        metavar="NAME", choices=PACKAGE_NAMES,
        help=f"preload a standard package ({', '.join(PACKAGE_NAMES)})",
    )


def _add_fault_flags(cmd: argparse.ArgumentParser) -> None:
    """Chaos-testing flags shared by expand/build/serve."""
    cmd.add_argument(
        "--inject-fault", action="append", default=[], metavar="SPEC",
        help="arm a deterministic fault site for this run "
        "(site[@match]:prob:kind[:after_n[:max_fires]]; repeatable; "
        "see docs/ROBUSTNESS.md)",
    )
    cmd.add_argument(
        "--fault-seed", type=int, default=None, metavar="N",
        help="seed for the fault-injection RNG (default: random; the "
        "chosen seed is printed so a chaos run can be replayed)",
    )


def _arm_faults(args: argparse.Namespace) -> None:
    """Arm ``--inject-fault`` specs (and export them to the
    environment so spawned worker processes inherit the plan)."""
    specs = getattr(args, "inject_fault", [])
    if not specs:
        return
    try:
        parsed = [faults.parse_spec(spec) for spec in specs]
    except ValueError as exc:
        raise SystemExit(f"--inject-fault: {exc}") from None
    plan = faults.arm(*parsed, seed=getattr(args, "fault_seed", None))
    faults.export_to_env(plan)
    print(
        f"fault injection armed: {plan.describe()}",
        file=sys.stderr,
        flush=True,
    )


def _add_option_flags(cmd: argparse.ArgumentParser) -> None:
    """The pipeline flags shared by ``expand`` and ``build`` — one
    per :class:`Ms2Options` field, defaulted from the dataclass."""
    cmd.add_argument(
        "--hygienic", action="store_true", default=_DEFAULTS.hygienic,
        help="rename template-declared locals automatically",
    )
    cmd.add_argument(
        "--compiled-patterns", action="store_true",
        default=_DEFAULTS.compiled_patterns,
        help="use compiled per-macro invocation parse routines "
        "(the default; see --no-compiled-patterns)",
    )
    cmd.add_argument(
        "--no-compiled-patterns", dest="compiled_patterns",
        action="store_false",
        help="parse invocations with the interpreted pattern engine",
    )
    cmd.add_argument(
        "--compiled-bodies", action="store_true",
        default=_DEFAULTS.compiled_bodies,
        help="compile macro bodies/templates to Python "
        "(the default; see --no-compiled-bodies)",
    )
    cmd.add_argument(
        "--no-compiled-bodies", dest="compiled_bodies",
        action="store_false",
        help="run every macro body through the meta-interpreter",
    )
    cmd.add_argument(
        "--no-cache", dest="cache", action="store_false",
        default=_DEFAULTS.cache,
        help="disable the expansion cache (re-run every meta-program)",
    )
    cmd.add_argument(
        "--profile", action="store_true", default=_DEFAULTS.profile,
        help="time each pipeline phase; print the table to stderr",
    )
    cmd.add_argument(
        "--annotate", action="store_true", default=_DEFAULTS.annotate,
        help="mark macro-generated code with provenance comments and "
        "#line directives",
    )
    cmd.add_argument(
        "--keep-meta", action="store_true", default=_DEFAULTS.keep_meta,
        help="keep syntax/metadcl items in the output",
    )
    cmd.add_argument(
        "--recover", action="store_true", default=_DEFAULTS.recover,
        help="keep going after errors: report every diagnostic "
        "(stderr), emit poisoned /* <error: ...> */ comments for the "
        "failed regions, exit 1 if any errors were found",
    )
    cmd.add_argument(
        "--max-errors", type=int, default=_DEFAULTS.max_errors,
        metavar="N",
        help="stop recovering after N errors (with --recover; "
        f"default {_DEFAULTS.max_errors})",
    )
    cmd.add_argument(
        "--max-expansions", type=int, default=_DEFAULTS.max_expansions,
        metavar="N",
        help="budget: abort after N macro expansions",
    )
    cmd.add_argument(
        "--max-output-nodes", type=int,
        default=_DEFAULTS.max_output_nodes, metavar="N",
        help="budget: abort after macros have produced N AST nodes",
    )
    cmd.add_argument(
        "--deadline-ms", type=float, default=None, metavar="MS",
        help="budget: abort expansion after MS milliseconds of "
        "wall-clock time",
    )


def options_from_args(args: argparse.Namespace) -> Ms2Options:
    """The one place CLI flags become pipeline configuration.  Flags
    a subcommand doesn't expose fall back to the shared
    :class:`Ms2Options` defaults, so ``repro expand``, ``repro
    build``, ``repro trace`` and the library API cannot disagree."""
    deadline_ms = getattr(args, "deadline_ms", None)
    return Ms2Options(
        hygienic=getattr(args, "hygienic", _DEFAULTS.hygienic),
        keep_meta=getattr(args, "keep_meta", _DEFAULTS.keep_meta),
        annotate=getattr(args, "annotate", _DEFAULTS.annotate),
        compiled_patterns=getattr(
            args, "compiled_patterns", _DEFAULTS.compiled_patterns
        ),
        compiled_bodies=getattr(
            args, "compiled_bodies", _DEFAULTS.compiled_bodies
        ),
        cache=getattr(args, "cache", _DEFAULTS.cache),
        recover=getattr(args, "recover", _DEFAULTS.recover),
        max_errors=getattr(args, "max_errors", _DEFAULTS.max_errors),
        max_expansions=getattr(
            args, "max_expansions", _DEFAULTS.max_expansions
        ),
        max_output_nodes=getattr(
            args, "max_output_nodes", _DEFAULTS.max_output_nodes
        ),
        deadline_s=(
            deadline_ms / 1000.0
            if deadline_ms is not None
            else _DEFAULTS.deadline_s
        ),
        trace=getattr(args, "trace", _DEFAULTS.trace),
        profile=getattr(args, "profile", _DEFAULTS.profile),
    )


def build_arg_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI definition."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MS2 programmable syntax macros for C "
        "(Weise & Crew, PLDI 1993)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    expand = sub.add_parser(
        "expand", help="expand macros in C source files"
    )
    expand.add_argument(
        "files", nargs="+", type=Path,
        help="input files; earlier files act as macro packages, the "
        "last file's expansion is printed",
    )
    _add_package_flag(expand)
    _add_option_flags(expand)
    expand.add_argument(
        "--stats", action="store_true",
        help="print pipeline fast-path counters to stderr afterwards",
    )
    expand.add_argument(
        "--stats-json", action="store_true",
        help="print pipeline counters as JSON to stderr afterwards",
    )
    expand.add_argument(
        "--server", metavar="ADDR", default=None,
        help="expand on a running 'repro serve' daemon instead of "
        "in-process (ADDR: unix:///path/sock, tcp://HOST:PORT, "
        "http://HOST:PORT for the HTTP gateway, or the bare forms "
        "socket path, HOST:PORT, :PORT)",
    )
    expand.add_argument(
        "--fallback", choices=("local", "fail"), default="fail",
        help="with --server: when the daemon stays unreachable after "
        "retries, degrade to in-process expansion ('local') or exit "
        "with an error ('fail', the default)",
    )
    _add_fault_flags(expand)

    build = sub.add_parser(
        "build",
        help="batch-expand many translation units in parallel, with "
        "a persistent cross-run cache",
    )
    build.add_argument(
        "files", nargs="+", type=Path,
        help="translation units and/or directories (every *.c/*.ms2 "
        "below a directory is built)",
    )
    _add_package_flag(build)
    build.add_argument(
        "--package-file", action="append", default=[], type=Path,
        metavar="PATH",
        help="macro-package source file loaded into every worker "
        "before building (repeatable)",
    )
    _add_option_flags(build)
    build.add_argument(
        "-j", "--jobs", type=int, default=1, metavar="N",
        help="worker processes (default 1: sequential, in-process)",
    )
    # The single source of cache-flag defaults: the frozen CacheConfig
    # the library itself builds with (same pattern as serve below).
    cache_defaults = CacheConfig()
    build.add_argument(
        "--cache-dir", type=Path,
        default=Path(cache_defaults.local_dir or DEFAULT_CACHE_DIR),
        metavar="DIR",
        help=f"persistent snapshot cache root (default "
        f"{cache_defaults.local_dir})",
    )
    build.add_argument(
        "--no-disk-cache", action="store_true",
        help="disable the persistent cache entirely",
    )
    build.add_argument(
        "--remote-cache", metavar="ADDRESS", default=cache_defaults.remote,
        help="share snapshots with a 'repro serve --cache-dir' daemon "
        "at ADDRESS (unix:///path, tcp://host:port or http://host:port); "
        "reads fall through local->remote, stores publish both tiers",
    )
    build.add_argument(
        "--write-behind", type=int,
        default=cache_defaults.write_behind, metavar="N",
        help="queue up to N remote stores on a background uploader "
        "instead of blocking the build (0 = publish synchronously; "
        f"default {cache_defaults.write_behind})",
    )
    build.add_argument(
        "--remote-timeout-s", type=float,
        default=cache_defaults.remote_timeout_s, metavar="S",
        help="per-operation remote-cache budget; slower remote answers "
        "count as misses and the build expands locally "
        f"(default {cache_defaults.remote_timeout_s})",
    )
    build.add_argument(
        "--no-incremental", action="store_true",
        help="re-expand every file even when its snapshot is fresh "
        "(results are still stored for future runs)",
    )
    build.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="re-run a file whose worker process died up to N times "
        "before quarantining it as 'poisoned' (default 2)",
    )
    build.add_argument(
        "--report", choices=("text", "json"), default="text",
        help="batch report format on stdout (default text)",
    )
    _add_fault_flags(build)
    build.add_argument(
        "-o", "--out-dir", type=Path, default=None, metavar="DIR",
        help="write each file's expanded C to DIR/<stem>.c",
    )

    trace = sub.add_parser(
        "trace",
        help="expand, then render the nested macro-expansion span tree",
    )
    trace.add_argument(
        "files", nargs="*", type=Path,
        help="input files as for 'expand'; alternatively a single "
        "example script (*.py) exposing PROGRAM/TRACE_PROGRAM",
    )
    _add_package_flag(trace)
    trace.add_argument(
        "--no-cache", dest="cache", action="store_false",
        default=_DEFAULTS.cache,
        help="disable the expansion cache (every span shows a miss)",
    )
    trace.add_argument(
        "--profile", action="store_true", default=_DEFAULTS.profile,
        help="also print the per-phase wall-time table",
    )
    trace.add_argument(
        "--jsonl", type=Path, metavar="PATH",
        help="append completed spans to PATH as JSON lines",
    )
    trace.add_argument(
        "--events", type=Path, metavar="PATH",
        help="instead of expanding, read a daemon JSONL event log "
        "and print its records (see 'repro serve --event-log')",
    )
    trace.add_argument(
        "--request-id", metavar="ID", default=None,
        help="with --events: only records for this correlation ID "
        "(one request followed client -> daemon -> spans)",
    )

    from repro.serveconfig import ServeConfig

    # The single source of serve-flag defaults: the frozen ServeConfig
    # the library itself runs on (same pattern as _DEFAULTS above).
    serve_defaults = ServeConfig()

    serve = sub.add_parser(
        "serve",
        help="run a long-lived expansion daemon with warm workers "
        "(see docs/SERVER.md)",
    )
    _add_package_flag(serve)
    serve.add_argument(
        "--package-file", action="append", default=[], type=Path,
        metavar="PATH",
        help="macro-package source file pre-loaded into every warm "
        "worker (repeatable)",
    )
    _add_option_flags(serve)
    listen = serve.add_mutually_exclusive_group(required=True)
    listen.add_argument(
        "--socket", type=Path, metavar="PATH",
        help="listen on a Unix domain socket at PATH",
    )
    listen.add_argument(
        "--port", type=int, metavar="N",
        help="listen on TCP port N (0 = ephemeral; the bound port is "
        "announced on stderr)",
    )
    serve.add_argument(
        "--host", default=serve_defaults.host, metavar="HOST",
        help=f"TCP bind address (default {serve_defaults.host})",
    )
    serve.add_argument(
        "--shards", type=int, default=serve_defaults.shards, metavar="N",
        help="pre-fork N server processes sharing the TCP port via "
        "SO_REUSEPORT, supervised and restarted on crash (requires "
        f"--port; default {serve_defaults.shards})",
    )
    serve.add_argument(
        "--cache-dir", type=Path, default=Path(DEFAULT_CACHE_DIR),
        metavar="DIR",
        help="persistent snapshot cache shared with 'repro build' "
        f"(default {DEFAULT_CACHE_DIR})",
    )
    serve.add_argument(
        "--no-disk-cache", action="store_true",
        help="disable the persistent cache for expand_file requests",
    )
    serve.add_argument(
        "--max-inflight", type=int,
        default=serve_defaults.max_inflight, metavar="N",
        help="concurrent expansions per shard "
        f"(default {serve_defaults.max_inflight})",
    )
    serve.add_argument(
        "--queue-limit", type=int,
        default=serve_defaults.queue_limit, metavar="N",
        help="admitted requests waiting beyond --max-inflight before "
        f"the server answers 'busy' "
        f"(default {serve_defaults.queue_limit})",
    )
    serve.add_argument(
        "--warm-spares", type=int,
        default=serve_defaults.warm_spares, metavar="N",
        help="pre-built workers kept per options/preamble key "
        f"(default {serve_defaults.warm_spares})",
    )
    serve.add_argument(
        "--no-prewarm", dest="prewarm", action="store_false",
        default=serve_defaults.prewarm,
        help="skip building the default worker pool before accepting "
        "traffic (faster startup, slower first requests)",
    )
    serve.add_argument(
        "--request-deadline-ms", type=float,
        default=serve_defaults.request_deadline_ms, metavar="MS",
        help="server-side wall-clock budget applied to requests whose "
        "options set no deadline of their own",
    )
    serve.add_argument(
        "--drain-s", type=float, default=serve_defaults.drain_s,
        metavar="S",
        help="seconds SIGTERM waits for in-flight requests "
        f"(default {serve_defaults.drain_s:g})",
    )
    serve.add_argument(
        "--max-frame-bytes", type=int,
        default=serve_defaults.max_frame_bytes, metavar="N",
        help="reject request frames larger than N bytes "
        f"(default {serve_defaults.max_frame_bytes})",
    )
    serve.add_argument(
        "--metrics-port", type=int,
        default=serve_defaults.metrics_port, metavar="N",
        help="serve /metrics, /healthz, /statusz and the POST "
        "/v1/expand HTTP gateway on port N (0 = ephemeral; with "
        "--shards this is the fleet gateway; see "
        "docs/OBSERVABILITY.md)",
    )
    serve.add_argument(
        "--metrics-host", default=serve_defaults.metrics_host,
        metavar="HOST",
        help="bind address for --metrics-port "
        f"(default {serve_defaults.metrics_host})",
    )
    serve.add_argument(
        "--event-log", type=Path, default=None, metavar="PATH",
        help="append a structured JSONL event log (request/response/"
        "span records keyed by request ID) to PATH (each shard "
        "appends .shard-N)",
    )
    _add_fault_flags(serve)

    top = sub.add_parser(
        "top",
        help="live dashboard for a running daemon (polls its stats op)",
    )
    top.add_argument(
        "address", metavar="ADDR",
        help="daemon address: unix:///path/sock, tcp://HOST:PORT, "
        "http://HOST:PORT (gateway), or the bare forms socket path, "
        "HOST:PORT, :PORT",
    )
    top.add_argument(
        "--interval", type=float, default=2.0, metavar="S",
        help="seconds between polls (default 2)",
    )
    top.add_argument(
        "--iterations", type=int, default=None, metavar="N",
        help="stop after N polls (default: run until interrupted)",
    )

    macros = sub.add_parser("macros", help="list defined macro keywords")
    macros.add_argument(
        "files", nargs="*", type=Path, help="macro package files"
    )
    _add_package_flag(macros)

    sub.add_parser(
        "figures", help="print the paper's Figure 2 and Figure 3 tables"
    )

    check = sub.add_parser(
        "check",
        help="expand, then lint the output for undeclared identifiers "
        "and macro-introduced captures",
    )
    check.add_argument("files", nargs="+", type=Path)
    _add_package_flag(check)
    check.add_argument(
        "--extern", action="append", default=[], metavar="NAME",
        help="identifier supplied by the runtime (repeatable)",
    )
    return parser


def cmd_expand(args: argparse.Namespace) -> int:
    """``repro expand``: load packages/files, print expanded C."""
    _arm_faults(args)
    if args.server is not None:
        return _cmd_expand_via_server(args)
    return _cmd_expand_local(args)


def _cmd_expand_local(args: argparse.Namespace) -> int:
    """The in-process expansion path (also the ``--fallback local``
    degradation target, which is why it is byte-identical to the
    server path by construction — same options, same preamble)."""
    options = options_from_args(args)
    mp = MacroProcessor(options=options)
    for name in args.package:
        _load_package(mp, name)
    *packages_files, program = args.files
    for path in packages_files:
        mp.load(path.read_text(), str(path))
    result = mp.expand(program.read_text(), str(program))
    print(result.output, end="")
    for diagnostic in result.diagnostics:
        print(diagnostic.render(), file=sys.stderr)
    if args.stats:
        print(mp.stats.summary(), file=sys.stderr)
    if args.stats_json:
        print(json.dumps(mp.stats.as_dict()), file=sys.stderr)
    if options.profile:
        print(mp.stats.profile_summary(), file=sys.stderr)
    return 0 if result.ok else 1


def _cmd_expand_via_server(args: argparse.Namespace) -> int:
    """``repro expand --server ADDR``: same flags, same output, but
    the expansion runs on a warm daemon worker.  The request carries
    this invocation's options and preamble explicitly, so the result
    is byte-identical to the in-process path regardless of what the
    daemon was started with.

    With ``--fallback local``, a daemon that stays unreachable after
    the client's retry budget degrades to :func:`_cmd_expand_local`
    instead of failing — same options, same preamble, so the output
    is the same bytes the daemon would have produced."""
    from repro.client import Ms2Client, count_fallback

    from repro.stats import PipelineStats

    options = options_from_args(args)
    *package_files, program = args.files
    try:
        with Ms2Client(args.server) as client:
            result = client.expand(
                program.read_text(),
                str(program),
                options=options,
                packages=list(args.package),
                package_sources=[
                    (str(path), path.read_text())
                    for path in package_files
                ],
            )
    except (Ms2Error, OSError) as exc:
        if getattr(args, "fallback", "fail") != "local":
            raise
        count_fallback()
        print(
            f"repro expand: daemon at {args.server} unavailable "
            f"({exc}); falling back to in-process expansion",
            file=sys.stderr,
            flush=True,
        )
        return _cmd_expand_local(args)
    print(result.output, end="")
    for diagnostic in result.diagnostics:
        print(diagnostic.render(), file=sys.stderr)
    stats = result.stats if result.stats is not None else PipelineStats()
    if args.stats:
        print(stats.summary(), file=sys.stderr)
    if args.stats_json:
        print(json.dumps(stats.to_json()), file=sys.stderr)
    if options.profile:
        print(stats.profile_summary(), file=sys.stderr)
    return 0 if result.ok else 1


def serve_config_from_args(args: argparse.Namespace) -> "Any":
    """One :class:`~repro.serveconfig.ServeConfig` from the ``repro
    serve`` flags — the flags and the config share their defaults by
    construction (argparse defaults come from ``ServeConfig()``)."""
    from repro.serveconfig import ServeConfig

    specs = list(getattr(args, "inject_fault", []))
    try:
        for spec in specs:
            faults.parse_spec(spec)  # validate before any process spawns
    except ValueError as exc:
        raise SystemExit(f"--inject-fault: {exc}") from None
    fault_specs = tuple(specs)
    return ServeConfig(
        socket=str(args.socket) if args.socket is not None else None,
        host=args.host,
        port=args.port,
        shards=args.shards,
        packages=tuple(args.package),
        package_sources=tuple(
            (str(path), path.read_text()) for path in args.package_file
        ),
        max_inflight=args.max_inflight,
        queue_limit=args.queue_limit,
        max_frame_bytes=args.max_frame_bytes,
        warm_spares=args.warm_spares,
        prewarm=args.prewarm,
        request_deadline_ms=args.request_deadline_ms,
        drain_s=args.drain_s,
        cache_dir=(
            None if args.no_disk_cache else str(args.cache_dir)
        ),
        metrics_port=args.metrics_port,
        metrics_host=args.metrics_host,
        event_log=(
            str(args.event_log) if args.event_log is not None else None
        ),
        fault_specs=fault_specs,
        fault_seed=getattr(args, "fault_seed", None),
    )


def cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: run the expansion daemon (or, with
    ``--shards N``, the supervised shard fleet) until shut down."""
    from repro import server as server_mod

    config = serve_config_from_args(args)
    try:
        config.validate()
    except ValueError as exc:
        raise SystemExit(f"repro serve: {exc}") from None
    options = options_from_args(args)

    def announce(srv: "Any") -> None:
        # Duck-typed: an Ms2Server or a ShardSupervisor — both expose
        # .address and .sidecar.
        shards = getattr(getattr(srv, "config", None), "shards", 1)
        fleet = f" ({shards} shards)" if shards > 1 else ""
        print(
            f"repro serve: listening on {srv.address}{fleet}",
            file=sys.stderr,
            flush=True,
        )
        if srv.sidecar is not None:
            print(
                f"repro serve: telemetry on "
                f"http://{srv.sidecar.address}/metrics "
                f"(gateway: POST /v1/expand)",
                file=sys.stderr,
                flush=True,
            )

    server_mod.serve(options, config, ready=announce)
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    """``repro top``: poll a daemon's stats op and redraw a compact
    dashboard (rates come from deltas between polls)."""
    from repro.top import run_top

    return run_top(
        args.address,
        interval=args.interval,
        iterations=args.iterations,
    )


def cmd_build(args: argparse.Namespace) -> int:
    """``repro build``: parallel batch expansion with the persistent
    cache (see :mod:`repro.driver`)."""
    from repro.driver import BuildSession, write_outputs

    _arm_faults(args)
    options = options_from_args(args)
    cache_config = CacheConfig(
        local_dir=None if args.no_disk_cache else str(args.cache_dir),
        remote=args.remote_cache,
        write_behind=args.write_behind,
        remote_timeout_s=args.remote_timeout_s,
    )
    try:
        cache_config.validate()
    except ValueError as exc:
        raise SystemExit(f"repro build: {exc}") from None
    session = BuildSession(
        options,
        package_names=args.package,
        package_sources=[
            (str(path), path.read_text()) for path in args.package_file
        ],
        jobs=args.jobs,
        cache=cache_config,
        incremental=not args.no_incremental,
        retries=args.retries,
    )
    try:
        report = session.build(args.files)
    finally:
        # Flush any write-behind remote publishes before reporting.
        session.close()
    if args.out_dir is not None:
        write_outputs(report, args.out_dir)
    if args.report == "json":
        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(report.render())
    for result in report.results:
        for diagnostic in result.diagnostics:
            rendered = diagnostic.get("rendered", "")
            severity = diagnostic.get("severity", "note")
            print(
                f"{result.path}: {severity}: {rendered}",
                file=sys.stderr,
            )
        if result.error:
            print(f"{result.path}: error: {result.error}", file=sys.stderr)
    return 0 if report.ok else 1


def _trace_example(mp: MacroProcessor, path: Path) -> tuple[str, str]:
    """Load an ``examples/*.py`` script's macros into ``mp`` and
    return its traceable program source.

    The protocol: the module's ``TRACE_PROGRAM`` (or, failing that,
    ``PROGRAM``) string is the program to expand; every
    ``repro.packages.*`` module it imported is registered; every
    source string named in its ``TRACE_SOURCES`` list is loaded as a
    macro package first.
    """
    import importlib.util

    spec = importlib.util.spec_from_file_location(path.stem, path)
    if spec is None or spec.loader is None:
        raise SystemExit(f"cannot import example {path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)

    program = getattr(module, "TRACE_PROGRAM", None) or getattr(
        module, "PROGRAM", None
    )
    if program is None:
        raise SystemExit(
            f"{path} defines neither TRACE_PROGRAM nor PROGRAM; "
            "nothing to trace"
        )
    for value in vars(module).values():
        if (
            getattr(value, "__name__", "").startswith("repro.packages.")
            and hasattr(value, "register")
        ):
            value.register(mp)
    for source in getattr(module, "TRACE_SOURCES", []):
        mp.load(source, f"<{path.stem} macros>")
    return program, str(path)


def _cmd_trace_events(args: argparse.Namespace) -> int:
    """``repro trace --events LOG [--request-id ID]``: render a
    daemon's JSONL event log, optionally filtered down to one
    request's records (request, response and its expansion spans)."""
    matched = 0
    with args.events.open(encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                print(f"(unparseable line skipped: {line[:60]}...)",
                      file=sys.stderr)
                continue
            if (
                args.request_id is not None
                and record.get("request_id") != args.request_id
            ):
                continue
            matched += 1
            event = record.get("event", "?")
            rid = record.get("request_id", "-")
            rest = {
                key: value for key, value in record.items()
                if key not in ("ts", "event", "request_id")
            }
            detail = " ".join(
                f"{key}={value}" for key, value in rest.items()
            )
            print(f"{record.get('ts', 0):.6f} {rid} {event:9} {detail}")
    if args.request_id is not None and matched == 0:
        print(
            f"no records for request_id {args.request_id!r}",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """``repro trace``: expand, then print the expansion span tree."""
    if args.events is not None:
        return _cmd_trace_events(args)
    if not args.files:
        raise SystemExit("repro trace: file arguments required "
                         "(or use --events LOG)")
    jsonl_stream = args.jsonl.open("w") if args.jsonl else None
    options = options_from_args(args).replace(
        trace=True, trace_jsonl=jsonl_stream
    )
    mp = MacroProcessor(options=options)
    try:
        if len(args.files) == 1 and args.files[0].suffix == ".py":
            source, filename = _trace_example(mp, args.files[0])
        else:
            for name in args.package:
                _load_package(mp, name)
            *package_files, program = args.files
            for path in package_files:
                mp.load(path.read_text(), str(path))
            source, filename = program.read_text(), str(program)
        mp.expand(source, filename)
    except Ms2Error:
        # Show the spans recorded up to the failure, then let main()
        # format the error (with its expansion backtrace).
        print(mp.tracer.render_tree())
        raise
    finally:
        mp.tracer.close()
        if jsonl_stream is not None:
            jsonl_stream.close()
    print(mp.tracer.render_tree())
    if options.profile:
        print(mp.stats.profile_summary())
    return 0


def cmd_macros(args: argparse.Namespace) -> int:
    """``repro macros``: list macro keywords with their signatures."""
    mp = MacroProcessor()
    for name in args.package:
        _load_package(mp, name)
    for path in args.files:
        mp.load(path.read_text(), str(path))
    for name in mp.table.names():
        defn = mp.table.lookup(name)
        suffix = "[]" if defn.returns_list else ""
        print(f"syntax {defn.ret_spec}{suffix} {name} "
              f"{{| {defn.pattern} |}}")
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    """``repro figures``: print the Figure 2 and Figure 3 tables."""
    from repro.figures import figure2_rows, figure3_rows

    print("Figure 2 — parses of [int $y;] by the AST type of y")
    for label, sx in figure2_rows():
        print(f"  {label:20} {sx}")
    print()
    print("Figure 3 — parses of {int x; $ph1 $ph2 return(x);}")
    for a, b, sx in figure3_rows():
        print(f"  {a:5} {b:5} {sx}")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    """``repro check``: expand and lint (captures + undeclared names)."""
    from repro.analysis import detect_captures, undeclared_identifiers

    mp = MacroProcessor()
    for name in args.package:
        _load_package(mp, name)
    *package_files, program = args.files
    for path in package_files:
        mp.load(path.read_text(), str(path))
    unit = mp.expand_to_ast(program.read_text(), str(program))

    problems = 0
    for capture in detect_captures(unit):
        print(f"capture: {capture}", file=sys.stderr)
        problems += 1
    report = undeclared_identifiers(unit, externs=set(args.extern))
    for fn_name in sorted(report):
        names = ", ".join(sorted(report[fn_name]))
        print(
            f"undeclared: in {fn_name}(): {names}",
            file=sys.stderr,
        )
        problems += 1
    if problems:
        print(f"{problems} problem(s) found", file=sys.stderr)
        return 1
    print("clean: no captures, no undeclared identifiers")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_arg_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "expand":
            return cmd_expand(args)
        if args.command == "serve":
            return cmd_serve(args)
        if args.command == "top":
            return cmd_top(args)
        if args.command == "build":
            return cmd_build(args)
        if args.command == "trace":
            return cmd_trace(args)
        if args.command == "macros":
            return cmd_macros(args)
        if args.command == "figures":
            return cmd_figures(args)
        if args.command == "check":
            return cmd_check(args)
    except Ms2Error as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
