"""The ``myenum`` reader/writer generator (paper section 4).

``myenum fruit {apple, banana, kiwi};`` expands into the plain
``enum`` declaration *plus* generated ``print_fruit`` and
``read_fruit`` functions — the paper's showcase for decl macros that
return a *list* of declarations, ``map`` over anonymous functions,
``symbolconc`` (computing function names) and ``pstring`` (turning
identifiers into string literals).
"""

from __future__ import annotations

from repro.engine import MacroProcessor

SOURCE = """
syntax decl myenum[] {| $$id::name { $$+/, id::ids } ; |}
{
  return(list(
    `[enum $name {$ids};],
    `[void $(symbolconc("print_", name))(int arg)
      {switch (arg)
         {$(map((@id id; `{case $id: printf("%s", $(pstring(id)));}),
                ids))}}],
    `[int $(symbolconc("read_", name))(void)
      {char s[100];
       getline(s, 100);
       $(map((@id id; `{if (!strcmp(s, $(pstring(id)))) return($id);}),
             ids))
       return(0);}]));
}
"""


def register(mp: MacroProcessor) -> None:
    mp.load(SOURCE, "<enumio>")
