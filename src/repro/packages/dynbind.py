"""The ``dynamic_bind`` macro (paper section 4).

Defines a new statement type that saves an integer variable, rebinds
it for the dynamic extent of a body, then restores it — the idiom
behind special variables and exception-handler stacks.  Uses
``gensym`` for the save slot so user code cannot capture it.
"""

from __future__ import annotations

from repro.engine import MacroProcessor

SOURCE = """
syntax stmt dynamic_bind
  {| { $$type_spec::type $$id::name = $$exp::init } $$stmt::body |}
{
  @id newname = gensym();
  return(`{$type $newname = $name;
           $name = $init;
           $body;
           $name = $newname;});
}
"""


def register(mp: MacroProcessor) -> None:
    mp.load(SOURCE, "<dynbind>")
