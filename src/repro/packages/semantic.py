"""Semantic macros (paper section 5, future work — implemented).

Section 5 promises two powers for semantic macros, both demonstrated
here:

* **types without annotations** — ``sdynamic_bind`` is §4's
  ``dynamic_bind`` with the explicit type parameter *removed*: the
  macro asks the static semantic analyzer (``type_of``) for the
  variable's declared type at the invocation site.  Likewise ``sswap``.
* **type-conditional expansion** — ``show`` picks a ``printf`` format
  by *comparing* the variable's type specifier against type templates
  (the general backquote form ```{| type_spec :: int |}``), "a
  form of object oriented dispatch at compile time".
"""

from __future__ import annotations

from repro.engine import MacroProcessor

SOURCE = """
syntax stmt sdynamic_bind {| { $$id::name = $$exp::init } $$stmt::body |}
{
  @id slot = gensym();
  @type_spec t = type_of(name);
  return(`{{$t $slot = $name;
            $name = $init;
            $body;
            $name = $slot;}});
}

syntax stmt sswap {| ( $$id::a , $$id::b ) |}
{
  @id tmp = gensym();
  @type_spec t = type_of(a);
  return(`{{$t $tmp = $a;
            $a = $b;
            $b = $tmp;}});
}

syntax stmt show {| ( $$id::var ) |}
{
  @type_spec t = type_of(var);
  if (t == `{| type_spec :: int |})
    return(`{printf("%s = %d", $(pstring(var)), $var);});
  if (t == `{| type_spec :: long |})
    return(`{printf("%s = %ld", $(pstring(var)), $var);});
  if (t == `{| type_spec :: float |} || t == `{| type_spec :: double |})
    return(`{printf("%s = %f", $(pstring(var)), $var);});
  if (t == `{| type_spec :: char |})
    return(`{printf("%s = %c", $(pstring(var)), $var);});
  return(`{printf("%s = %p", $(pstring(var)), $var);});
}
"""


def register(mp: MacroProcessor) -> None:
    mp.load(SOURCE, "<semantic>")
