"""The code-rearrangement (window-procedure) package (paper section 4).

Demonstrates *non-local transformations*: ``window_proc_dispatch``
invocations scattered through a program accumulate (message, handler)
pairs in ``metadcl`` meta-globals; ``emit_window_proc`` later emits a
single dispatch function collecting everything registered for it.
The accumulating macros expand to *nothing* (an empty decl list).

The package starts with the Windows-ish typedefs its templates use.
"""

from __future__ import annotations

from repro.engine import MacroProcessor

SOURCE = """
typedef int HWND;
typedef unsigned int UINT;
typedef unsigned int WPARAM;
typedef long LPARAM;

metadcl @id wproc_names[];
metadcl @id wproc_defaults[];
metadcl @id wproc_owner[];
metadcl @id wproc_messages[];
metadcl @stmt wproc_bodies[];

syntax decl new_window_proc[]
  {| $$id::name default $$id::default_proc_name ; |}
{
  wproc_names = cons(name, wproc_names);
  wproc_defaults = cons(default_proc_name, wproc_defaults);
  return(list());
}

syntax decl window_proc_dispatch[]
  {| ( $$id::proc_name , $$id::message_name ) $$stmt::body |}
{
  wproc_owner = cons(proc_name, wproc_owner);
  wproc_messages = cons(message_name, wproc_messages);
  wproc_bodies = cons(body, wproc_bodies);
  return(list());
}

syntax decl emit_window_proc[] {| $$id::proc_name ; |}
{
  @stmt cases[];
  int i;
  int n;
  int j;
  @id dflt;
  cases = list();
  n = length(wproc_owner);
  for (i = 0; i < n; i++)
  {
    if (same_id(wproc_owner[i], proc_name))
      cases = cons(`{case $(wproc_messages[i]):
                       {$(wproc_bodies[i]); break;}},
                   cases);
  }
  j = 0;
  n = length(wproc_names);
  while (j < n && !same_id(wproc_names[j], proc_name)) j++;
  if (j == n) error("emit_window_proc: unknown window procedure");
  dflt = wproc_defaults[j];
  return(list(
    `[int $proc_name(HWND hWnd, UINT message, WPARAM wParam, LPARAM lParam)
      {switch (message)
         {default: {return($dflt(hWnd, message, wParam, lParam)); break;}
          $cases}}]));
}
"""


def register(mp: MacroProcessor) -> None:
    mp.load(SOURCE, "<dispatch>")
