"""Design-by-contract statements via syntax macros.

A small package in the spirit of the paper's section 4 ("new control
constructs ... raise the abstract programming level"):

* ``require (cond);`` — precondition check;
* ``ensure (cond);`` — postcondition check;
* ``check_range (e, lo, hi);`` — bounds assertion.

Each expands into an ``if`` that reports *the source text of the
violated condition* — the macro turns the condition AST back into a
string literal with ``ast_to_string``, something no token-based macro
system can do (CPP's ``#cond`` stringizes the unexpanded tokens; MS²
stringizes the parsed, canonical expression).
"""

from __future__ import annotations

from repro.engine import MacroProcessor

#: The reporting hook the expanded code calls.
RUNTIME_SUPPORT = """
void contract_violation(char *kind, char *condition);
"""

SOURCE = """
syntax stmt require {| ( $$exp::cond ) |}
{
  return(`{if (!($cond))
             contract_violation("precondition", $(ast_to_string(cond)));});
}

syntax stmt ensure {| ( $$exp::cond ) |}
{
  return(`{if (!($cond))
             contract_violation("postcondition", $(ast_to_string(cond)));});
}

syntax stmt check_range {| ( $$exp::value , $$exp::lo , $$exp::hi ) |}
{
  if (simple_expression(value))
    return(`{if (($value) < ($lo) || ($value) > ($hi))
               contract_violation("range", $(ast_to_string(value)));});
  else
    return(`{{int the_value = $value;
              if (the_value < ($lo) || the_value > ($hi))
                contract_violation("range", $(ast_to_string(value)));}});
}
"""


def register(mp: MacroProcessor) -> None:
    mp.load(SOURCE, "<contracts>")
