"""Macro packages: the paper's section 4 examples as a library.

Every package ships its macro definitions as macro-language *source*
(the meta-program is written in C-plus-templates, compiled by MS2
itself — not in Python) plus a ``register(mp)`` helper.

>>> from repro import MacroProcessor
>>> from repro.packages import exceptions, painting
>>> mp = MacroProcessor()
>>> exceptions.register(mp)
>>> painting.register(mp, protected=True)
"""

from repro.packages import (  # noqa: F401
    contracts,
    dispatch,
    dynbind,
    enumio,
    exceptions,
    loops,
    painting,
    portvm,
    semantic,
    statemachine,
    structio,
)

from repro.engine import MacroProcessor

ALL_PACKAGES = [exceptions, painting, dynbind, enumio, loops, structio]


def load_standard(mp: MacroProcessor) -> None:
    """Load the exception, painting (protected), dynamic-binding,
    enum-IO, loop, and struct-IO packages into ``mp``."""
    exceptions.register(mp)
    painting.register(mp, protected=True)
    dynbind.register(mp)
    enumio.register(mp)
    loops.register(mp)
    structio.register(mp)
