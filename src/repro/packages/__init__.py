"""Macro packages: the paper's section 4 examples as a library.

Every package ships its macro definitions as macro-language *source*
(the meta-program is written in C-plus-templates, compiled by MS2
itself — not in Python) plus a ``register(mp)`` helper.

>>> from repro import MacroProcessor
>>> from repro.packages import exceptions, painting
>>> mp = MacroProcessor()
>>> exceptions.register(mp)
>>> painting.register(mp, protected=True)
"""

from repro.packages import (  # noqa: F401
    contracts,
    dispatch,
    dynbind,
    enumio,
    exceptions,
    loops,
    painting,
    portvm,
    semantic,
    statemachine,
    structio,
)

from repro.engine import MacroProcessor

ALL_PACKAGES = [exceptions, painting, dynbind, enumio, loops, structio]

#: The names accepted by ``-p/--package`` and by the batch driver's
#: worker processes — the single registry both resolve against.
PACKAGE_REGISTRY = {
    "exceptions": exceptions.register,
    "painting": painting.register,
    "painting-protected": (
        lambda mp: painting.register(mp, protected=True)
    ),
    "dynbind": dynbind.register,
    "enumio": enumio.register,
    "dispatch": dispatch.register,
    "loops": loops.register,
    "contracts": contracts.register,
    "portvm": portvm.register,
    "semantic": semantic.register,
    "statemachine": statemachine.register,
    "structio": structio.register,
}

PACKAGE_NAMES = tuple(PACKAGE_REGISTRY)


def register_named(mp: MacroProcessor, name: str) -> None:
    """Register the standard package called ``name`` into ``mp``;
    raises ``KeyError`` listing the valid names otherwise."""
    try:
        registrar = PACKAGE_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown package {name!r} (choose from: "
            f"{', '.join(PACKAGE_NAMES)})"
        ) from None
    registrar(mp)


def load_standard(mp: MacroProcessor) -> None:
    """Load the exception, painting (protected), dynamic-binding,
    enum-IO, loop, and struct-IO packages into ``mp``."""
    exceptions.register(mp)
    painting.register(mp, protected=True)
    dynbind.register(mp)
    enumio.register(mp)
    loops.register(mp)
    structio.register(mp)
