"""A state-machine DSL, as a macro package (paper section 4: "a
framework upon which special purpose preprocessors can be built").

.. code-block:: c

    state_machine door {
        state closed { on open_cmd go opening }
        state opening { on opened go open, on obstruction go closed }
        state open { }
    };

expands into an ``enum`` of states and a pure transition function
``int door_step(int state, int event)`` — a compile-time table, no
interpreter at runtime.

The pattern exercises the deep end of the pattern language: a
repetition of tuples whose fields include a *separated repetition of
nested tuples*, and the meta-code maps anonymous functions whose
parameters are the corresponding tuple types.
"""

from __future__ import annotations

from repro.engine import MacroProcessor

SOURCE = """
syntax decl state_machine[] {|
  $$id::name
  { $$+( state $$id::st { $$*/, ( on $$id::ev go $$id::target )::ts } )::states }
  ;
|}
{
  @id state_ids[];
  state_ids = map((struct {@id st;
                           struct {@id ev; @id target;} ts[];} s;
                   s.st),
                  states);
  return(list(
    `[enum $(symbolconc(name, "_states")) {$state_ids};],
    `[int $(symbolconc(name, "_step"))(int state, int event)
      {switch (state)
         {$(map((struct {@id st;
                         struct {@id ev; @id target;} ts[];} s;
                 `{case $(s.st):
                     {$(map((struct {@id ev; @id target;} t;
                             `{if (event == $(t.ev)) return($(t.target));}),
                            s.ts))
                      break;}}),
                states))}
       return(state);}]));
}
"""


def register(mp: MacroProcessor) -> None:
    mp.load(SOURCE, "<statemachine>")
