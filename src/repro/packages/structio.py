"""Routine code from data declarations (paper section 4's
generalization: "Persistence code, RPC code, dialog boxes, etc., can
be automatically created when data is declared").

``serializable point { int x; int y; };`` expands into the plain
struct declaration plus generated ``print_point`` and ``pack_point``
functions — one statement per field, produced by mapping an anonymous
function over the field declarations, with field names recovered via
the predefined ``decl->name`` component accessor.
"""

from __future__ import annotations

from repro.engine import MacroProcessor

SOURCE = """
syntax decl serializable[] {| $$id::name { $$+decl::fields } ; |}
{
  return(list(
    `[struct $name {$fields};],
    `[void $(symbolconc("print_", name))(struct $name *p)
      {printf("%s {", $(pstring(name)));
       $(map((@decl f;
              `{print_field($(pstring(f.name)), p->$(f.name));}),
             fields))
       printf("%s", "}");}],
    `[int $(symbolconc("pack_", name))(struct $name *p, char *buf)
      {int offset;
       offset = 0;
       $(map((@decl f;
              `{offset = offset + pack_value(buf + offset, p->$(f.name));}),
             fields))
       return(offset);}]));
}
"""


def register(mp: MacroProcessor) -> None:
    mp.load(SOURCE, "<structio>")
