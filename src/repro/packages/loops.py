"""New control constructs (paper section 4, "specialized looping
constructs ... are easily implemented").

* ``forever <stmt>`` — an endless loop;
* ``unless (<exp>) <stmt>`` — inverted ``if``;
* ``for_range i = lo to hi [step s] { stmts }`` — a counted loop whose
  optional ``step`` clause exercises the pattern language's
  ``? token pspec`` form (the paper: "the optional elements are for
  constructing statements such as loops that accept, for example,
  optional step or while clauses");
* ``with_resource (acquire, release) <stmt>`` — the general
  allocate/use/deallocate idiom;
* ``swap (type, a, b)`` — a gensym-based swap statement;
* ``unroll (n) <stmt>`` — compile-time loop unrolling; ``n`` is any C
  integer constant expression, folded with ``eval_const``.
"""

from __future__ import annotations

from repro.engine import MacroProcessor

SOURCE = """
syntax stmt forever {| $$stmt::body |}
{
  return(`{while (1) $body;});
}

syntax stmt unless {| ( $$exp::cond ) $$stmt::body |}
{
  return(`{if (!($cond)) $body;});
}

syntax stmt for_range
  {| $$id::var = $$exp::lo to $$exp::hi
     $$? step exp::stride
     { $$*stmt::body } |}
{
  if (present(stride))
    return(`{for ($var = $lo; $var <= $hi; $var = $var + $stride)
               {$body}});
  return(`{for ($var = $lo; $var <= $hi; $var++) {$body}});
}

syntax stmt with_resource {| ( $$exp::acquire , $$exp::release ) $$stmt::body |}
{
  return(`{$acquire;
           $body;
           $release;});
}

syntax stmt swap {| ( $$type_spec::type , $$exp::a , $$exp::b ) |}
{
  @id tmp = gensym();
  return(`{{$type $tmp = $a;
            $a = $b;
            $b = $tmp;}});
}

syntax stmt unroll {| ( $$exp::n ) $$stmt::body |}
{
  int i;
  int count;
  @stmt out[];
  count = eval_const(n);
  if (count < 0) error("unroll: negative repetition count");
  out = list();
  for (i = 0; i < count; i++) out = cons(body, out);
  return(`{{$out}});
}
"""


def register(mp: MacroProcessor) -> None:
    mp.load(SOURCE, "<loops>")
