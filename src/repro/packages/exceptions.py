"""The exception-handling macro package (paper section 4).

Three new statement types built on ``setjmp``/``longjmp``:

* ``throw <exp>;`` — raise a (non-zero integer) exception value;
* ``catch <tag> <handler-stmt> <body-stmt>`` — run ``body`` with a
  handler established; a throw of ``tag`` terminates the body and runs
  the handler ("termination semantics"); other values keep unwinding;
* ``unwind_protect <body-stmt> <cleanup-stmt>`` — run ``cleanup``
  whether or not ``body`` throws, then continue any unwinding.

The expanded code references the runtime support in
:data:`RUNTIME_SUPPORT` (an ``exception_ptr`` stack pointer and an
``error_handler``), which a program using the package must declare —
in C these would live in a support header.

``throw`` demonstrates conditional meta-programming: it tests
``simple_expression`` to avoid introducing a temporary when the thrown
value is an identifier or literal.
"""

from __future__ import annotations

from repro.engine import MacroProcessor

#: Declarations the expanded code links against.
RUNTIME_SUPPORT = """
int *exception_ptr;
"""

SOURCE = """
syntax stmt throw {| $$exp::value |}
{
  if (simple_expression(value))
    return(`{if (exception_ptr == 0)
               error_handler("No handler for thrown value");
             else longjmp(exception_ptr, $value);});
  else
    return(`{{int the_value = $value;
              if (exception_ptr == 0)
                error_handler("No handler for thrown value");
              else longjmp(exception_ptr, the_value);}});
}

syntax stmt catch {| $$exp::tag $$stmt::handler $$stmt::body |}
{
  return(`{{int *old_exception_ptr = exception_ptr;
            int jump_buffer[2];
            int result;
            result = setjmp(jump_buffer);
            if (result == 0)
              {exception_ptr = jump_buffer; $body}
            else {exception_ptr = old_exception_ptr;
                  if (result == $tag)
                    $handler;
                  else throw result;}}});
}

syntax stmt unwind_protect {| $$stmt::body $$stmt::cleanup |}
{
  return(`{{int *old_exception_ptr = exception_ptr;
            int jump_buffer[2];
            int result = setjmp(jump_buffer);
            if (result == 0)
              {exception_ptr = jump_buffer; $body}
            else {exception_ptr = old_exception_ptr;}
            $cleanup;
            if (result != 0) throw result;}});
}
"""


def register(mp: MacroProcessor) -> None:
    mp.load(SOURCE, "<exceptions>")
