"""The ``Painting`` resource-bracketing macro (paper sections 1 and 4).

Two variants are provided:

* :data:`SOURCE` — the simple version from the introduction, which
  brackets its body with ``BeginPaint`` / ``EndPaint``;
* :data:`PROTECTED_SOURCE` — the section 4 version whose template
  invokes the ``unwind_protect`` macro, guaranteeing ``EndPaint`` runs
  even if the body throws.  It requires
  :mod:`repro.packages.exceptions` to be loaded first.
"""

from __future__ import annotations

from repro.engine import MacroProcessor

SOURCE = """
syntax stmt Painting {| $$stmt::body |}
{
  return(`{BeginPaint(hDC, &ps);
           $body;
           EndPaint(hDC, &ps);});
}
"""

PROTECTED_SOURCE = """
syntax stmt Painting {| $$stmt::body |}
{
  return(`{BeginPaint(hDC, &ps);
           unwind_protect
             $body
             {EndPaint(hDC, &ps);}});
}
"""


def register(mp: MacroProcessor, protected: bool = False) -> None:
    """Load the Painting macro into a processor."""
    mp.load(PROTECTED_SOURCE if protected else SOURCE, "<painting>")
