"""A low-overhead portability layer as macros (paper section 4).

"There are two solutions to this problem: implement a common virtual
machine as an interpreter, which incurs a large performance penalty,
or implement a common virtual machine as a series of macros in a
programmable macro language, which ... can be very low overhead."

The package defines a tiny OS-portability VM: the program is written
against ``vm_*`` statements, and a ``metadcl`` flag — set with the
``vm_target`` macro — selects, *at expansion time*, which API the
macros compile to.  No dispatch survives to runtime: each target
yields straight-line calls into the native API.

Targets: ``unix`` (1) and ``windows`` (2).
"""

from __future__ import annotations

from repro.engine import MacroProcessor

SOURCE = """
metadcl int vm_target_kind = 1;

syntax decl vm_target[] {| $$id::name ; |}
{
  if (strcmp(pstring(name), "unix") == 0)
    vm_target_kind = 1;
  else if (strcmp(pstring(name), "windows") == 0)
    vm_target_kind = 2;
  else
    error("vm_target: unknown target", name);
  return(list());
}

syntax stmt vm_open {| ( $$exp::handle , $$exp::path ) |}
{
  if (vm_target_kind == 1)
    return(`{$handle = open($path, 0);});
  return(`{$handle = CreateFile($path, GENERIC_READ);});
}

syntax stmt vm_close {| ( $$exp::handle ) |}
{
  if (vm_target_kind == 1)
    return(`{close($handle);});
  return(`{CloseHandle($handle);});
}

syntax stmt vm_sleep {| ( $$exp::millis ) |}
{
  if (vm_target_kind == 1)
    return(`{usleep(($millis) * 1000);});
  return(`{Sleep($millis);});
}

syntax stmt vm_yield {| ( ) |}
{
  if (vm_target_kind == 1)
    return(`{sched_yield();});
  return(`{SwitchToThread();});
}
"""


def register(mp: MacroProcessor) -> None:
    mp.load(SOURCE, "<portvm>")
