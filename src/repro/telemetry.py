"""Unified telemetry: metrics registry, event log, request IDs.

Three dependency-free primitives shared by every layer of the serving
and build stack (see ``docs/OBSERVABILITY.md``):

**Metrics registry** — :class:`Counter`, :class:`Gauge` and
:class:`Histogram` with label sets, owned by a
:class:`MetricsRegistry` that renders the Prometheus text exposition
format (the ``/metrics`` endpoint of ``repro serve --metrics-port``)
and produces JSON **snapshots** that :func:`merge_snapshots` can fold
together — the aggregation substrate the multi-process sharded server
and the remote build cache (ROADMAP) build on: N processes each
snapshot their registry, one aggregator merges and re-renders.

Metric names are validated against the Prometheus data model at
registration time (``[a-zA-Z_:][a-zA-Z0-9_:]*``; labels without the
colon), so an invalid series name is a programming error caught by the
first test that builds a registry, never a scrape-time surprise.

The intended wiring is **pull, not push**: hot paths keep their plain
attribute counters (``ServerMetrics``, ``WorkerPool``,
``PersistentCache``, :class:`~repro.stats.PipelineStats`) and a
*collector* callback registered with
:meth:`MetricsRegistry.register_collector` mirrors them into metric
samples at scrape time.  Telemetry that is never scraped therefore
costs the pipeline nothing — the warm-latency budget in
``BENCH_expansion.json`` is unaffected by construction.

**Event log** — :class:`EventLog` appends structured JSONL records
(``{"ts": ..., "event": ..., "request_id": ..., ...}``) to a stream
or file, thread-safely.  The expansion daemon logs one ``request`` and
one ``response`` record per frame plus a ``span`` record per traced
expansion, all keyed by the request ID, so one request can be followed
client → daemon → expansion spans (``repro trace --events``).

**Request IDs** — :func:`new_request_id` mints the compact hex IDs the
client stamps on every frame, the server echoes in every response, and
the tracer stamps onto spans.
"""

from __future__ import annotations

import json
import re
import threading
import time
import uuid
from pathlib import Path
from typing import IO, Any, Callable, Iterable, Mapping, Sequence

from repro import faults

__all__ = [
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS_MS",
    "MetricsRegistry",
    "merge_snapshots",
    "new_request_id",
    "render_snapshot",
    "validate_label_name",
    "validate_metric_name",
]

#: Request-latency histogram bucket upper bounds, milliseconds — THE
#: shared definition.  Every producer (``ServerMetrics``, the
#: ``ms2_request_latency_ms`` series) and every consumer (``repro
#: top`` percentile math, cross-shard aggregation) uses this one
#: constant: merging shard histograms bucket-by-bucket is only sound
#: when every shard bucketed identically.
LATENCY_BUCKETS_MS: tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0,
    250.0, 500.0, 1000.0, 2500.0, 5000.0,
)

#: Prometheus data model: metric names.
METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: Prometheus data model: label names (no colon; ``__`` is reserved).
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Snapshot wire-format version (bumped on incompatible change).
SNAPSHOT_VERSION = 1


def new_request_id() -> str:
    """A fresh request correlation ID: 16 hex chars, log-friendly."""
    return uuid.uuid4().hex[:16]


def validate_metric_name(name: str) -> str:
    """``name`` if it is a valid Prometheus metric identifier."""
    if not isinstance(name, str) or not METRIC_NAME_RE.match(name):
        raise ValueError(f"invalid Prometheus metric name: {name!r}")
    return name


def validate_label_name(name: str) -> str:
    """``name`` if it is a valid Prometheus label identifier."""
    if (
        not isinstance(name, str)
        or not LABEL_NAME_RE.match(name)
        or name.startswith("__")
    ):
        raise ValueError(f"invalid Prometheus label name: {name!r}")
    return name


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    """Prometheus sample value: integers without the trailing ``.0``."""
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    as_int = int(value)
    if as_int == value:
        return str(as_int)
    return repr(value)


def _format_bound(bound: float) -> str:
    return "+Inf" if bound == float("inf") else _format_value(bound)


# ---------------------------------------------------------------------------
# Metric types
# ---------------------------------------------------------------------------


class _Metric:
    """Shared machinery: a named family of samples keyed by label
    values.  The registry's lock guards every mutation, so collectors
    running on scrape threads and hot-path increments cannot race."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str],
        lock: threading.Lock,
        merge: str = "sum",
    ) -> None:
        self.name = validate_metric_name(name)
        self.help = help
        self.labelnames = tuple(
            validate_label_name(label) for label in labelnames
        )
        if merge not in ("sum", "max", "last"):
            raise ValueError(f"unknown merge mode {merge!r}")
        #: How :func:`merge_snapshots` folds two samples of this
        #: series: ``sum`` (counters, most gauges), ``max`` (peaks),
        #: ``last`` (info-style constants).
        self.merge = merge
        self._lock = lock
        self._samples: dict[tuple[str, ...], Any] = {}

    def _key(self, labels: Mapping[str, Any]) -> tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name} takes labels "
                f"{list(self.labelnames)}, got {sorted(labels)}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def samples(self) -> list[tuple[dict[str, str], Any]]:
        """``(labels, value)`` pairs, insertion order."""
        with self._lock:
            return [
                (dict(zip(self.labelnames, key)), _copy_value(value))
                for key, value in self._samples.items()
            ]

    def clear(self) -> None:
        with self._lock:
            self._samples.clear()


def _copy_value(value: Any) -> Any:
    return dict(value) if isinstance(value, dict) else value


class Counter(_Metric):
    """A monotonically increasing total.  ``set_total`` exists for
    collectors that mirror an externally-owned counter; it must never
    be used to decrease a series."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError("counters cannot decrease")
        key = self._key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount

    def set_total(self, value: float, **labels: Any) -> None:
        """Mirror an absolute total maintained elsewhere (collector
        use; scrape-time overwrite, not an increment)."""
        key = self._key(labels)
        with self._lock:
            self._samples[key] = float(value)


class Gauge(_Metric):
    """A value that can go up and down (in-flight requests, pool
    depth, uptime)."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._samples[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)


class Histogram(_Metric):
    """Cumulative-bucket distribution (Prometheus ``le`` semantics).

    ``buckets`` are the finite upper bounds; an implicit ``+Inf``
    bucket is always appended.  Internally per-bucket (non-cumulative)
    counts are stored and the exposition renders them cumulatively.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        buckets: Sequence[float],
        labelnames: Sequence[str],
        lock: threading.Lock,
        merge: str = "sum",
    ) -> None:
        super().__init__(name, help, labelnames, lock, merge)
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram buckets must be sorted, unique")
        if bounds and bounds[-1] == float("inf"):
            bounds = bounds[:-1]
        self.buckets = bounds

    def _blank(self) -> dict[str, Any]:
        return {
            "counts": [0] * (len(self.buckets) + 1),
            "sum": 0.0,
            "count": 0,
        }

    def observe(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            sample = self._samples.setdefault(key, self._blank())
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    sample["counts"][index] += 1
                    break
            else:
                sample["counts"][-1] += 1
            sample["sum"] += value
            sample["count"] += 1

    def load(
        self,
        counts: Sequence[int],
        total: float,
        count: int,
        **labels: Any,
    ) -> None:
        """Mirror an externally-maintained histogram (collector use):
        per-bucket counts (``len(buckets) + 1`` entries, the last one
        the overflow bucket), the sum of observations, and their
        number."""
        if len(counts) != len(self.buckets) + 1:
            raise ValueError(
                f"histogram {self.name} expects "
                f"{len(self.buckets) + 1} bucket counts, got {len(counts)}"
            )
        key = self._key(labels)
        with self._lock:
            self._samples[key] = {
                "counts": [int(c) for c in counts],
                "sum": float(total),
                "count": int(count),
            }


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class MetricsRegistry:
    """A named set of metrics plus the collectors that refresh them.

    ``render_prometheus()`` and ``snapshot()`` first run every
    registered collector, so mirrored series are current at scrape
    time without any hot-path bookkeeping.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}
        self._collectors: list[Callable[["MetricsRegistry"], None]] = []

    # -- registration ---------------------------------------------------

    def _register(self, metric: _Metric) -> _Metric:
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is not None:
                if type(existing) is not type(metric) or (
                    existing.labelnames != metric.labelnames
                ):
                    raise ValueError(
                        f"metric {metric.name} already registered "
                        "with a different type or label set"
                    )
                return existing
            self._metrics[metric.name] = metric
            return metric

    def counter(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        merge: str = "sum",
    ) -> Counter:
        metric = self._register(
            Counter(name, help, labelnames, self._lock, merge)
        )
        assert isinstance(metric, Counter)
        return metric

    def gauge(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        merge: str = "sum",
    ) -> Gauge:
        metric = self._register(
            Gauge(name, help, labelnames, self._lock, merge)
        )
        assert isinstance(metric, Gauge)
        return metric

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = (),
        labelnames: Sequence[str] = (),
        merge: str = "sum",
    ) -> Histogram:
        metric = self._register(
            Histogram(name, help, buckets, labelnames, self._lock, merge)
        )
        assert isinstance(metric, Histogram)
        return metric

    def register_collector(
        self, collector: Callable[["MetricsRegistry"], None]
    ) -> None:
        """``collector(registry)`` runs before every render/snapshot;
        use it to mirror externally-owned counters into samples."""
        self._collectors.append(collector)

    # -- introspection --------------------------------------------------

    def metric_names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def collect(self) -> None:
        """Run every collector (refresh mirrored samples)."""
        for collector in self._collectors:
            collector(self)

    # -- output ---------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """A JSON-able dump of every series — the unit of cross-
        process aggregation (:func:`merge_snapshots`)."""
        self.collect()
        with self._lock:
            metrics = {}
            for name in sorted(self._metrics):
                metric = self._metrics[name]
                entry: dict[str, Any] = {
                    "type": metric.kind,
                    "help": metric.help,
                    "labelnames": list(metric.labelnames),
                    "merge": metric.merge,
                    "samples": [
                        [list(key), _copy_value(value)]
                        for key, value in metric._samples.items()
                    ],
                }
                if isinstance(metric, Histogram):
                    entry["buckets"] = list(metric.buckets)
                metrics[name] = entry
        return {"version": SNAPSHOT_VERSION, "metrics": metrics}

    def render_prometheus(self) -> str:
        """The text exposition format (``/metrics`` response body)."""
        return render_snapshot(self.snapshot())


# ---------------------------------------------------------------------------
# Snapshot aggregation / rendering (the sharded-serving substrate)
# ---------------------------------------------------------------------------


def merge_snapshots(
    snapshots: Iterable[dict[str, Any]],
) -> dict[str, Any]:
    """Fold registry snapshots from N processes into one.

    Counters and histograms sum; gauges fold per their ``merge`` mode
    (``sum`` by default, ``max`` for peaks, ``last`` for constants).
    Samples align by label values; series present in only some
    snapshots contribute what they have.
    """
    merged: dict[str, Any] = {"version": SNAPSHOT_VERSION, "metrics": {}}
    out = merged["metrics"]
    for snapshot in snapshots:
        for name, entry in (snapshot.get("metrics") or {}).items():
            target = out.get(name)
            if target is None:
                out[name] = {
                    "type": entry.get("type", "untyped"),
                    "help": entry.get("help", ""),
                    "labelnames": list(entry.get("labelnames", [])),
                    "merge": entry.get("merge", "sum"),
                    "samples": [
                        [list(key), _copy_value(value)]
                        for key, value in entry.get("samples", [])
                    ],
                }
                if "buckets" in entry:
                    out[name]["buckets"] = list(entry["buckets"])
                continue
            index = {
                tuple(key): position
                for position, (key, _) in enumerate(target["samples"])
            }
            for key, value in entry.get("samples", []):
                position = index.get(tuple(key))
                if position is None:
                    target["samples"].append(
                        [list(key), _copy_value(value)]
                    )
                    continue
                current = target["samples"][position][1]
                target["samples"][position][1] = _merge_values(
                    current, value, target.get("merge", "sum")
                )
    return merged


def _merge_values(left: Any, right: Any, mode: str) -> Any:
    if isinstance(left, dict) or isinstance(right, dict):
        # Histogram samples always sum (counts are event totals).
        counts = [
            a + b
            for a, b in zip(left.get("counts", []), right.get("counts", []))
        ]
        return {
            "counts": counts,
            "sum": left.get("sum", 0.0) + right.get("sum", 0.0),
            "count": left.get("count", 0) + right.get("count", 0),
        }
    if mode == "max":
        return max(left, right)
    if mode == "last":
        return right
    return left + right


def render_snapshot(snapshot: dict[str, Any]) -> str:
    """Prometheus text exposition from a snapshot (live or merged)."""
    lines: list[str] = []
    for name, entry in (snapshot.get("metrics") or {}).items():
        kind = entry.get("type", "untyped")
        help_text = entry.get("help", "")
        labelnames = list(entry.get("labelnames", []))
        if help_text:
            lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {kind}")
        for key, value in entry.get("samples", []):
            labels = dict(zip(labelnames, key))
            if isinstance(value, dict):
                lines.extend(
                    _render_histogram_sample(
                        name, entry.get("buckets", []), labels, value
                    )
                )
            else:
                lines.append(
                    f"{name}{_render_labels(labels)} "
                    f"{_format_value(float(value))}"
                )
    return "\n".join(lines) + "\n"


def _render_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in labels.items()
    )
    return "{" + inner + "}"


def _render_histogram_sample(
    name: str,
    buckets: Sequence[float],
    labels: Mapping[str, str],
    value: Mapping[str, Any],
) -> list[str]:
    lines = []
    cumulative = 0
    counts = list(value.get("counts", []))
    bounds = [float(b) for b in buckets] + [float("inf")]
    for bound, count in zip(bounds, counts):
        cumulative += count
        bucket_labels = dict(labels)
        bucket_labels["le"] = _format_bound(bound)
        lines.append(
            f"{name}_bucket{_render_labels(bucket_labels)} {cumulative}"
        )
    lines.append(
        f"{name}_sum{_render_labels(labels)} "
        f"{_format_value(float(value.get('sum', 0.0)))}"
    )
    lines.append(
        f"{name}_count{_render_labels(labels)} "
        f"{int(value.get('count', 0))}"
    )
    return lines


# ---------------------------------------------------------------------------
# Structured event log
# ---------------------------------------------------------------------------


#: Consecutive write failures after which an :class:`EventLog`
#: disables itself (telemetry must never take down the request path).
EVENTLOG_MAX_CONSECUTIVE_ERRORS = 5


class EventLog:
    """Append-only JSONL event sink keyed by request ID.

    Accepts an open text stream or a filesystem path (opened in append
    mode and then owned — :meth:`close` closes it).  Writes are
    serialized by a lock so executor threads and the event loop can
    log concurrently; each record carries a wall-clock ``ts`` and the
    ``event`` name, plus whatever fields the caller attaches.

    **Failure containment:** the event log is telemetry, not state.
    A sink that cannot be opened, or a write that raises (disk full,
    revoked file descriptor, injected fault), is *counted* —
    :attr:`errors_total`, the ``ms2_eventlog_errors_total`` series —
    and never propagates to the caller.  After
    :data:`EVENTLOG_MAX_CONSECUTIVE_ERRORS` consecutive failures the
    log disables itself (:attr:`disabled`) so a permanently broken
    sink stops costing a syscall-and-exception per request.  One
    successful write resets the consecutive counter.
    """

    def __init__(self, sink: str | Path | IO[str]) -> None:
        self._lock = threading.Lock()
        #: Records successfully written (tests and ``/statusz``).
        self.events_written = 0
        #: Write/open failures absorbed (never raised to callers).
        self.errors_total = 0
        #: True once the log gave up on its sink.
        self.disabled = False
        self._consecutive_errors = 0
        self._stream: IO[str] | None
        if hasattr(sink, "write"):
            self._stream = sink  # type: ignore[assignment]
            self._owns = False
        else:
            self._owns = True
            try:
                self._stream = open(sink, "a", encoding="utf-8")
            except OSError:
                # An unwritable path disables the log from the start;
                # the daemon keeps serving.
                self._stream = None
                self.errors_total += 1
                self.disabled = True

    def log(
        self,
        event: str,
        request_id: str | None = None,
        **fields: Any,
    ) -> None:
        if self.disabled:
            return
        record: dict[str, Any] = {
            "ts": round(time.time(), 6),
            "event": event,
        }
        if request_id is not None:
            record["request_id"] = request_id
        record.update(fields)
        line = json.dumps(record, default=str)
        with self._lock:
            if self.disabled or self._stream is None:
                return
            try:
                if faults.ACTIVE is not None:
                    faults.ACTIVE.hit("eventlog.write", context=event)
                self._stream.write(line + "\n")
            except (OSError, ValueError):
                self.errors_total += 1
                self._consecutive_errors += 1
                if (
                    self._consecutive_errors
                    >= EVENTLOG_MAX_CONSECUTIVE_ERRORS
                ):
                    self.disabled = True
                return
            self._consecutive_errors = 0
            self.events_written += 1

    def flush(self) -> None:
        with self._lock:
            if self._stream is None:
                return
            try:
                self._stream.flush()
            except (OSError, ValueError):
                self.errors_total += 1

    def close(self) -> None:
        with self._lock:
            if self._stream is None:
                return
            try:
                self._stream.flush()
            except (OSError, ValueError):
                pass  # already closed or sink gone
            if self._owns:
                try:
                    self._stream.close()
                except OSError:
                    pass
