"""Structured tracing and phase profiling for the MS2 pipeline.

Two observability primitives, both opt-in and both threaded through
:class:`~repro.engine.MacroProcessor`:

**Expansion spans** (:class:`ExpansionSpan`, :class:`Tracer`) — every
macro invocation opens a span recording the macro name, the pattern it
matched, the AST types of its actual parameters, the invocation site,
whether the expansion cache answered it, whether the invocation was
parsed by a compiled routine, wall time, and the size of the produced
tree.  Spans nest — recursive and template-nested expansions form a
tree — and completed spans stream into a bounded in-memory ring
buffer, to any subscribed hook callables, and optionally to a JSONL
event log.  ``repro trace <file>`` renders the span tree.

**Phase profiler** (:class:`PhaseProfiler`) — monotonic timers around
the pipeline's phases (``scan``, ``dispatch``, ``invocation-parse``,
``type-check``, ``meta-eval``, ``template-fill``, ``print``),
aggregated per session into :class:`~repro.stats.PipelineStats`.
Phases *nest* (``meta-eval`` contains ``template-fill``;
``invocation-parse`` may contain whole nested expansions), so the
per-phase totals deliberately overlap — each answers "how much wall
time passed inside this phase", not "exclusive self time".

When neither is enabled the pipeline pays only a ``None`` check per
instrumentation point, keeping the disabled-tracing overhead on the
pure-unroll benchmark under the 2% budget tracked in
``BENCH_expansion.json``.
"""

from __future__ import annotations

import contextlib
import json
from collections import deque
from dataclasses import dataclass, field
from time import perf_counter
from typing import IO, Any, Callable, Iterator

from repro.cast.base import Node, walk
from repro.provenance import provenance_of, strip_expansion

__all__ = ["ExpansionSpan", "PhaseProfiler", "Tracer", "TraceHook"]

#: Event hook signature: ``hook(event, span)`` with event one of
#: ``"start"`` / ``"end"`` / ``"error"``.
TraceHook = Callable[[str, "ExpansionSpan"], None]

#: Default capacity of the completed-span ring buffer.
DEFAULT_RING_SIZE = 4096


@dataclass(slots=True)
class ExpansionSpan:
    """One macro invocation, as observed by the tracer."""

    span_id: int
    parent_id: int | None
    macro: str
    #: The pattern the invocation matched (source text form).
    pattern: str
    #: Invocation site, ``file:line:col`` (backtrace frames stripped).
    site: str
    #: AST types of the actual parameters, pattern order.
    arg_types: tuple[str, ...]
    #: ``"compiled"`` / ``"interpreted"`` / ``"unknown"`` parse route.
    parse_mode: str
    #: Nesting depth (0 for a user-source invocation).
    depth: int
    #: ``perf_counter`` timestamp at span open.
    start: float
    #: ``"hit"`` / ``"miss"`` / ``"uncacheable"`` / ``"off"``.
    cache: str = "off"
    #: Wall-clock seconds from open to close.
    duration: float = 0.0
    #: Number of AST nodes in the produced replacement tree(s).
    output_nodes: int = 0
    #: Error text when the expansion failed, else None.
    error: str | None = None
    children: list["ExpansionSpan"] = field(default_factory=list)
    #: Correlation ID of the serving request (stamped by the tracer
    #: when :attr:`Tracer.request_id` is set; None for local runs).
    request_id: str | None = None

    def to_json(self) -> dict[str, Any]:
        """The wire form (children appear as parent-id references;
        :meth:`from_json` plus the ids rebuild the tree)."""
        record = {
            "id": self.span_id,
            "parent": self.parent_id,
            "macro": self.macro,
            "pattern": self.pattern,
            "site": self.site,
            "arg_types": list(self.arg_types),
            "parse": self.parse_mode,
            "depth": self.depth,
            "cache": self.cache,
            "ms": round(self.duration * 1000, 4),
            "output_nodes": self.output_nodes,
            "error": self.error,
        }
        if self.request_id is not None:
            record["request_id"] = self.request_id
        return record

    #: Legacy spelling of :meth:`to_json`.
    as_dict = to_json

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "ExpansionSpan":
        """Rebuild one span from a :meth:`to_json` record.  Children
        start empty — callers relink them from the parent ids (see
        :meth:`repro.options.ExpandResult.from_json`)."""
        return cls(
            span_id=int(data.get("id", 0)),
            parent_id=data.get("parent"),
            macro=data.get("macro", ""),
            pattern=data.get("pattern", ""),
            site=data.get("site", ""),
            arg_types=tuple(data.get("arg_types", ())),
            parse_mode=data.get("parse", "unknown"),
            depth=int(data.get("depth", 0)),
            start=0.0,
            cache=data.get("cache", "off"),
            duration=float(data.get("ms", 0.0)) / 1000.0,
            output_nodes=int(data.get("output_nodes", 0)),
            error=data.get("error"),
            request_id=data.get("request_id"),
        )

    def describe(self) -> str:
        """One-line rendering used by the span-tree view."""
        status = f"{self.cache}, {self.parse_mode}"
        tail = (
            f"!! {self.error.splitlines()[0]}"
            if self.error
            else f"-> {self.output_nodes} nodes"
        )
        return (
            f"{self.macro} @ {self.site} [{status}] "
            f"{self.duration * 1000:.2f}ms {tail}"
        )


class Tracer:
    """Collects :class:`ExpansionSpan` trees for one session.

    Parameters
    ----------
    hooks:
        Callables invoked as ``hook(event, span)`` on ``"start"``,
        ``"end"`` and ``"error"`` events — the subscription API used by
        tests and external tools (``MacroProcessor(trace_hooks=[...])``).
    jsonl:
        Optional writable text stream; every completed span is
        appended as one JSON line (an *event log*, in completion
        order — children complete before their parents).
    ring_size:
        Capacity of the completed-span ring buffer (oldest spans are
        evicted first).  The span *tree* in :attr:`roots` is kept in
        full for rendering.
    """

    def __init__(
        self,
        hooks: list[TraceHook] | None = None,
        jsonl: IO[str] | None = None,
        ring_size: int = DEFAULT_RING_SIZE,
    ) -> None:
        self.hooks: list[TraceHook] = list(hooks or [])
        self.jsonl = jsonl
        #: When set (the expansion daemon sets it per request), every
        #: span opened afterwards carries this correlation ID, so a
        #: request can be followed from the client through the event
        #: log into its expansion spans.
        self.request_id: str | None = None
        #: Completed spans, completion order, bounded.
        self.ring: deque[ExpansionSpan] = deque(maxlen=ring_size)
        #: Top-level spans (user-source invocations), in program order.
        self.roots: list[ExpansionSpan] = []
        self._stack: list[ExpansionSpan] = []
        self._next_id = 0

    # ------------------------------------------------------------------
    # Span lifecycle (driven by the expander)
    # ------------------------------------------------------------------

    def begin(self, definition: Any, invocation: Any) -> ExpansionSpan:
        """Open a span for ``invocation``; nests under any open span."""
        self._next_id += 1
        parent = self._stack[-1] if self._stack else None
        span = ExpansionSpan(
            span_id=self._next_id,
            parent_id=parent.span_id if parent else None,
            macro=definition.name,
            pattern=getattr(definition.pattern, "source_text", "..."),
            site=str(strip_expansion(invocation.loc)),
            arg_types=tuple(
                _arg_type_name(arg.value) for arg in invocation.args
            ),
            parse_mode=getattr(invocation, "parse_mode", None) or "unknown",
            depth=len(self._stack),
            start=perf_counter(),
            request_id=self.request_id,
        )
        if parent is not None:
            parent.children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        self._emit("start", span)
        return span

    def end(
        self, span: ExpansionSpan, result: Any, cache: str
    ) -> None:
        """Close ``span`` successfully."""
        span.duration = perf_counter() - span.start
        span.cache = cache
        span.output_nodes = _count_nodes(result)
        self._pop(span)
        self._emit("end", span)
        self._log(span)

    def fail(self, span: ExpansionSpan, error: Exception) -> None:
        """Close ``span`` after the expansion raised."""
        span.duration = perf_counter() - span.start
        span.error = str(error)
        self._pop(span)
        self._emit("error", span)
        self._log(span)

    def _pop(self, span: ExpansionSpan) -> None:
        # Tolerate unwinds that skipped inner end() calls (an error
        # propagating through several open spans).
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        self.ring.append(span)

    def _emit(self, event: str, span: ExpansionSpan) -> None:
        for hook in self.hooks:
            hook(event, span)

    def _log(self, span: ExpansionSpan) -> None:
        if self.jsonl is None:
            return
        record = {"event": "span", **span.as_dict()}
        self.jsonl.write(json.dumps(record) + "\n")

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def walk_spans(self) -> Iterator[ExpansionSpan]:
        """Every recorded span, pre-order over the tree."""
        stack = list(reversed(self.roots))
        while stack:
            span = stack.pop()
            yield span
            stack.extend(reversed(span.children))

    def as_records(self) -> list[dict[str, Any]]:
        """Every recorded span as a JSON-ready dict, pre-order — the
        serialized form carried by batch-build reports and persistent
        cache snapshots (parent ids preserve the tree shape)."""
        return [span.as_dict() for span in self.walk_spans()]

    def render_tree(self, indent: str = "  ") -> str:
        """The nested span tree as text (the ``repro trace`` output)."""
        if not self.roots:
            return "(no macro expansions recorded)"
        lines: list[str] = []
        for root in self.roots:
            self._render_into(root, 0, indent, lines)
        return "\n".join(lines)

    def _render_into(
        self,
        span: ExpansionSpan,
        level: int,
        indent: str,
        lines: list[str],
    ) -> None:
        lines.append(f"{indent * level}{span.describe()}")
        for child in span.children:
            self._render_into(child, level + 1, indent, lines)

    def close(self) -> None:
        """Flush the JSONL sink (the stream itself stays owned by the
        caller)."""
        if self.jsonl is not None:
            self.jsonl.flush()


def _arg_type_name(value: Any) -> str:
    """A compact AST-type label for one actual parameter."""
    if value is None:
        return "absent"
    if isinstance(value, list):
        if not value:
            return "[]"
        return f"{_arg_type_name(value[0])}[{len(value)}]"
    if isinstance(value, Node):
        return type(value).__name__
    return type(value).__name__


def _count_nodes(result: Any) -> int:
    if isinstance(result, Node):
        return sum(1 for _ in walk(result))
    if isinstance(result, list):
        return sum(_count_nodes(item) for item in result)
    return 0


# ---------------------------------------------------------------------------
# Phase profiling
# ---------------------------------------------------------------------------


class PhaseProfiler:
    """Aggregates per-phase wall time into a
    :class:`~repro.stats.PipelineStats` instance.

    Instrumentation sites do::

        prof = self.profiler
        if prof is None:
            <work>
        else:
            with prof.phase("dispatch"):
                <work>

    so a session without profiling pays one ``None`` check.
    """

    __slots__ = ("stats",)

    def __init__(self, stats: Any) -> None:
        self.stats = stats

    @contextlib.contextmanager
    def phase(self, name: str):
        start = perf_counter()
        try:
            yield
        finally:
            self.add(name, perf_counter() - start)

    def add(self, name: str, seconds: float) -> None:
        stats = self.stats
        stats.phase_seconds[name] = (
            stats.phase_seconds.get(name, 0.0) + seconds
        )
        stats.phase_calls[name] = stats.phase_calls.get(name, 0) + 1
