"""The semantic-macro extension (paper section 5, future work).

"Another goal is the implementation of semantic macros, which are an
extension of syntax macros where the macro processor does static
semantic analysis (e.g., type checking). ... In a semantic macro
system, which has full access to the static semantic analyzer of the
base language, the type of ``name`` would be available to the macro
system.  In this case, the macro user wouldn't need to declare the
type of ``name``."

This module provides the static-semantic substrate: a scoped C symbol
table the parser populates as it parses ordinary declarations and
function parameters.  During expansion the meta-builtins ``type_of``
(an identifier's declared type specifier) and ``has_type`` consult the
scope that is live at the invocation site — which is exactly what lets
the ``sdynamic_bind`` macro of :mod:`repro.packages.semantic` drop the
explicit type parameter the paper's §4 ``dynamic_bind`` requires.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cast import decls
from repro.cast.base import Node, clone


@dataclass(slots=True)
class CBinding:
    """One declared C name: its specifiers and full declarator."""

    name: str
    specs: decls.DeclSpecs
    declarator: Node

    def type_spec(self) -> Node | None:
        return self.specs.type_spec

    def is_scalar(self) -> bool:
        """True when the declarator adds nothing to the base type."""
        return isinstance(self.declarator, decls.NameDeclarator)


class CScope:
    """A lexical scope of C declarations (chained)."""

    __slots__ = ("parent", "bindings")

    def __init__(self, parent: "CScope | None" = None) -> None:
        self.parent = parent
        self.bindings: dict[str, CBinding] = {}

    def child(self) -> "CScope":
        return CScope(parent=self)

    def bind(self, binding: CBinding) -> None:
        self.bindings[binding.name] = binding

    def lookup(self, name: str) -> CBinding | None:
        scope: CScope | None = self
        while scope is not None:
            found = scope.bindings.get(name)
            if found is not None:
                return found
            scope = scope.parent
        return None

    def record_declaration(self, declaration: decls.Declaration) -> None:
        """Register every name a (non-meta) declaration introduces."""
        for item in declaration.init_declarators:
            if not isinstance(item, decls.InitDeclarator):
                continue
            name = _declarator_name(item.declarator)
            if name is not None:
                self.bind(
                    CBinding(name, declaration.specs, item.declarator)
                )

    def record_parameters(self, declarator: Node) -> None:
        """Register a function declarator's prototype parameters."""
        func = _find_func(declarator)
        if func is None:
            return
        for p in func.params:
            if isinstance(p, decls.ParamDecl):
                name = _declarator_name(p.declarator)
                if name is not None:
                    self.bind(CBinding(name, p.specs, p.declarator))


def _declarator_name(declarator: Node) -> str | None:
    current = declarator
    while True:
        if isinstance(current, decls.NameDeclarator):
            return current.name
        if isinstance(
            current,
            (decls.PointerDeclarator, decls.ArrayDeclarator,
             decls.FuncDeclarator),
        ):
            current = current.inner
            continue
        return None


def _find_func(declarator: Node) -> decls.FuncDeclarator | None:
    current = declarator
    while current is not None:
        if isinstance(current, decls.FuncDeclarator):
            return current
        current = getattr(current, "inner", None)
    return None


def type_spec_of(scope: CScope, name: str) -> Node | None:
    """The declared type specifier of ``name``, cloned for safe
    splicing into macro output, or None when unknown."""
    binding = scope.lookup(name)
    if binding is None or binding.specs.type_spec is None:
        return None
    return clone(binding.specs.type_spec)
