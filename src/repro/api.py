"""The stable public API of the MS2 reproduction.

Import from here.  Everything else under :mod:`repro` is an
implementation module whose layout may change between versions;
the names in ``__all__`` below are the compatibility surface —
``tests/integration/test_api_surface.py`` pins that this set never
shrinks and that every entry point keeps its call shape.

Quick tour::

    from repro.api import expand, Ms2Options

    result = expand("int x = quad(1);", options=Ms2Options(trace=True))
    print(result.output)

    # One warm daemon, many cheap expansions:
    from repro.api import serve, ServeConfig, Ms2Client
    # (daemon side)  serve(config=ServeConfig(socket="/tmp/ms2.sock"))
    # (fleet side)   serve(config=ServeConfig(port=7777, shards=4))
    # (client side)
    with Ms2Client("unix:///tmp/ms2.sock") as client:
        result = client.expand("int x = quad(1);")
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.diagnostics import Diagnostic
from repro.driver.cacheconfig import CacheConfig
from repro.engine import MacroProcessor
from repro.options import ExpandResult, Ms2Options
from repro.client import Ms2Client, RetryPolicy, parse_server_address
from repro.serveconfig import ServeConfig
from repro.server import serve

__all__ = [
    "Ms2Options",
    "ExpandResult",
    "Diagnostic",
    "MacroProcessor",
    "expand",
    "expand_file",
    "CacheConfig",
    "Ms2Client",
    "RetryPolicy",
    "ServeConfig",
    "parse_server_address",
    "serve",
]


def expand(
    source: str,
    filename: str = "<string>",
    *,
    options: Ms2Options | None = None,
    packages: Sequence[str] = (),
    package_sources: Sequence[tuple[str, str]] = (),
) -> ExpandResult:
    """Expand one program in a fresh macro context.

    ``packages`` name standard macro packages
    (:data:`repro.packages.PACKAGE_NAMES`); ``package_sources`` are
    ``(filename, source)`` pairs of macro-package files loaded after
    them — the paper's separate meta-program files.  Each call is
    hermetic: nothing leaks between calls.  For repeated expansion
    against the same preamble, keep a :class:`MacroProcessor` (one
    context, definitions accumulate) or talk to a warm daemon with
    :class:`Ms2Client`.
    """
    from repro.packages import register_named

    mp = MacroProcessor(options=options)
    for name in packages:
        register_named(mp, name)
    for package_name, package_source in package_sources:
        mp.load(package_source, str(package_name))
    return mp.expand(source, filename)


def expand_file(
    path: Path | str,
    *,
    options: Ms2Options | None = None,
    packages: Sequence[str] = (),
    package_sources: Sequence[tuple[str, str]] = (),
) -> ExpandResult:
    """:func:`expand` for a file on disk (its path becomes the
    ``filename`` carried by diagnostics and ``#line`` output)."""
    path = Path(path)
    return expand(
        path.read_text(),
        str(path),
        options=options,
        packages=packages,
        package_sources=package_sources,
    )
