"""The unified configuration surface of the expansion daemon.

Historically every knob of ``repro serve`` travelled as its own
keyword argument — ``serve(socket_path=..., max_inflight=..., ...)``
with the CLI re-deriving its own argparse defaults for all of them.
:class:`ServeConfig` replaces that sprawl with one frozen value object
following the :class:`~repro.options.Ms2Options` pattern:

- the **single source of defaults** (the ``repro serve`` argparse
  defaults and the library's behaviour both come from
  ``ServeConfig()``),
- **JSON round-trippable** (:meth:`ServeConfig.to_json` /
  :meth:`ServeConfig.from_json`), which is how the sharding
  supervisor ships one configuration to every shard process,
- **validated once** (:meth:`ServeConfig.validate`), so an
  impossible combination (no listen address, a Unix socket with
  ``shards > 1``) fails before any process is spawned.

The legacy ``serve(...)`` keyword arguments keep working through a
thin shim (:meth:`ServeConfig.from_legacy_kwargs`) that emits
:class:`~repro.options.Ms2DeprecationWarning`, exactly like the
``MacroProcessor`` legacy-kwargs shim.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.options import warn_legacy

__all__ = [
    "DEFAULT_DRAIN_S",
    "DEFAULT_MAX_FRAME_BYTES",
    "DEFAULT_MAX_INFLIGHT",
    "DEFAULT_QUEUE_LIMIT",
    "DEFAULT_WARM_SPARES",
    "SERVE_FIELDS",
    "ServeConfig",
]

#: Hard cap on one request/response frame (bytes, including newline).
DEFAULT_MAX_FRAME_BYTES = 16 * 1024 * 1024

#: Concurrent expansions (executor threads) per server process.
DEFAULT_MAX_INFLIGHT = 4

#: Admitted-but-waiting requests beyond ``max_inflight``.
DEFAULT_QUEUE_LIMIT = 16

#: Seconds SIGTERM waits for in-flight requests before forcing.
DEFAULT_DRAIN_S = 10.0

#: Warm spare workers kept per (options, preamble) pool key.
DEFAULT_WARM_SPARES = 2


@dataclass(frozen=True, slots=True)
class ServeConfig:
    """Every knob of one ``repro serve`` daemon, as a frozen value.

    Construct once, share freely: the object is immutable, comparable
    and JSON round-trippable.  Derive variants with :meth:`replace`.
    :class:`~repro.options.Ms2Options` stays a *separate* value — it
    configures expansion semantics, this configures the serving
    process around them.
    """

    # -- listen address -------------------------------------------------
    #: Unix domain socket path (exactly one of ``socket`` / ``port``).
    socket: str | None = None
    #: TCP bind address for ``port`` mode.
    host: str = "127.0.0.1"
    #: TCP port (0 = ephemeral).  Required for ``shards > 1``.
    port: int | None = None
    #: Pre-forked acceptor processes sharing the port via
    #: ``SO_REUSEPORT`` (1 = classic single-process daemon).
    shards: int = 1

    # -- preamble -------------------------------------------------------
    #: Standard macro packages pre-loaded into every warm worker.
    packages: tuple[str, ...] = ()
    #: ``(filename, source)`` pairs loaded after the packages.
    package_sources: tuple[tuple[str, str], ...] = ()

    # -- capacity -------------------------------------------------------
    #: Concurrent expansions per shard.
    max_inflight: int = DEFAULT_MAX_INFLIGHT
    #: Admitted requests waiting beyond ``max_inflight``.
    queue_limit: int = DEFAULT_QUEUE_LIMIT
    #: Hard cap on one request/response frame, bytes.
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
    #: Pre-built workers kept per options/preamble pool key.
    warm_spares: int = DEFAULT_WARM_SPARES
    #: Build the default worker pool before accepting traffic.
    prewarm: bool = True

    # -- budgets / shutdown ---------------------------------------------
    #: Server-side wall-clock budget (milliseconds) for requests whose
    #: options set no deadline of their own (None = unbounded).
    request_deadline_ms: float | None = None
    #: Seconds SIGTERM waits for in-flight requests.
    drain_s: float = DEFAULT_DRAIN_S

    # -- caching --------------------------------------------------------
    #: Persistent snapshot cache root shared with ``repro build``
    #: (``expand_file`` requests); None disables it.
    cache_dir: str | None = None

    # -- observability --------------------------------------------------
    #: HTTP telemetry port (0 = ephemeral; None = no sidecar).  With
    #: ``shards > 1`` this is the fleet gateway's port.
    metrics_port: int | None = None
    #: Bind address for ``metrics_port``.
    metrics_host: str = "127.0.0.1"
    #: JSONL event-log path (each shard appends ``.shard-N``).
    event_log: str | None = None

    # -- chaos ----------------------------------------------------------
    #: ``repro.faults`` specs armed in the daemon and exported to
    #: every shard process.
    fault_specs: tuple[str, ...] = ()
    #: Seed for the fault-injection RNG (None = random).
    fault_seed: int | None = None

    # ------------------------------------------------------------------

    def replace(self, **changes: Any) -> "ServeConfig":
        """A copy with the given fields changed."""
        return dataclasses.replace(self, **changes)

    def validate(self) -> "ServeConfig":
        """``self`` if the configuration is serveable; raises
        :class:`ValueError` naming the first impossibility."""
        if (self.socket is None) == (self.port is None):
            raise ValueError(
                "exactly one of socket or port must be given"
            )
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.shards > 1 and self.socket is not None:
            raise ValueError(
                "sharded serving requires TCP (port=...): shards "
                "share one port via SO_REUSEPORT, which Unix sockets "
                "cannot do"
            )
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.queue_limit < 0:
            raise ValueError("queue_limit must be >= 0")
        if self.max_frame_bytes < 1024:
            raise ValueError("max_frame_bytes must be >= 1024")
        if self.drain_s < 0:
            raise ValueError("drain_s must be >= 0")
        return self

    @property
    def default_deadline_s(self) -> float | None:
        """``request_deadline_ms`` in the seconds the server core
        speaks (None = unbounded)."""
        if self.request_deadline_ms is None:
            return None
        return self.request_deadline_ms / 1000.0

    # ------------------------------------------------------------------
    # Wire format (the shard supervisor ships this to children)
    # ------------------------------------------------------------------

    def to_json(self) -> dict[str, Any]:
        """Every field as JSON-able values; :meth:`from_json`
        round-trips it exactly."""
        payload: dict[str, Any] = {}
        for name in SERVE_FIELDS:
            value = getattr(self, name)
            if name == "package_sources":
                value = [[filename, source] for filename, source in value]
            elif isinstance(value, tuple):
                value = list(value)
            payload[name] = value
        return payload

    @classmethod
    def from_json(cls, data: dict[str, Any] | None) -> "ServeConfig":
        """Rebuild a config from a :meth:`to_json` payload.  Unknown
        keys are ignored (payloads written by newer versions still
        load); values of the wrong JSON type raise
        :class:`ValueError`."""
        if data is None:
            return cls()
        if not isinstance(data, dict):
            raise ValueError("serve config payload must be a JSON object")
        kwargs: dict[str, Any] = {}
        for name in SERVE_FIELDS:
            if name not in data:
                continue
            kwargs[name] = _check_field(name, data[name])
        return cls(**kwargs)

    # ------------------------------------------------------------------
    # Legacy-kwargs shim
    # ------------------------------------------------------------------

    @classmethod
    def from_legacy_kwargs(cls, **legacy: Any) -> "ServeConfig":
        """Fold the legacy ``serve(...)`` keyword arguments into a
        config value, emitting one
        :class:`~repro.options.Ms2DeprecationWarning` per call.

        The legacy spellings — ``socket_path``, ``package_names``,
        ``default_deadline_s`` — map onto the new field names;
        everything else shares its name.  Legacy defaults are
        preserved (``cache_dir=None`` disabled the persistent cache).
        """
        unknown = set(legacy) - _LEGACY_FIELDS
        if unknown:
            raise TypeError(
                f"unknown serve() option(s): {sorted(unknown)}"
            )
        warn_legacy(
            f"passing {', '.join(sorted(legacy))} as serve() keyword "
            "argument(s)",
            "ServeConfig",
        )
        kwargs: dict[str, Any] = {}
        if "socket_path" in legacy:
            value = legacy.pop("socket_path")
            kwargs["socket"] = str(value) if value is not None else None
        if "package_names" in legacy:
            kwargs["packages"] = tuple(legacy.pop("package_names"))
        if "default_deadline_s" in legacy:
            value = legacy.pop("default_deadline_s")
            kwargs["request_deadline_ms"] = (
                value * 1000.0 if value is not None else None
            )
        for name, value in legacy.items():
            if name in ("cache_dir", "event_log") and value is not None:
                value = str(value)
            elif name == "package_sources":
                value = tuple(
                    (str(filename), source) for filename, source in value
                )
            kwargs[name] = value
        return cls(**kwargs)


#: Every field name of :class:`ServeConfig`, declaration order.
SERVE_FIELDS: tuple[str, ...] = tuple(
    f.name for f in dataclasses.fields(ServeConfig)
)

#: The keyword arguments the legacy ``serve(...)`` signature took.
_LEGACY_FIELDS = frozenset(
    {
        "socket_path",
        "host",
        "port",
        "package_names",
        "package_sources",
        "cache_dir",
        "max_inflight",
        "queue_limit",
        "max_frame_bytes",
        "warm_spares",
        "default_deadline_s",
        "drain_s",
        "metrics_port",
        "metrics_host",
        "event_log",
    }
)

_DEFAULTS = None  # populated lazily below (needs the class finalized)


def _check_field(name: str, value: Any) -> Any:
    """Validate one wire value for :meth:`ServeConfig.from_json`."""
    global _DEFAULTS
    if _DEFAULTS is None:
        _DEFAULTS = ServeConfig()
    default = getattr(_DEFAULTS, name)
    if name == "package_sources":
        if not isinstance(value, list):
            raise ValueError("package_sources must be a list of pairs")
        pairs = []
        for entry in value:
            if not (
                isinstance(entry, (list, tuple))
                and len(entry) == 2
                and all(isinstance(part, str) for part in entry)
            ):
                raise ValueError(
                    "package_sources must be [filename, source] pairs"
                )
            pairs.append((entry[0], entry[1]))
        return tuple(pairs)
    if name in ("packages", "fault_specs"):
        if not (
            isinstance(value, list)
            and all(isinstance(item, str) for item in value)
        ):
            raise ValueError(f"{name} must be a list of strings")
        return tuple(value)
    if isinstance(default, bool):
        if not isinstance(value, bool):
            raise ValueError(f"serve option {name!r} must be a boolean")
        return value
    if isinstance(default, int) and default is not None:
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValueError(f"serve option {name!r} must be an integer")
        return value
    if isinstance(default, float):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(f"serve option {name!r} must be a number")
        return float(value)
    if name in ("port", "shards", "metrics_port", "fault_seed"):
        if value is None and name != "shards":
            return None
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValueError(
                f"serve option {name!r} must be an integer or null"
            )
        return value
    if name == "request_deadline_ms":
        if value is None:
            return None
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(
                f"serve option {name!r} must be a number or null"
            )
        return float(value)
    if value is None:
        return None
    if isinstance(value, (str, Path)):
        return str(value)
    raise ValueError(f"serve option {name!r} must be a string or null")
