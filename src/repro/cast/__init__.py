"""The C abstract syntax tree: the substrate the macro system operates on.

Submodules:

* :mod:`repro.cast.base` — node base class, traversal, rebuilding;
* :mod:`repro.cast.nodes` — expressions and meta-expression forms;
* :mod:`repro.cast.stmts` — statements;
* :mod:`repro.cast.decls` — declarations and top-level forms;
* :mod:`repro.cast.ctypes` — type specifiers;
* :mod:`repro.cast.printer` — the unparser (AST → C text);
* :mod:`repro.cast.sexpr` — Figure 2/3-style S-expression rendering;
* :mod:`repro.cast.builders` — the verbose ``create_*`` constructor API;
* :mod:`repro.cast.visitor` — class-based visitors.
"""

from repro.cast.base import Node, children, rebuild, transform, walk
from repro.cast.printer import render_c
from repro.cast.sexpr import render_sexpr

__all__ = [
    "Node",
    "children",
    "rebuild",
    "render_c",
    "render_sexpr",
    "transform",
    "walk",
]
