"""Structural hashing of AST values.

The expansion cache (:mod:`repro.macros.cache`) is keyed by the
*shape* of a macro invocation's actual parameters: two invocations
with structurally equal argument ASTs must produce the same key, and
— because a hash collision would silently splice the wrong expansion
into the program — the key has to be an exact structural fingerprint,
not just a hash code.

:func:`structural_key` therefore folds a value (node, list, tuple
value, literal, null) into a nested tuple of primitives.  Tuples hash
fast, compare exactly, and mirror the structural equality already
defined on :class:`~repro.cast.base.Node` (which ignores source
locations and hygiene marks, both ``compare=False``) — so the cache
inherits the paper's "encapsulation" notion of sameness for free.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Hashable

from repro.cast.base import Node

__all__ = ["structural_key", "structural_hash", "Unhashable"]


class Unhashable(Exception):
    """Raised when a value embeds something with no structural key
    (e.g. a macro-definition reference or a closure); the caller
    treats the invocation as uncacheable."""


#: Per-class cache of ``(class name, comparable field names)`` —
#: consulting ``dataclasses.fields`` per node dominates keying cost.
_KEY_PLANS: dict[type, tuple[str, tuple[str, ...]]] = {}


def _key_plan(cls: type) -> tuple[str, tuple[str, ...]]:
    plan = _KEY_PLANS.get(cls)
    if plan is None:
        plan = (
            cls.__name__,
            tuple(
                f.name
                for f in dataclasses.fields(cls)
                if f.compare and f.init and f.name not in ("loc", "mark")
            ),
        )
        _KEY_PLANS[cls] = plan
    return plan


def structural_key(value: Any) -> Hashable:
    """An exact, hashable fingerprint of ``value``.

    Nodes become ``(class-name, field-key, ...)`` tuples over their
    comparable fields (``loc`` and ``mark`` are excluded, matching
    node ``__eq__``); lists become tuples; literals pass through.
    """
    if isinstance(value, Node):
        cls_name, names = _key_plan(type(value))
        parts: list[Hashable] = [cls_name]
        for name in names:
            parts.append(structural_key(getattr(value, name)))
        return tuple(parts)
    if isinstance(value, list):
        return ("[]",) + tuple(structural_key(item) for item in value)
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    # NullValue is a singleton with default (identity) hashing.
    from repro.meta.frames import NullValue

    if isinstance(value, NullValue):
        return "<null>"
    raise Unhashable(
        f"no structural key for {type(value).__name__} values"
    )


def structural_hash(value: Any) -> int:
    """Hash of :func:`structural_key` (convenience for diagnostics)."""
    return hash(structural_key(value))
