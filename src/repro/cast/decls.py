"""Declaration-level nodes for the C AST.

These cover C90 declarations (with typedef, struct/union/enum,
pointer/array/function declarators, prototype and K&R function
definitions) plus the two top-level forms the macro language adds:
``metadcl`` meta-declarations and ``syntax`` macro definitions.

The declarator-level placeholder nodes exist so that Figure 2 of the
paper — the four distinct parses of ``[int $y;]`` by the AST type of
``y`` — is expressible.
"""

from __future__ import annotations

from dataclasses import field
from typing import Any, ClassVar

from repro.cast.base import Node, node
from repro.cast.stmts import CompoundStmt


@node
class DeclSpecs(Node):
    """Declaration specifiers: storage class, qualifiers, type specifier."""

    sexpr_name: ClassVar[str] = "decl-specs"
    storage: list[str]
    qualifiers: list[str]
    type_spec: Node | None

    def is_typedef(self) -> bool:
        return "typedef" in self.storage


# ---------------------------------------------------------------------------
# Declarators
# ---------------------------------------------------------------------------


@node
class NameDeclarator(Node):
    """The innermost declarator: the declared name."""

    sexpr_name: ClassVar[str] = "direct-declarator"
    name: str


@node
class AbstractDeclarator(Node):
    """Innermost declarator of an abstract declarator (no name)."""

    sexpr_name: ClassVar[str] = "abstract-declarator"


@node
class PointerDeclarator(Node):
    sexpr_name: ClassVar[str] = "pointer-declarator"
    inner: Node
    qualifiers: list[str]


@node
class ArrayDeclarator(Node):
    sexpr_name: ClassVar[str] = "array-declarator"
    inner: Node
    size: Node | None = None


@node
class ParamDecl(Node):
    """A prototype parameter declaration (declarator may be abstract)."""

    sexpr_name: ClassVar[str] = "param"
    specs: DeclSpecs
    declarator: Node


@node
class FuncDeclarator(Node):
    """A function declarator.

    ``params`` holds prototype parameters; ``kr_names`` holds K&R-style
    identifier lists (the paper's ``foo(a, b, c)`` example).  Exactly
    one of the two styles is populated; an empty declarator ``()`` has
    both empty with ``prototype=False``.
    """

    sexpr_name: ClassVar[str] = "function-declarator"
    inner: Node
    params: list[Node]
    kr_names: list[str]
    variadic: bool = False
    prototype: bool = True


@node
class PlaceholderDeclarator(Node):
    """A ``$``-hole standing where a declarator is expected (Figure 2)."""

    sexpr_name: ClassVar[str] = "ph"
    meta_expr: Node
    asttype: Any = field(compare=False, default=None, repr=False)


# ---------------------------------------------------------------------------
# Initialized declarators and declarations
# ---------------------------------------------------------------------------


@node
class InitDeclarator(Node):
    sexpr_name: ClassVar[str] = "init-declarator"
    declarator: Node
    init: Node | None = None


@node
class PlaceholderInitDeclarator(Node):
    """A ``$``-hole standing for an init-declarator or a list of them.

    Figure 2's first two rows: when ``asttype`` is a list type the
    placeholder is the whole init-declarator list and is spliced at
    instantiation time.
    """

    sexpr_name: ClassVar[str] = "ph"
    meta_expr: Node
    asttype: Any = field(compare=False, default=None, repr=False)


@node
class ListInitializer(Node):
    """A braced initializer ``{ e1, e2, ... }``."""

    sexpr_name: ClassVar[str] = "initializer-list"
    items: list[Node]


@node
class Declaration(Node):
    """``declaration-specifiers init-declarator-list ;``

    Also used for struct/union member declarations (no initializers)
    and K&R parameter declarations.
    """

    sexpr_name: ClassVar[str] = "declaration"
    specs: DeclSpecs
    init_declarators: list[Node]


@node
class TypeName(Node):
    """A type name as used in casts and ``sizeof`` (abstract declarator)."""

    sexpr_name: ClassVar[str] = "type-name"
    specs: DeclSpecs
    declarator: Node


@node
class FunctionDef(Node):
    """A function definition (prototype or K&R style)."""

    sexpr_name: ClassVar[str] = "function-definition"
    specs: DeclSpecs
    declarator: Node
    kr_decls: list[Node]
    body: CompoundStmt


@node
class PlaceholderDecl(Node):
    """A ``$``-hole standing where a declaration is expected."""

    sexpr_name: ClassVar[str] = "ph"
    meta_expr: Node
    asttype: Any = field(compare=False, default=None, repr=False)


# ---------------------------------------------------------------------------
# Meta-language top-level forms
# ---------------------------------------------------------------------------


@node
class MetaDecl(Node):
    """``metadcl declaration`` — a global meta-variable or meta-function."""

    sexpr_name: ClassVar[str] = "meta-declaration"
    inner: Node


@node
class MacroDef(Node):
    """A ``syntax`` macro definition.

    ``ret_spec`` is the AST-specifier name of the returned AST;
    ``returns_list`` is true when the macro name was declared with
    ``[]`` (e.g. ``syntax decl myenum[]``), meaning invocations return
    a *list* of such ASTs.  ``pattern`` is the compiled
    :class:`repro.macros.pattern.Pattern`; ``body`` the macro body.
    """

    sexpr_name: ClassVar[str] = "macro-definition"
    ret_spec: str
    returns_list: bool
    name: str
    pattern: Any = field(compare=False)
    body: CompoundStmt = field(compare=False)


@node
class TranslationUnit(Node):
    """A whole source file: declarations, function definitions, meta forms."""

    sexpr_name: ClassVar[str] = "translation-unit"
    items: list[Node]
