"""Statement nodes for the C AST.

Compound statements follow the C90 shape the paper's Figure 3 uses:
a declaration list followed by a statement list.  A placeholder (or a
macro invocation returning ``stmt`` or ``decl``) may stand wherever a
statement or declaration is expected.
"""

from __future__ import annotations

from dataclasses import field
from typing import Any, ClassVar

from repro.cast.base import Node, node


@node
class ExprStmt(Node):
    sexpr_name: ClassVar[str] = "expression-statement"
    expr: Node


@node
class CompoundStmt(Node):
    """``{ decl-list stmt-list }``.

    ``decls`` holds declarations (and decl-typed placeholders /
    invocations); ``stmts`` holds statements.  The split is decided at
    parse time — for templates this is exactly the Figure 3 problem,
    resolved by placeholder-token types.
    """

    sexpr_name: ClassVar[str] = "compound-statement"
    decls: list[Node]
    stmts: list[Node]


@node
class IfStmt(Node):
    sexpr_name: ClassVar[str] = "if-statement"
    cond: Node
    then: Node
    otherwise: Node | None = None


@node
class WhileStmt(Node):
    sexpr_name: ClassVar[str] = "while-statement"
    cond: Node
    body: Node


@node
class DoWhileStmt(Node):
    sexpr_name: ClassVar[str] = "do-statement"
    body: Node
    cond: Node


@node
class ForStmt(Node):
    """``for (init; cond; step) body`` — any of the three may be absent."""

    sexpr_name: ClassVar[str] = "for-statement"
    init: Node | None
    cond: Node | None
    step: Node | None
    body: Node


@node
class SwitchStmt(Node):
    sexpr_name: ClassVar[str] = "switch-statement"
    expr: Node
    body: Node


@node
class CaseStmt(Node):
    sexpr_name: ClassVar[str] = "case-statement"
    expr: Node
    stmt: Node


@node
class DefaultStmt(Node):
    sexpr_name: ClassVar[str] = "default-statement"
    stmt: Node


@node
class BreakStmt(Node):
    sexpr_name: ClassVar[str] = "break-statement"


@node
class ContinueStmt(Node):
    sexpr_name: ClassVar[str] = "continue-statement"


@node
class ReturnStmt(Node):
    sexpr_name: ClassVar[str] = "return-statement"
    expr: Node | None = None


@node
class GotoStmt(Node):
    sexpr_name: ClassVar[str] = "goto-statement"
    label: str


@node
class LabeledStmt(Node):
    sexpr_name: ClassVar[str] = "labeled-statement"
    label: str
    stmt: Node


@node
class NullStmt(Node):
    sexpr_name: ClassVar[str] = "null-statement"


@node
class PlaceholderStmt(Node):
    """A ``$``-hole standing in a statement position inside a template."""

    sexpr_name: ClassVar[str] = "ph"
    meta_expr: Node
    asttype: Any = field(compare=False, default=None, repr=False)
