"""Expression nodes for the C AST, plus the meta-expression forms.

The meta-language is C extended with AST values, so its expressions
reuse every node here and add three forms that only occur in
meta-code:

* :class:`Backquote` — a code template (paper section 2);
* :class:`AnonFunction` — the downward-only anonymous functions; and
* :class:`PlaceholderExpr` — a ``$``-hole inside a template.

:class:`MacroInvocation` is also defined here: it is a single node
class usable at expression, statement, and declaration positions (the
three positions the paper's system supports), carrying the parsed
actual parameters as :class:`MacroArg` bindings.
"""

from __future__ import annotations

from dataclasses import field
from typing import Any, ClassVar

from repro.cast.base import Node, node

# ---------------------------------------------------------------------------
# Literals and names
# ---------------------------------------------------------------------------


@node
class Identifier(Node):
    """A name.  This is also the ``id`` primitive AST type's node."""

    sexpr_name: ClassVar[str] = "id"
    name: str


@node
class IntLit(Node):
    """Integer literal; the ``num`` primitive AST type's main node."""

    sexpr_name: ClassVar[str] = "num"
    value: int
    text: str = ""

    def __post_init__(self) -> None:
        if not self.text:
            self.text = str(self.value)


@node
class FloatLit(Node):
    sexpr_name: ClassVar[str] = "float"
    value: float
    text: str = ""

    def __post_init__(self) -> None:
        if not self.text:
            self.text = repr(self.value)


@node
class CharLit(Node):
    sexpr_name: ClassVar[str] = "char"
    value: int
    text: str = ""

    def __post_init__(self) -> None:
        if not self.text:
            self.text = f"'{chr(self.value)}'"


@node
class StringLit(Node):
    sexpr_name: ClassVar[str] = "string"
    value: str
    text: str = ""

    def __post_init__(self) -> None:
        if not self.text:
            escaped = (
                self.value.replace("\\", "\\\\")
                .replace('"', '\\"')
                .replace("\n", "\\n")
                .replace("\t", "\\t")
            )
            self.text = f'"{escaped}"'


# ---------------------------------------------------------------------------
# Operators
# ---------------------------------------------------------------------------

#: Prefix unary operator spellings.
UNARY_OPS = frozenset({"+", "-", "*", "&", "!", "~", "++", "--"})
#: Postfix unary operator spellings.
POSTFIX_OPS = frozenset({"++", "--"})
#: Binary (non-assignment) operator spellings.
BINARY_OPS = frozenset(
    {
        "*", "/", "%", "+", "-", "<<", ">>", "<", ">", "<=", ">=",
        "==", "!=", "&", "^", "|", "&&", "||",
    }
)
#: Assignment operator spellings.
ASSIGN_OPS = frozenset(
    {"=", "+=", "-=", "*=", "/=", "%=", "<<=", ">>=", "&=", "^=", "|="}
)


@node
class UnaryOp(Node):
    """A prefix unary operation (``-x``, ``*p``, ``++i`` …)."""

    sexpr_name: ClassVar[str] = "unary"
    op: str
    operand: Node


@node
class PostfixOp(Node):
    """A postfix ``++`` or ``--``."""

    sexpr_name: ClassVar[str] = "postfix"
    op: str
    operand: Node


@node
class BinaryOp(Node):
    sexpr_name: ClassVar[str] = "binop"
    op: str
    left: Node
    right: Node


@node
class AssignOp(Node):
    sexpr_name: ClassVar[str] = "assign"
    op: str
    target: Node
    value: Node


@node
class ConditionalOp(Node):
    """The ternary ``cond ? then : otherwise``."""

    sexpr_name: ClassVar[str] = "cond"
    cond: Node
    then: Node
    otherwise: Node


@node
class CommaOp(Node):
    sexpr_name: ClassVar[str] = "comma"
    left: Node
    right: Node


@node
class Call(Node):
    sexpr_name: ClassVar[str] = "call"
    func: Node
    args: list[Node]


@node
class Index(Node):
    sexpr_name: ClassVar[str] = "index"
    base: Node
    index: Node


@node
class Member(Node):
    """``base.name`` (``arrow=False``) or ``base->name`` (``arrow=True``)."""

    sexpr_name: ClassVar[str] = "member"
    base: Node
    name: str
    arrow: bool = False


@node
class Cast(Node):
    """``(type) operand``; ``type_name`` is a :class:`~repro.cast.decls.TypeName`."""

    sexpr_name: ClassVar[str] = "cast"
    type_name: Node
    operand: Node


@node
class SizeofExpr(Node):
    sexpr_name: ClassVar[str] = "sizeof-expr"
    operand: Node


@node
class SizeofType(Node):
    sexpr_name: ClassVar[str] = "sizeof-type"
    type_name: Node


# ---------------------------------------------------------------------------
# Meta-language expression forms
# ---------------------------------------------------------------------------


@node
class PlaceholderExpr(Node):
    """A ``$name`` / ``$(expr)`` hole standing in an expression position.

    ``meta_expr`` is the parsed meta-expression to evaluate at
    expansion time; ``asttype`` is the AST type the parser's semantic
    analysis assigned to it (an :class:`repro.asttypes.types.AstType`).
    """

    sexpr_name: ClassVar[str] = "ph"
    meta_expr: Node
    asttype: Any = field(compare=False, default=None, repr=False)


@node
class Backquote(Node):
    """A code template.

    ``form`` is one of ``"exp"``, ``"stmt"``, ``"decl"``, or
    ``"pattern"``; ``template`` is the parsed template AST (containing
    placeholder nodes); ``asttype`` is the AST type the template
    produces.  For the general pattern form, ``template`` is a
    :class:`TemplateTuple` or list as dictated by the pspec.
    """

    sexpr_name: ClassVar[str] = "backquote"
    form: str
    template: Any
    asttype: Any = field(compare=False, default=None, repr=False)


@node
class AnonFunction(Node):
    """The ``( declaration-list expression )`` anonymous function.

    ``params`` is a list of ``(name, asttype_or_none)`` pairs parsed
    from the declaration list; ``body`` is the expression whose value
    the function returns (no ``return`` statement is needed).
    """

    sexpr_name: ClassVar[str] = "lambda"
    params: list[Any]
    body: Node


# ---------------------------------------------------------------------------
# Macro invocations
# ---------------------------------------------------------------------------


@node
class MacroArg(Node):
    """One named actual parameter of a macro invocation.

    ``value`` is whatever the pattern element produced: an AST node,
    a list (for repetitions), a :class:`TupleValue` (for sub-pattern
    tuples), or ``None`` (for an absent optional element).
    """

    sexpr_name: ClassVar[str] = "arg"
    name: str
    value: Any


@node
class TupleValue(Node):
    """A tuple of named components, produced by a sub-pattern."""

    sexpr_name: ClassVar[str] = "tuple"
    fields: list[MacroArg]

    def get(self, name: str) -> Any:
        for f in self.fields:
            if f.name == name:
                return f.value
        raise KeyError(name)


@node
class MacroInvocation(Node):
    """A parsed-but-not-yet-expanded macro invocation.

    One node class serves all three invocation positions (declaration,
    statement, expression); the parser only creates it where the
    macro's declared return type is legal.  ``definition`` is the
    :class:`repro.macros.definition.MacroDefinition` (not compared so
    that structural equality is about the program text).
    """

    sexpr_name: ClassVar[str] = "macro-invocation"
    name: str
    args: list[MacroArg]
    definition: Any = field(compare=False, default=None, repr=False)
    #: How the invocation was parsed (``"compiled"`` /
    #: ``"interpreted"``); recorded by the parser for tracing spans.
    parse_mode: str | None = field(compare=False, default=None, repr=False)


# ---------------------------------------------------------------------------
# Poisoned nodes (recovery mode)
# ---------------------------------------------------------------------------


@node
class ErrorExpr(Node):
    """A poisoned expression standing where parsing or expansion failed.

    Produced only in recovery mode (``expand_program(recover=True)``).
    Type inference treats it as ``any`` so one fault does not cascade
    into follow-on diagnostics; the printer renders it as a comment.
    """

    sexpr_name: ClassVar[str] = "error-exp"
    message: str = ""


@node
class ErrorStmt(Node):
    """A poisoned statement covering a recovered region of source."""

    sexpr_name: ClassVar[str] = "error-stmt"
    message: str = ""


@node
class ErrorDecl(Node):
    """A poisoned declaration / top-level item from a recovered region."""

    sexpr_name: ClassVar[str] = "error-decl"
    message: str = ""
