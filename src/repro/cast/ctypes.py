"""Type-specifier nodes for the C AST.

``type_spec`` is one of the paper's six primitive AST types, so these
nodes are first-class macro currency: a macro parameter declared
``$$type_spec::t`` binds one of these, and ``@type_spec`` declares a
meta-variable holding one.
"""

from __future__ import annotations

from dataclasses import field
from typing import Any, ClassVar

from repro.cast.base import Node, node


@node
class PrimitiveType(Node):
    """A builtin type built from specifier keywords (``unsigned long`` …)."""

    sexpr_name: ClassVar[str] = "prim-type"
    names: list[str]


@node
class TypedefNameType(Node):
    """A use of a ``typedef``-introduced name as a type specifier."""

    sexpr_name: ClassVar[str] = "typedef-name"
    name: str


@node
class StructOrUnionType(Node):
    """``struct``/``union`` specifier; ``members`` is None for a bare tag."""

    sexpr_name: ClassVar[str] = "struct-or-union"
    kind: str  # "struct" or "union"
    tag: str | None
    members: list[Node] | None = None


@node
class Enumerator(Node):
    sexpr_name: ClassVar[str] = "enumerator"
    name: str
    value: Node | None = None


@node
class EnumType(Node):
    """``enum`` specifier; ``enumerators`` is None for a bare tag.

    ``enumerators`` items are :class:`Enumerator` nodes or identifier
    placeholders (templates like ``enum color $ids;`` put a list-typed
    placeholder here — the paper's separator-free splicing example).
    """

    sexpr_name: ClassVar[str] = "enum"
    tag: str | None
    enumerators: list[Node] | None = None


@node
class AstTypeSpec(Node):
    """The meta-language type specifier ``@ ast-specifier``.

    Only legal in meta-code (macro bodies, ``metadcl``, macro function
    signatures, anonymous-function parameter lists).
    """

    sexpr_name: ClassVar[str] = "ast-type"
    name: str  # "id", "exp", "stmt", "decl", "num", "type_spec", ...


@node
class PlaceholderTypeSpec(Node):
    """A ``$``-hole standing where a type specifier is expected."""

    sexpr_name: ClassVar[str] = "ph"
    meta_expr: Node
    asttype: Any = field(compare=False, default=None, repr=False)
