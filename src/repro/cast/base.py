"""Base machinery for C AST nodes.

All AST nodes are slotted dataclasses deriving from :class:`Node`.
Structural equality ignores source locations and hygiene marks (both
are declared ``compare=False``), so two fragments parse-equal iff they
denote the same tree — the property the paper's "encapsulation"
guarantee rests on.

The module also provides generic traversal helpers (``children``,
``walk``, ``rebuild``) driven by dataclass field introspection, so
visitors do not need a hand-maintained case per node class.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Callable, ClassVar, Iterator

from repro.errors import SYNTHETIC, SourceLocation


def node(cls):
    """Class decorator: a slotted, structurally-comparable AST node."""
    return dataclass(eq=True, slots=True)(cls)


@dataclass(eq=True, slots=True)
class Node:
    """Common base for every AST node.

    ``loc`` records where the node was parsed from (synthetic for
    macro-generated code).  ``mark`` is the hygiene mark: ``None`` for
    user-written code, or an integer expansion-timestamp for nodes that
    originated in a macro template (see :mod:`repro.macros.hygiene`).
    """

    loc: SourceLocation = field(
        default=SYNTHETIC, compare=False, kw_only=True, repr=False
    )
    mark: int | None = field(
        default=None, compare=False, kw_only=True, repr=False
    )

    #: Short name used in S-expression renderings (Figures 2 and 3).
    sexpr_name: ClassVar[str] = ""


#: Per-class caches for dataclass field introspection.  ``fields()``
#: re-derives its result on every call, and the generic traversals
#: below (``children``/``walk``/``rebuild``/``clone``) sit on the
#: pipeline's hottest paths — template instantiation, hygiene marking,
#: provenance restamping — so the metadata is computed once per node
#: class instead.
_NODE_FIELDS: dict[type, tuple[dataclasses.Field, ...]] = {}
_INIT_FIELD_NAMES: dict[type, tuple[str, ...]] = {}


def node_fields(obj: Node) -> tuple[dataclasses.Field, ...]:
    """The substantive (comparable, init) fields of a node."""
    cls = obj.__class__
    cached = _NODE_FIELDS.get(cls)
    if cached is None:
        cached = _NODE_FIELDS[cls] = tuple(
            f
            for f in dataclasses.fields(obj)
            if f.compare and f.init and f.name not in ("loc", "mark")
        )
    return cached


def _init_field_names(obj: Node) -> tuple[str, ...]:
    """Names of every ``init`` field of a node, cached per class."""
    cls = obj.__class__
    cached = _INIT_FIELD_NAMES.get(cls)
    if cached is None:
        cached = _INIT_FIELD_NAMES[cls] = tuple(
            f.name for f in dataclasses.fields(obj) if f.init
        )
    return cached


def children(obj: Node) -> Iterator[Node]:
    """Yield every direct child node of ``obj`` (flattening lists)."""
    for f in node_fields(obj):
        value = getattr(obj, f.name)
        if isinstance(value, Node):
            yield value
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, Node):
                    yield item


def walk(obj: Node) -> Iterator[Node]:
    """Pre-order traversal of the subtree rooted at ``obj``."""
    yield obj
    for child in children(obj):
        yield from walk(child)


def rebuild(obj: Node, mapper: Callable[[Any], Any]) -> Node:
    """Reconstruct ``obj`` with every child value passed through ``mapper``.

    ``mapper`` receives each field value (node, list element, or plain
    datum) and returns its replacement.  List-valued fields allow the
    mapper to return a list for an element, which is spliced in place —
    this is how placeholder list-splicing works during template
    instantiation.
    """
    kwargs: dict[str, Any] = {}
    for name in _init_field_names(obj):
        value = getattr(obj, name)
        if name in ("loc", "mark"):
            kwargs[name] = value
            continue
        if isinstance(value, Node):
            kwargs[name] = mapper(value)
        elif isinstance(value, list):
            out: list[Any] = []
            for item in value:
                mapped = mapper(item) if isinstance(item, Node) else item
                if isinstance(mapped, list):
                    out.extend(mapped)
                else:
                    out.append(mapped)
            kwargs[name] = out
        else:
            kwargs[name] = value
    return type(obj)(**kwargs)


def transform(obj: Node, fn: Callable[[Node], Any]) -> Any:
    """Bottom-up rewrite: apply ``fn`` to every node, children first.

    ``fn`` may return a replacement node, a list of nodes (spliced when
    the node sits in a list-valued field), or the node unchanged.
    """
    rebuilt = rebuild(obj, lambda child: transform(child, fn))
    return fn(rebuilt)


def clone(obj: Node) -> Node:
    """Structural deep copy of a subtree.

    Unlike :func:`copy.deepcopy`, non-node field values (strings, macro
    definition references, AST types) are shared by reference — only
    the tree structure is duplicated, which is exactly what template
    instantiation needs to avoid aliasing.
    """
    return rebuild(obj, lambda child: clone(child))


def set_mark(obj: Node, mark: int) -> None:
    """Destructively stamp ``mark`` on every node in the subtree."""
    for item in walk(obj):
        item.mark = mark
