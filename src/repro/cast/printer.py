"""Unparser: render C (and macro-language) ASTs back to source text.

The printer is precedence-aware — it inserts exactly the parentheses
the tree requires, which is what makes the paper's "encapsulation"
guarantee visible: a tree built by substituting ``x + y`` and ``m + n``
into ``A * B`` prints as ``(x + y) * (m + n)``.
"""

from __future__ import annotations

from typing import Any

from repro.cast import ctypes, decls, nodes, stmts
from repro.cast.base import Node

# ---------------------------------------------------------------------------
# Expression precedence (higher binds tighter)
# ---------------------------------------------------------------------------

COMMA_PREC = 1
ASSIGN_PREC = 2
COND_PREC = 3
BINARY_PREC = {
    "||": 4, "&&": 5, "|": 6, "^": 7, "&": 8,
    "==": 9, "!=": 9,
    "<": 10, ">": 10, "<=": 10, ">=": 10,
    "<<": 11, ">>": 11,
    "+": 12, "-": 12,
    "*": 13, "/": 13, "%": 13,
}
UNARY_PREC = 15
POSTFIX_PREC = 16
PRIMARY_PREC = 17


def render_c(
    node: object, indent: str = "    ", annotate: bool = False
) -> str:
    """Render an AST node (or list of top-level items) as C source.

    With ``annotate=True``, macro-generated code is marked with
    ``/* <- Macro @ file:line */`` provenance comments and top-level
    items are preceded by ``#line`` directives mapping the output back
    to the user source that produced it (see :mod:`repro.provenance`).
    """
    printer = CPrinter(indent=indent, annotate=annotate)
    return printer.render(node)


def _frames(node: object) -> tuple:
    """The expansion backtrace riding on a node's location (duck-typed
    so this module needs no provenance import)."""
    loc = getattr(node, "loc", None)
    return getattr(loc, "expanded_from", ())


class CPrinter:
    """Stateful pretty-printer.  ``render`` dispatches on node class."""

    def __init__(self, indent: str = "    ", annotate: bool = False) -> None:
        self.indent_unit = indent
        #: Emit provenance comments + ``#line`` directives.
        self.annotate = annotate

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def render(self, node: object) -> str:
        if node is None:
            return ""
        if isinstance(node, list):
            return "\n".join(self.render(item) for item in node)
        if isinstance(node, decls.TranslationUnit):
            return "\n".join(self.top_level(item) for item in node.items) + "\n"
        if isinstance(node, (decls.Declaration, decls.FunctionDef,
                             decls.MetaDecl, decls.MacroDef)):
            return self.top_level(node).rstrip("\n")
        if isinstance(node, decls.TypeName):
            return self.type_name(node)
        if self._is_statement(node):
            return self.stmt(node, 0)
        return self.expr(node, 0)

    @staticmethod
    def _is_statement(node: object) -> bool:
        return isinstance(
            node,
            (
                stmts.ExprStmt, stmts.CompoundStmt, stmts.IfStmt,
                stmts.WhileStmt, stmts.DoWhileStmt, stmts.ForStmt,
                stmts.SwitchStmt, stmts.CaseStmt, stmts.DefaultStmt,
                stmts.BreakStmt, stmts.ContinueStmt, stmts.ReturnStmt,
                stmts.GotoStmt, stmts.LabeledStmt, stmts.NullStmt,
                stmts.PlaceholderStmt, nodes.ErrorStmt,
            ),
        )

    @staticmethod
    def _error_comment(message: str) -> str:
        """A C comment carrying a poisoned node's message.

        The message text is defanged so it cannot terminate the
        comment early or smuggle in a newline.
        """
        safe = message.replace("*/", "* /").replace("\n", " ")
        return f"/* <error: {safe}> */"

    # ------------------------------------------------------------------
    # Top-level items
    # ------------------------------------------------------------------

    def top_level(self, item: Node) -> str:
        text = self._top_level_text(item)
        if not self.annotate:
            return text
        return self._annotated_top_level(item, text)

    def _top_level_text(self, item: Node) -> str:
        if isinstance(item, decls.FunctionDef):
            return self.function_def(item)
        if isinstance(item, decls.Declaration):
            return self.declaration(item) + "\n"
        if isinstance(item, decls.MetaDecl):
            return (
                "metadcl " + self._top_level_text(item.inner).rstrip("\n")
                + "\n"
            )
        if isinstance(item, decls.MacroDef):
            return self.macro_def(item)
        if isinstance(item, decls.PlaceholderDecl):
            return self.placeholder(item) + "\n"
        if isinstance(item, nodes.MacroInvocation):
            return self.macro_invocation(item) + "\n"
        if isinstance(item, (nodes.ErrorDecl, nodes.ErrorStmt)):
            return self._error_comment(item.message) + "\n"
        raise TypeError(f"cannot print top-level item {type(item).__name__}")

    def _annotated_top_level(self, item: Node, text: str) -> str:
        frames = _frames(item)
        parts = []
        directive = self._line_directive(item, frames)
        if directive:
            parts.append(directive)
        if frames:
            parts.append(self._provenance_comment(frames))
        parts.append(text)
        return "\n".join(parts)

    def _line_directive(self, item: Node, frames: tuple) -> str | None:
        # Map generated items back to the user source that produced
        # them (the outermost expansion frame); ordinary items map to
        # their own location.
        target = frames[-1].location if frames else getattr(item, "loc", None)
        if target is None or target.line <= 0:
            return None
        if target.filename == "<synthetic>":
            return None
        return f'#line {target.line} "{target.filename}"'

    @staticmethod
    def _provenance_comment(frames: tuple) -> str:
        inner = frames[0]
        user = frames[-1].location
        return f"/* <- {inner.macro} @ {user.filename}:{user.line} */"

    def function_def(self, fn: decls.FunctionDef) -> str:
        header = self.specs_and_declarator(fn.specs, fn.declarator)
        kr = "".join(
            self.declaration(d) + "\n" for d in fn.kr_decls
        )
        body = self.stmt(fn.body, 0)
        return f"{header}\n{kr}{body}\n"

    def macro_def(self, m: decls.MacroDef) -> str:
        name = m.name + ("[]" if m.returns_list else "")
        pattern_src = getattr(m.pattern, "source_text", "...")
        body = self.stmt(m.body, 0)
        return f"syntax {m.ret_spec} {name} {{| {pattern_src} |}}\n{body}\n"

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------

    def declaration(self, d: decls.Declaration) -> str:
        specs = self.decl_specs(d.specs)
        if not d.init_declarators:
            return f"{specs};"
        items = ", ".join(
            self.init_declarator(i) for i in d.init_declarators
        )
        return f"{specs} {items};"

    def decl_specs(self, specs: decls.DeclSpecs) -> str:
        parts = list(specs.storage) + list(specs.qualifiers)
        if specs.type_spec is not None:
            parts.append(self.type_spec(specs.type_spec))
        return " ".join(parts)

    def type_spec(self, ts: Node) -> str:
        if isinstance(ts, ctypes.PrimitiveType):
            return " ".join(ts.names)
        if isinstance(ts, ctypes.TypedefNameType):
            return ts.name
        if isinstance(ts, ctypes.StructOrUnionType):
            head = ts.kind + self._tag_text(ts.tag)
            if ts.members is None:
                return head
            body = " ".join(self.declaration(m) for m in ts.members)
            return f"{head} {{{body}}}"
        if isinstance(ts, ctypes.EnumType):
            head = "enum" + self._tag_text(ts.tag)
            if ts.enumerators is None:
                return head
            items = ", ".join(self.enumerator(e) for e in ts.enumerators)
            return f"{head} {{{items}}}"
        if isinstance(ts, ctypes.AstTypeSpec):
            return f"@{ts.name}"
        if isinstance(ts, ctypes.PlaceholderTypeSpec):
            return self.placeholder(ts)
        raise TypeError(f"cannot print type spec {type(ts).__name__}")

    def _tag_text(self, tag: object) -> str:
        if tag is None:
            return ""
        if isinstance(tag, Node):
            return " " + self.placeholder(tag)
        return f" {tag}"

    def enumerator(self, e: Node) -> str:
        if isinstance(e, ctypes.Enumerator):
            if e.value is None:
                return e.name
            return f"{e.name} = {self.expr(e.value, COND_PREC)}"
        if isinstance(e, nodes.Identifier):
            return e.name
        return self.placeholder(e)

    def init_declarator(self, i: Node) -> str:
        if isinstance(i, decls.InitDeclarator):
            text = self.declarator(i.declarator)
            if i.init is not None:
                return f"{text} = {self.initializer(i.init)}"
            return text
        if isinstance(i, decls.PlaceholderInitDeclarator):
            return self.placeholder(i)
        return self.declarator(i)

    def initializer(self, init: Node) -> str:
        if isinstance(init, decls.ListInitializer):
            items = ", ".join(self.initializer(x) for x in init.items)
            return f"{{{items}}}"
        return self.expr(init, COND_PREC)

    def declarator(self, d: Node) -> str:
        if isinstance(d, decls.NameDeclarator):
            return d.name
        if isinstance(d, decls.AbstractDeclarator):
            return ""
        if isinstance(d, decls.PlaceholderDeclarator):
            return self.placeholder(d)
        if isinstance(d, decls.PointerDeclarator):
            quals = "".join(q + " " for q in d.qualifiers)
            return f"*{quals}{self.declarator(d.inner)}"
        if isinstance(d, decls.ArrayDeclarator):
            inner = self._suffix_inner(d.inner)
            size = self.expr(d.size, COND_PREC) if d.size is not None else ""
            return f"{inner}[{size}]"
        if isinstance(d, decls.FuncDeclarator):
            inner = self._suffix_inner(d.inner)
            if d.prototype:
                params = ", ".join(self.param(p) for p in d.params)
                if d.variadic:
                    params = params + ", ..." if params else "..."
                return f"{inner}({params})"
            return f"{inner}({', '.join(d.kr_names)})"
        raise TypeError(f"cannot print declarator {type(d).__name__}")

    def _suffix_inner(self, inner: Node) -> str:
        """Parenthesize a pointer declarator under an array/function suffix."""
        text = self.declarator(inner)
        if isinstance(inner, decls.PointerDeclarator):
            return f"({text})"
        return text

    def param(self, p: Node) -> str:
        if isinstance(p, decls.ParamDecl):
            specs = self.decl_specs(p.specs)
            decl = self.declarator(p.declarator)
            return f"{specs} {decl}".rstrip()
        return self.placeholder(p)

    def type_name(self, t: decls.TypeName) -> str:
        specs = self.decl_specs(t.specs)
        decl = self.declarator(t.declarator)
        return f"{specs} {decl}".rstrip()

    def specs_and_declarator(self, specs: decls.DeclSpecs, d: Node) -> str:
        specs_text = self.decl_specs(specs)
        decl_text = self.declarator(d)
        return f"{specs_text} {decl_text}".strip()

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def stmt(self, s: Node, level: int) -> str:
        pad = self.indent_unit * level
        if isinstance(s, stmts.ExprStmt):
            return f"{pad}{self.expr(s.expr, 0)};"
        if isinstance(s, stmts.NullStmt):
            return f"{pad};"
        if isinstance(s, stmts.CompoundStmt):
            return self.compound(s, level)
        if isinstance(s, stmts.IfStmt):
            then_text = self._body(s.then, level)
            if s.otherwise is not None and _ends_in_open_if(s.then):
                # Brace the then-branch so the printed else cannot
                # re-associate with an inner if (dangling else).
                then_text = (
                    f"{pad}{{\n" + self.stmt(s.then, level + 1) + f"\n{pad}}}"
                )
            text = f"{pad}if ({self.expr(s.cond, 0)})\n" + then_text
            if s.otherwise is not None:
                text += f"\n{pad}else\n" + self._body(s.otherwise, level)
            return text
        if isinstance(s, stmts.WhileStmt):
            return (
                f"{pad}while ({self.expr(s.cond, 0)})\n"
                + self._body(s.body, level)
            )
        if isinstance(s, stmts.DoWhileStmt):
            return (
                f"{pad}do\n{self._body(s.body, level)}\n"
                f"{pad}while ({self.expr(s.cond, 0)});"
            )
        if isinstance(s, stmts.ForStmt):
            init = self.expr(s.init, 0) if s.init is not None else ""
            cond = self.expr(s.cond, 0) if s.cond is not None else ""
            step = self.expr(s.step, 0) if s.step is not None else ""
            return (
                f"{pad}for ({init}; {cond}; {step})\n"
                + self._body(s.body, level)
            )
        if isinstance(s, stmts.SwitchStmt):
            return (
                f"{pad}switch ({self.expr(s.expr, 0)})\n"
                + self._body(s.body, level)
            )
        if isinstance(s, stmts.CaseStmt):
            return (
                f"{pad}case {self.expr(s.expr, COND_PREC)}:\n"
                + self.stmt(s.stmt, level + 1)
            )
        if isinstance(s, stmts.DefaultStmt):
            return f"{pad}default:\n" + self.stmt(s.stmt, level + 1)
        if isinstance(s, stmts.BreakStmt):
            return f"{pad}break;"
        if isinstance(s, stmts.ContinueStmt):
            return f"{pad}continue;"
        if isinstance(s, stmts.ReturnStmt):
            if s.expr is None:
                return f"{pad}return;"
            return f"{pad}return {self.expr(s.expr, 0)};"
        if isinstance(s, stmts.GotoStmt):
            return f"{pad}goto {s.label};"
        if isinstance(s, stmts.LabeledStmt):
            return f"{pad}{s.label}:\n" + self.stmt(s.stmt, level)
        if isinstance(s, stmts.PlaceholderStmt):
            return f"{pad}{self.placeholder(s)};"
        if isinstance(s, nodes.MacroInvocation):
            return f"{pad}{self.macro_invocation(s)}"
        if isinstance(s, decls.Declaration):
            return f"{pad}{self.declaration(s)}"
        if isinstance(s, decls.PlaceholderDecl):
            return f"{pad}{self.placeholder(s)};"
        if isinstance(s, nodes.ErrorStmt):
            return f"{pad}{self._error_comment(s.message)};"
        if isinstance(s, nodes.ErrorDecl):
            return f"{pad}{self._error_comment(s.message)}"
        raise TypeError(f"cannot print statement {type(s).__name__}")

    def compound(self, c: stmts.CompoundStmt, level: int) -> str:
        pad = self.indent_unit * level
        lines = [pad + "{"]
        if self.annotate:
            enclosing = _frames(c)
            for d in c.decls:
                lines.append(self._compound_child(d, level + 1, enclosing))
            for s in c.stmts:
                lines.append(self._compound_child(s, level + 1, enclosing))
        else:
            for d in c.decls:
                lines.append(self.stmt(d, level + 1))
            for s in c.stmts:
                lines.append(self.stmt(s, level + 1))
        lines.append(pad + "}")
        return "\n".join(lines)

    def _compound_child(
        self, s: Node, level: int, enclosing: tuple
    ) -> str:
        """Print a compound child, flagging transitions into code with
        a *different* (e.g. deeper) expansion backtrace than the
        enclosing block."""
        text = self.stmt(s, level)
        frames = _frames(s)
        if frames and frames != enclosing:
            head, sep, rest = text.partition("\n")
            text = f"{head} {self._provenance_comment(frames)}{sep}{rest}"
        return text

    def _body(self, s: Node, level: int) -> str:
        """Print a statement used as a control-flow body."""
        if isinstance(s, stmts.CompoundStmt):
            return self.compound(s, level)
        return self.stmt(s, level + 1)



    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def expr(self, e: Node, min_prec: int) -> str:
        text, prec = self._expr_prec(e)
        if prec < min_prec:
            return f"({text})"
        return text

    def _expr_prec(self, e: Node) -> tuple[str, int]:
        # Exact-class dispatch (node classes are leaves): one dict
        # probe instead of a ~20-branch isinstance chain on the
        # printer's hottest function.
        handler = _EXPR_HANDLERS.get(e.__class__)
        if handler is None:
            raise TypeError(f"cannot print expression {type(e).__name__}")
        return handler(self, e)

    def _px_identifier(self, e: Node) -> tuple[str, int]:
        return e.name, PRIMARY_PREC

    def _px_error(self, e: Node) -> tuple[str, int]:
        # A poisoned expression must still be a valid C expression;
        # the constant carries the message alongside as a comment.
        return f"0 {self._error_comment(e.message)}", PRIMARY_PREC

    def _px_literal(self, e: Node) -> tuple[str, int]:
        return e.text, PRIMARY_PREC

    def _px_binary(self, e: Node) -> tuple[str, int]:
        prec = BINARY_PREC[e.op]
        left = self.expr(e.left, prec)
        right = self.expr(e.right, prec + 1)
        return f"{left} {e.op} {right}", prec

    def _px_assign(self, e: Node) -> tuple[str, int]:
        target = self.expr(e.target, UNARY_PREC)
        value = self.expr(e.value, ASSIGN_PREC)
        return f"{target} {e.op} {value}", ASSIGN_PREC

    def _px_conditional(self, e: Node) -> tuple[str, int]:
        cond = self.expr(e.cond, COND_PREC + 1)
        then = self.expr(e.then, 0)
        other = self.expr(e.otherwise, COND_PREC)
        return f"{cond} ? {then} : {other}", COND_PREC

    def _px_comma(self, e: Node) -> tuple[str, int]:
        left = self.expr(e.left, COMMA_PREC)
        right = self.expr(e.right, COMMA_PREC + 1)
        return f"{left}, {right}", COMMA_PREC

    def _px_unary(self, e: Node) -> tuple[str, int]:
        operand = self.expr(e.operand, UNARY_PREC)
        # '- -a' must not merge into '--a' (nor '+ +a', '& &x').
        sep = " " if operand.startswith(e.op[-1]) else ""
        return f"{e.op}{sep}{operand}", UNARY_PREC

    def _px_postfix(self, e: Node) -> tuple[str, int]:
        operand = self.expr(e.operand, POSTFIX_PREC)
        return f"{operand}{e.op}", POSTFIX_PREC

    def _px_call(self, e: Node) -> tuple[str, int]:
        func = self.expr(e.func, POSTFIX_PREC)
        args = ", ".join(self.expr(a, ASSIGN_PREC) for a in e.args)
        return f"{func}({args})", POSTFIX_PREC

    def _px_index(self, e: Node) -> tuple[str, int]:
        base = self.expr(e.base, POSTFIX_PREC)
        return f"{base}[{self.expr(e.index, 0)}]", POSTFIX_PREC

    def _px_member(self, e: Node) -> tuple[str, int]:
        base = self.expr(e.base, POSTFIX_PREC)
        if isinstance(e.base, (nodes.IntLit, nodes.FloatLit)):
            # '0.a' would lex as the float '0.' — parenthesize.
            base = f"({base})"
        op = "->" if e.arrow else "."
        if isinstance(e.name, Node):
            return f"{base}{op}{self.placeholder(e.name)}", POSTFIX_PREC
        return f"{base}{op}{e.name}", POSTFIX_PREC

    def _px_cast(self, e: Node) -> tuple[str, int]:
        operand = self.expr(e.operand, UNARY_PREC)
        return f"({self.type_name(e.type_name)}){operand}", UNARY_PREC

    def _px_sizeof_expr(self, e: Node) -> tuple[str, int]:
        return f"sizeof {self.expr(e.operand, UNARY_PREC)}", UNARY_PREC

    def _px_sizeof_type(self, e: Node) -> tuple[str, int]:
        return f"sizeof({self.type_name(e.type_name)})", UNARY_PREC

    def _px_placeholder(self, e: Node) -> tuple[str, int]:
        return self.placeholder(e), PRIMARY_PREC

    def _px_backquote(self, e: Node) -> tuple[str, int]:
        return self.backquote(e), PRIMARY_PREC

    def _px_anon_function(self, e: Node) -> tuple[str, int]:
        return self.anon_function(e), PRIMARY_PREC

    def _px_macro_invocation(self, e: Node) -> tuple[str, int]:
        return self.macro_invocation(e), PRIMARY_PREC

    # ------------------------------------------------------------------
    # Meta forms
    # ------------------------------------------------------------------

    def placeholder(self, ph: Node) -> str:
        meta = ph.meta_expr  # type: ignore[attr-defined]
        if isinstance(meta, nodes.Identifier):
            return f"${meta.name}"
        return f"$({self.expr(meta, 0)})"

    def backquote(self, b: nodes.Backquote) -> str:
        if b.form == "exp":
            return f"`({self.expr(b.template, 0)})"
        if b.form == "stmt":
            body = self.stmt(b.template, 0)
            return f"`{body}" if body.startswith("{") else f"`{{{body}}}"
        if b.form == "decl":
            return f"`[{self._top_level_text(b.template).rstrip()}]"
        return "`{| ... |}"

    def anon_function(self, fn: nodes.AnonFunction) -> str:
        params = " ".join(
            f"@{t} {name};" if t is not None else f"{name};"
            for name, t in fn.params
        )
        return f"({params} {self.expr(fn.body, 0)})"

    def macro_invocation(self, inv: nodes.MacroInvocation) -> str:
        if inv.definition is not None and hasattr(
            inv.definition, "render_invocation"
        ):
            return inv.definition.render_invocation(inv, self)
        args = ", ".join(
            f"{a.name}: {self._arg_text(a.value)}" for a in inv.args
        )
        return f"{inv.name} {{| {args} |}}"

    def _arg_text(self, value: object) -> str:
        if value is None:
            return "<absent>"
        if isinstance(value, list):
            return "[" + ", ".join(self._arg_text(v) for v in value) + "]"
        if isinstance(value, nodes.TupleValue):
            inner = ", ".join(
                f"{f.name}: {self._arg_text(f.value)}" for f in value.fields
            )
            return f"({inner})"
        if isinstance(value, decls.TypeName):
            return self.type_name(value)
        if self._is_statement(value):  # type: ignore[arg-type]
            return self.stmt(value, 0)  # type: ignore[arg-type]
        if isinstance(value, (decls.Declaration, decls.FunctionDef)):
            return self.render(value)
        if isinstance(value, ctypes.PrimitiveType) or isinstance(
            value, (ctypes.TypedefNameType, ctypes.StructOrUnionType,
                    ctypes.EnumType)
        ):
            return self.type_spec(value)
        return self.expr(value, 0)  # type: ignore[arg-type]


#: Exact node class → unbound ``_px_*`` handler, consulted by
#: :meth:`CPrinter._expr_prec` with a single dict probe.
_EXPR_HANDLERS: dict[type, Any] = {
    nodes.Identifier: CPrinter._px_identifier,
    nodes.IntLit: CPrinter._px_literal,
    nodes.FloatLit: CPrinter._px_literal,
    nodes.CharLit: CPrinter._px_literal,
    nodes.StringLit: CPrinter._px_literal,
    nodes.BinaryOp: CPrinter._px_binary,
    nodes.AssignOp: CPrinter._px_assign,
    nodes.ConditionalOp: CPrinter._px_conditional,
    nodes.CommaOp: CPrinter._px_comma,
    nodes.UnaryOp: CPrinter._px_unary,
    nodes.PostfixOp: CPrinter._px_postfix,
    nodes.Call: CPrinter._px_call,
    nodes.Index: CPrinter._px_index,
    nodes.Member: CPrinter._px_member,
    nodes.Cast: CPrinter._px_cast,
    nodes.SizeofExpr: CPrinter._px_sizeof_expr,
    nodes.SizeofType: CPrinter._px_sizeof_type,
    nodes.PlaceholderExpr: CPrinter._px_placeholder,
    nodes.Backquote: CPrinter._px_backquote,
    nodes.AnonFunction: CPrinter._px_anon_function,
    nodes.MacroInvocation: CPrinter._px_macro_invocation,
    nodes.ErrorExpr: CPrinter._px_error,
}


def _ends_in_open_if(s: Node) -> bool:
    """True when ``s`` printed without braces would end with an
    else-less ``if`` that could capture a following ``else``."""
    current: Node | None = s
    while current is not None:
        if isinstance(current, stmts.CompoundStmt):
            return False
        if isinstance(current, stmts.IfStmt):
            if current.otherwise is None:
                return True
            current = current.otherwise
            continue
        if isinstance(current, (stmts.WhileStmt, stmts.ForStmt)):
            current = current.body
            continue
        if isinstance(current, (stmts.LabeledStmt, stmts.CaseStmt,
                                stmts.DefaultStmt)):
            current = current.stmt
            continue
        return False
    return False
