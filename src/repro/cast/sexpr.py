"""S-expression rendering of ASTs, in the style of Figures 2 and 3.

The paper prints parse trees as ``(node-name child1 ... childn)`` with
list elements written within parentheses.  Two modes are provided:

* the full mode spells out node names (used by Figure 2), and
* the abbreviated mode uses the paper's Figure 3 contractions
  (``c-s`` for compound-statement, ``r-s`` for return-statement,
  ``exp`` for expression, ``decl`` for declaration, ...), rendering
  plain declarations as ``(decl "int x")``.
"""

from __future__ import annotations

from repro.cast import decls, nodes, stmts
from repro.cast.base import Node

_ABBREVIATIONS = {
    "compound-statement": "c-s",
    "return-statement": "r-s",
    "expression-statement": "e-s",
    "statement": "stmt",
    "identifier": "id",
    "expression": "exp",
    "declaration": "decl",
}

_PLACEHOLDER_TYPES = (
    nodes.PlaceholderExpr,
    stmts.PlaceholderStmt,
    decls.PlaceholderDecl,
    decls.PlaceholderDeclarator,
    decls.PlaceholderInitDeclarator,
)


def render_sexpr(value: object, abbrev: bool = False) -> str:
    """Render a node (or list of nodes) as an S-expression string."""
    return _Renderer(abbrev).render(value)


class _Renderer:
    def __init__(self, abbrev: bool) -> None:
        self.abbrev = abbrev

    def name(self, label: str) -> str:
        if self.abbrev:
            return _ABBREVIATIONS.get(label, label)
        return label

    def render(self, value: object) -> str:
        if value is None:
            return "()"
        if isinstance(value, list):
            return "(" + " ".join(self.render(v) for v in value) + ")"
        if isinstance(value, decls.PlaceholderDeclarator):
            # Figure 2: an id-typed placeholder in a declarator position
            # wraps in a direct-declarator; a declarator-typed one *is*
            # the declarator.
            from repro.asttypes.types import ID

            name = self._placeholder_name(value)
            if value.asttype is not None and value.asttype.is_usable_as(ID):
                return f"(direct-declarator {name})"
            return name
        if isinstance(value, _PLACEHOLDER_TYPES):
            return self._placeholder_name(value)
        if isinstance(value, Node):
            method = getattr(
                self, "_render_" + type(value).__name__, self._render_generic
            )
            return method(value)
        return str(value)

    # -- placeholders -------------------------------------------------

    def _placeholder_name(self, ph: Node) -> str:
        meta = ph.meta_expr  # type: ignore[attr-defined]
        if isinstance(meta, nodes.Identifier):
            return meta.name
        return "$(...)"

    # -- expressions --------------------------------------------------

    def _render_Identifier(self, n: nodes.Identifier) -> str:
        return f"(id {n.name})"

    def _render_IntLit(self, n: nodes.IntLit) -> str:
        return f"(num {n.value})"

    def _render_StringLit(self, n: nodes.StringLit) -> str:
        return f"(string {n.text})"

    def _render_BinaryOp(self, n: nodes.BinaryOp) -> str:
        return f"({n.op} {self.render(n.left)} {self.render(n.right)})"

    def _render_Call(self, n: nodes.Call) -> str:
        args = " ".join(self.render(a) for a in n.args)
        return f"(call {self.render(n.func)}{' ' + args if args else ''})"

    # -- statements ---------------------------------------------------

    def _render_ExprStmt(self, n: stmts.ExprStmt) -> str:
        return f"({self.name('expression-statement')} {self._exp(n.expr)})"

    def _render_ReturnStmt(self, n: stmts.ReturnStmt) -> str:
        label = self.name("return-statement")
        if n.expr is None:
            return f"({label})"
        return f"({label} {self._exp(n.expr)})"

    def _exp(self, expr: Node) -> str:
        """Figure 3 wraps statement-level expressions as ``(exp ...)``."""
        return f"({self.name('expression')} {self.render(expr)})"

    def _render_CompoundStmt(self, n: stmts.CompoundStmt) -> str:
        label = self.name("compound-statement")
        decls_part = f"(decl-list {self.render(n.decls)})"
        stmts_part = f"(stmt-list {self.render(n.stmts)})"
        return f"({label} {decls_part} {stmts_part})"

    # -- declarations -------------------------------------------------

    def _render_Declaration(self, n: decls.Declaration) -> str:
        label = self.name("declaration")
        if self.abbrev:
            from repro.cast.printer import render_c

            flat = render_c(n).strip().rstrip(";")
            return f'({label} "{flat}")'
        specs = self._render_specs(n.specs)
        # A single list-typed placeholder *is* the init-declarator list
        # (Figure 2, first row): render it bare, not parenthesized.
        if len(n.init_declarators) == 1 and isinstance(
            n.init_declarators[0], decls.PlaceholderInitDeclarator
        ):
            ph = n.init_declarators[0]
            from repro.asttypes.types import ListType

            if isinstance(ph.asttype, ListType):
                return f"({label} {specs} {self._placeholder_name(ph)})"
        return f"({label} {specs} {self.render(n.init_declarators)})"

    def _render_specs(self, specs: decls.DeclSpecs) -> str:
        parts = list(specs.storage) + list(specs.qualifiers)
        if specs.type_spec is not None:
            parts.append(self._type_spec_text(specs.type_spec))
        return "(" + " ".join(parts) + ")"

    def _type_spec_text(self, ts: Node) -> str:
        from repro.cast import ctypes

        if isinstance(ts, ctypes.PrimitiveType):
            return " ".join(ts.names)
        if isinstance(ts, ctypes.TypedefNameType):
            return ts.name
        if isinstance(ts, ctypes.StructOrUnionType):
            return f"{ts.kind} {ts.tag or '<anon>'}"
        if isinstance(ts, ctypes.EnumType):
            return f"enum {ts.tag or '<anon>'}"
        if isinstance(ts, ctypes.AstTypeSpec):
            return f"@{ts.name}"
        if isinstance(ts, ctypes.PlaceholderTypeSpec):
            return self._placeholder_name(ts)
        return self.render(ts)

    def _render_InitDeclarator(self, n: decls.InitDeclarator) -> str:
        init = self.render(n.init) if n.init is not None else "()"
        return f"(init-declarator {self.render(n.declarator)} {init})"

    def _render_NameDeclarator(self, n: decls.NameDeclarator) -> str:
        return f"(direct-declarator {n.name})"

    # -- fallback -----------------------------------------------------

    def _render_generic(self, n: Node) -> str:
        from repro.cast.base import node_fields

        parts: list[str] = [self.name(n.sexpr_name or type(n).__name__)]
        for f in node_fields(n):
            value = getattr(n, f.name)
            if isinstance(value, (Node, list)) or value is None:
                parts.append(self.render(value))
            else:
                parts.append(str(value))
        return "(" + " ".join(parts) + ")"
