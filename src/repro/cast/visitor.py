"""Class-based visitor over C ASTs.

:class:`NodeVisitor` dispatches on the node's class name
(``visit_Identifier`` etc.), falling back to :meth:`generic_visit`
which recurses into children.  This complements the functional helpers
in :mod:`repro.cast.base` (``walk``, ``transform``) for passes that
need per-class behaviour with inherited defaults, such as the hygiene
renamer and the free-variable analysis.
"""

from __future__ import annotations

from typing import Any

from repro.cast.base import Node, children


class NodeVisitor:
    """Read-only visitor; override ``visit_<ClassName>`` methods."""

    def visit(self, node: Node) -> Any:
        method = getattr(self, "visit_" + type(node).__name__, None)
        if method is not None:
            return method(node)
        return self.generic_visit(node)

    def generic_visit(self, node: Node) -> Any:
        for child in children(node):
            self.visit(child)
        return None


def count_nodes(root: Node) -> int:
    """Number of nodes in the subtree (used by size benchmarks)."""
    from repro.cast.base import walk

    return sum(1 for _ in walk(root))


def collect(root: Node, node_type: type) -> list[Node]:
    """Every descendant of ``root`` that is an instance of ``node_type``."""
    from repro.cast.base import walk

    return [n for n in walk(root) if isinstance(n, node_type)]
