"""The verbose constructor API for building ASTs by hand.

This is the ``create_*`` style the paper's introduction demonstrates
(and laments) — the code every meta-programming system without
templates forces on its users:

.. code-block:: c

    create_compound_statement(
        createDeclarationList(),
        createStatementList(
            createFunctionCall(createId("BeginPaint"), ...),
            s,
            ...))

We provide it both as a genuinely useful programmatic API and as the
baseline for the template-vs-constructors benchmark
(``benchmarks/test_template_vs_constructors.py``).  Function names
follow the paper's spelling (converted to snake_case), with aliases
matching the paper verbatim.
"""

from __future__ import annotations

from repro.cast import ctypes, decls, nodes, stmts
from repro.cast.base import Node

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


def create_id(name: str) -> nodes.Identifier:
    """``createId("x")`` — an identifier node."""
    return nodes.Identifier(name)


def create_num(value: int) -> nodes.IntLit:
    """An integer literal node."""
    return nodes.IntLit(value)


def create_string(value: str) -> nodes.StringLit:
    """A string literal node (escapes handled by the printer)."""
    return nodes.StringLit(value)


def create_function_call(func: Node, args: list[Node]) -> nodes.Call:
    """``createFunctionCall(f, createArgumentList(...))``."""
    return nodes.Call(func, list(args))


def create_argument_list(*args: Node) -> list[Node]:
    """``createArgumentList(...)`` — a call's argument list."""
    return list(args)


def create_address_of(operand: Node) -> nodes.UnaryOp:
    """``createAddressOf(e)`` — the ``&e`` expression."""
    return nodes.UnaryOp("&", operand)


def create_deref(operand: Node) -> nodes.UnaryOp:
    """The ``*e`` dereference expression."""
    return nodes.UnaryOp("*", operand)


def create_binary(op: str, left: Node, right: Node) -> nodes.BinaryOp:
    """A binary operation; validates the operator spelling."""
    if op not in nodes.BINARY_OPS:
        raise ValueError(f"not a binary operator: {op!r}")
    return nodes.BinaryOp(op, left, right)


def create_assignment(target: Node, value: Node, op: str = "=") -> nodes.AssignOp:
    """An assignment expression (``=`` or a compound operator)."""
    if op not in nodes.ASSIGN_OPS:
        raise ValueError(f"not an assignment operator: {op!r}")
    return nodes.AssignOp(op, target, value)


def create_conditional(cond: Node, then: Node, otherwise: Node) -> Node:
    """The ternary ``cond ? then : otherwise``."""
    return nodes.ConditionalOp(cond, then, otherwise)


def create_member(base: Node, name: str, arrow: bool = False) -> nodes.Member:
    """``base.name`` or ``base->name`` member access."""
    return nodes.Member(base, name, arrow)


def create_index(base: Node, index: Node) -> nodes.Index:
    """The ``base[index]`` subscript expression."""
    return nodes.Index(base, index)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


def create_expression_statement(expr: Node) -> stmts.ExprStmt:
    """Wrap an expression as a statement."""
    return stmts.ExprStmt(expr)


def create_declaration_list(*items: Node) -> list[Node]:
    """``createDeclarationList()`` — the decl-list of a compound statement."""
    return list(items)


def create_statement_list(*items: Node) -> list[Node]:
    """``createStatementList(...)`` — expressions are wrapped as stmts."""
    out: list[Node] = []
    for item in items:
        if CPrinterStmtCheck.is_statement(item):
            out.append(item)
        else:
            out.append(stmts.ExprStmt(item))
    return out


def create_compound_statement(
    declarations: list[Node], statements: list[Node]
) -> stmts.CompoundStmt:
    """``create_compound_statement(decl_list, stmt_list)``."""
    return stmts.CompoundStmt(list(declarations), list(statements))


def create_if(cond: Node, then: Node, otherwise: Node | None = None) -> stmts.IfStmt:
    """An ``if`` statement (optional else branch)."""
    return stmts.IfStmt(cond, then, otherwise)


def create_while(cond: Node, body: Node) -> stmts.WhileStmt:
    """A ``while`` loop."""
    return stmts.WhileStmt(cond, body)


def create_return(expr: Node | None = None) -> stmts.ReturnStmt:
    """A ``return`` statement (void when no expression)."""
    return stmts.ReturnStmt(expr)


def create_switch(expr: Node, body: Node) -> stmts.SwitchStmt:
    """A ``switch`` statement."""
    return stmts.SwitchStmt(expr, body)


def create_case(expr: Node, stmt: Node) -> stmts.CaseStmt:
    """A ``case expr:`` label with its statement."""
    return stmts.CaseStmt(expr, stmt)


def create_default(stmt: Node) -> stmts.DefaultStmt:
    """A ``default:`` label with its statement."""
    return stmts.DefaultStmt(stmt)


def create_break() -> stmts.BreakStmt:
    """A ``break`` statement."""
    return stmts.BreakStmt()


def create_null_statement() -> stmts.NullStmt:
    """The empty statement ``;``."""
    return stmts.NullStmt()


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


def create_primitive_type(*names: str) -> ctypes.PrimitiveType:
    """A builtin type specifier from keywords."""
    return ctypes.PrimitiveType(list(names))


def create_decl_specs(
    type_spec: Node,
    storage: list[str] | None = None,
    qualifiers: list[str] | None = None,
) -> decls.DeclSpecs:
    """Declaration specifiers from a type spec plus optional storage/qualifiers."""
    return decls.DeclSpecs(storage or [], qualifiers or [], type_spec)


def create_declaration(
    specs: decls.DeclSpecs, *init_declarators: Node
) -> decls.Declaration:
    """A declaration from specifiers and init-declarators."""
    return decls.Declaration(specs, list(init_declarators))


def create_simple_declaration(
    type_names: list[str], name: str, init: Node | None = None
) -> decls.Declaration:
    """``int x = e;`` in one call — the common case."""
    specs = create_decl_specs(create_primitive_type(*type_names))
    declarator = decls.NameDeclarator(name)
    return decls.Declaration(specs, [decls.InitDeclarator(declarator, init)])


def create_init_declarator(
    declarator: Node, init: Node | None = None
) -> decls.InitDeclarator:
    """A declarator with an optional initializer."""
    return decls.InitDeclarator(declarator, init)


def create_name_declarator(name: str) -> decls.NameDeclarator:
    """The innermost (name) declarator."""
    return decls.NameDeclarator(name)


def create_pointer_declarator(
    inner: Node, qualifiers: list[str] | None = None
) -> decls.PointerDeclarator:
    """A pointer declarator wrapping ``inner``."""
    return decls.PointerDeclarator(inner, qualifiers or [])


def create_enum(tag: str | None, names: list[str]) -> ctypes.EnumType:
    """An enum specifier with plain-valued enumerators."""
    return ctypes.EnumType(tag, [ctypes.Enumerator(n) for n in names])


def create_function_def(
    specs: decls.DeclSpecs, declarator: Node, body: stmts.CompoundStmt
) -> decls.FunctionDef:
    """A function definition node."""
    return decls.FunctionDef(specs, declarator, [], body)


class CPrinterStmtCheck:
    """Helper shared with ``create_statement_list``."""

    @staticmethod
    def is_statement(node: object) -> bool:
        from repro.cast.printer import CPrinter

        return CPrinter._is_statement(node)


# Aliases that match the paper's spelling verbatim.
createId = create_id
createFunctionCall = create_function_call
createArgumentList = create_argument_list
createAddressOf = create_address_of
createDeclarationList = create_declaration_list
createStatementList = create_statement_list
