"""Pre-forked sharded serving: N expansion daemons, one TCP port.

``repro serve --shards N`` (or :func:`repro.server.serve` with
``ServeConfig(shards=N)``) runs this module's
:class:`ShardSupervisor`: a parent process that

- reserves the listen port (binding an ``SO_REUSEPORT`` placeholder
  socket **without listening**, so ephemeral-port requests resolve to
  one number every shard can share while the placeholder never
  receives connections),
- spawns N shard processes (``python -m repro.shard``), each a full
  :class:`~repro.server.Ms2Server` binding the same port with
  ``SO_REUSEPORT`` — the kernel load-balances raw NDJSON connections
  across them,
- gives every shard a private Unix **control socket** speaking the
  same protocol, the supervisor's channel for stats/telemetry scrapes
  and routed gateway work (unaffected by kernel distribution),
- **supervises**: a shard that dies (crash, OOM, injected ``kill``
  fault) is restarted and the blip recorded in
  ``ms2_shard_restarts_total``; clients with a
  :class:`~repro.client.RetryPolicy` ride through it,
- optionally runs the :class:`FleetGateway` on ``metrics_port``: the
  fleet's HTTP face, aggregating ``/metrics`` and ``/statusz`` across
  shards via :func:`repro.telemetry.merge_snapshots` and routing
  ``POST /v1/expand`` by ``options_hash`` so one configuration's
  traffic lands on the shard keeping its warm workers.

Worker processes are plain ``subprocess`` children, not ``os.fork``:
forking a process that already runs an asyncio loop (threads, epoll
fds) is undefined behaviour, and a fresh interpreter gives each shard
an isolated GIL — the entire point of sharding.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.options import Ms2Options
from repro.serveconfig import ServeConfig

__all__ = [
    "FleetGateway",
    "ShardSupervisor",
    "aggregate_stats",
    "run_sharded",
    "shard_for_options_hash",
]

#: Environment variable carrying one shard child's JSON bootstrap.
ENV_CONFIG = "MS2_SHARD_CONFIG"

#: Seconds a freshly-spawned shard gets to answer ``ping``.
SHARD_READY_TIMEOUT_S = 30.0

#: Backoff before restarting a dead shard (doubles per consecutive
#: death, capped).
RESTART_BACKOFF_S = 0.2
RESTART_BACKOFF_MAX_S = 5.0


def shard_for_options_hash(options_hash: str | None, shards: int) -> int:
    """The shard index a configuration's traffic should prefer.

    Stable hash-affinity: requests carrying the same ``options_hash``
    always prefer the same shard, so that shard's warm pool keeps the
    hot workers for that configuration instead of every shard paying
    its own cold build.
    """
    if shards <= 1:
        return 0
    if not options_hash:
        return 0
    try:
        return int(options_hash[:8], 16) % shards
    except ValueError:
        return 0


# ---------------------------------------------------------------------------
# Fleet stats aggregation
# ---------------------------------------------------------------------------


def _sum_dicts(dicts: list[dict[str, Any]]) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for entry in dicts:
        for key, value in (entry or {}).items():
            if isinstance(value, (int, float)) and not isinstance(
                value, bool
            ):
                out[key] = out.get(key, 0) + value
    return out


def aggregate_stats(
    payloads: list[dict[str, Any]],
    *,
    supervisor: "ShardSupervisor | None" = None,
) -> dict[str, Any]:
    """Fold per-shard ``stats`` payloads into one fleet view.

    Counters sum, ``uptime_s`` is the fleet maximum, latency
    histograms merge bucket-by-bucket (every shard uses the shared
    :data:`~repro.telemetry.LATENCY_BUCKETS_MS` bounds, so buckets
    align by construction), and the per-shard ``server`` sections are
    kept verbatim under a new top-level ``"shards"`` list so ``repro
    top`` can show the breakdown next to the totals.
    """
    from repro.stats import PipelineStats

    if not payloads:
        payloads = [{}]
    out: dict[str, Any] = {}
    out["uptime_s"] = max(
        (p.get("uptime_s", 0.0) for p in payloads), default=0.0
    )
    for key in ("requests", "responses", "error_codes"):
        out[key] = _sum_dicts([p.get(key, {}) for p in payloads])
    for key in (
        "busy_rejections",
        "shed_rejections",
        "bad_frames",
        "client_disconnects",
        "in_flight",
        "peak_in_flight",
        "connections_open",
        "connections_total",
    ):
        out[key] = sum(p.get(key, 0) for p in payloads)

    # Latency: buckets sum; the mean recomputes from per-shard
    # (mean, count) pairs, not an average of averages.
    buckets = _sum_dicts(
        [p.get("latency_ms", {}).get("buckets", {}) for p in payloads]
    )
    count = sum(p.get("latency_ms", {}).get("count", 0) for p in payloads)
    total_ms = sum(
        p.get("latency_ms", {}).get("mean", 0.0)
        * p.get("latency_ms", {}).get("count", 0)
        for p in payloads
    )
    out["latency_ms"] = {
        "count": count,
        "mean": round(total_ms / count, 3) if count else 0.0,
        "buckets": buckets,
    }

    cache = _sum_dicts([p.get("expansion_cache", {}) for p in payloads])
    cache.pop("hit_rate", None)
    hits = cache.get("hits", 0)
    lookups = hits + cache.get("misses", 0)
    cache["hit_rate"] = round(hits / lookups, 4) if lookups else 0.0
    out["expansion_cache"] = cache

    pipeline = PipelineStats()
    for p in payloads:
        if p.get("pipeline"):
            pipeline.merge(PipelineStats.from_json(p["pipeline"]))
    out["pipeline"] = pipeline.to_json()

    first_server = next(
        (p.get("server", {}) for p in payloads if p.get("server")), {}
    )
    out["server"] = dict(first_server)
    out["server"]["pid"] = os.getpid()
    out["server"]["shard"] = None
    out["server"]["in_flight"] = out["in_flight"]
    if supervisor is not None:
        out["server"]["address"] = supervisor.address
        out["server"]["shards"] = supervisor.config.shards
        out["server"]["shards_alive"] = len(supervisor.live_shards())
        out["server"]["shard_restarts"] = supervisor.restarts_total

    workers = _sum_dicts([p.get("workers", {}) for p in payloads])
    workers["idle"] = _sum_dicts(
        [p.get("workers", {}).get("idle", {}) for p in payloads]
    )
    out["workers"] = workers
    out["resilience"] = _sum_dicts(
        [p.get("resilience", {}) for p in payloads]
    )
    fault_sections = [p.get("faults", {}) for p in payloads]
    out["faults"] = {
        "armed": any(f.get("armed") for f in fault_sections),
        "seed": next(
            (f.get("seed") for f in fault_sections if f.get("armed")),
            None,
        ),
        "injected": _sum_dicts(
            [f.get("injected", {}) for f in fault_sections]
        ),
    }
    disk = _sum_dicts([p.get("disk_cache", {}) for p in payloads])
    disk["dir"] = next(
        (
            p.get("disk_cache", {}).get("dir")
            for p in payloads
            if p.get("disk_cache", {}).get("dir")
        ),
        None,
    )
    out["disk_cache"] = disk

    # Cache backends: two-level — per-tier counter dicts sum tier by
    # tier, the write-behind section sums flat, the authority dir is
    # whichever shard reports one first (they all share it).
    backend_sections = [p.get("cache_backends", {}) for p in payloads]
    tier_names: list[str] = []
    for section in backend_sections:
        for name in (section.get("tiers") or {}):
            if name not in tier_names:
                tier_names.append(name)
    out["cache_backends"] = {
        "dir": next(
            (s.get("dir") for s in backend_sections if s.get("dir")),
            None,
        ),
        "tiers": {
            name: _sum_dicts(
                [
                    (s.get("tiers") or {}).get(name, {})
                    for s in backend_sections
                ]
            )
            for name in tier_names
        },
        "write_behind": _sum_dicts(
            [s.get("write_behind", {}) for s in backend_sections]
        ),
    }
    records = [
        p.get("telemetry", {}).get("event_log_records") for p in payloads
    ]
    out["telemetry"] = {
        "metrics_address": (
            supervisor.gateway.address
            if supervisor is not None and supervisor.gateway is not None
            else None
        ),
        "event_log_records": (
            sum(r for r in records if r is not None)
            if any(r is not None for r in records)
            else None
        ),
    }
    # Per-shard breakdown: each shard's server section, annotated
    # with that shard's load numbers.
    out["shards"] = [
        {
            **p.get("server", {}),
            "in_flight": p.get("in_flight", 0),
            "requests_total": sum(p.get("requests", {}).values()),
            "uptime_s": p.get("uptime_s", 0.0),
        }
        for p in payloads
        if p.get("server")
    ]
    return out


# ---------------------------------------------------------------------------
# The supervisor
# ---------------------------------------------------------------------------


@dataclass
class _ShardState:
    """One shard slot: the current process plus its history."""

    index: int
    control_socket: Path
    proc: subprocess.Popen | None = None
    restarts: int = 0
    started_at: float = field(default_factory=time.monotonic)

    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None


class ShardSupervisor:
    """Parent of a shard fleet: spawns, watches, restarts, fronts.

    Mirrors the :class:`~repro.server.Ms2Server` lifecycle shape —
    ``await start()``, ``install_signal_handlers()``,
    ``await serve_until_stopped()`` — so :func:`repro.server.serve`
    and the CLI treat one daemon and a fleet uniformly.  Exposes
    ``.address`` (the shared TCP address) and ``.sidecar`` (the
    :class:`FleetGateway`, when ``metrics_port`` was configured).
    """

    def __init__(
        self, options: Ms2Options | None, config: ServeConfig
    ) -> None:
        if config.shards > 1 and not hasattr(socket, "SO_REUSEPORT"):
            raise RuntimeError(
                "sharded serving needs SO_REUSEPORT, which this "
                "platform does not provide"
            )
        self.options = options if options is not None else Ms2Options()
        self.config = config.validate()
        self.host = config.host
        #: The resolved shared port (ephemeral requests resolve once,
        #: in :meth:`start`, and every shard binds the same number).
        self.port: int | None = config.port
        self.shards: list[_ShardState] = []
        self.restarts_total = 0
        self.gateway: "FleetGateway | None" = None
        self.started = time.monotonic()
        self._placeholder: socket.socket | None = None
        self._control_dir: Path | None = None
        self._tasks: list[asyncio.Task] = []
        self._draining = False
        self._stopped: asyncio.Event | None = None
        self._drain_task: asyncio.Task | None = None
        self.registry = self._build_registry()

    # -- registry --------------------------------------------------------

    def _build_registry(self) -> Any:
        from repro.telemetry import MetricsRegistry

        reg = MetricsRegistry()
        self._m_restarts = reg.counter(
            "ms2_shard_restarts_total",
            "Shard processes restarted by the supervisor",
            ("shard",),
        )
        self._m_alive = reg.gauge(
            "ms2_shards_alive",
            "Shard processes currently running",
            merge="last",
        )
        self._m_configured = reg.gauge(
            "ms2_shards_configured",
            "Shard processes the fleet is configured for",
            merge="last",
        )
        self._m_uptime = reg.gauge(
            "ms2_supervisor_uptime_seconds",
            "Seconds since the shard supervisor started",
            merge="max",
        )

        def _collect(_reg: Any) -> None:
            self._m_alive.set(len(self.live_shards()))
            self._m_configured.set(self.config.shards)
            self._m_uptime.set(round(time.monotonic() - self.started, 3))
            for state in self.shards:
                self._m_restarts.set_total(
                    state.restarts, shard=str(state.index)
                )

        reg.register_collector(_collect)
        return reg

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        """Reserve the port, spawn every shard, wait until each
        answers ``ping``, start supervision and the gateway."""
        self._stopped = asyncio.Event()
        self._reserve_port()
        self._control_dir = Path(tempfile.mkdtemp(prefix="ms2-shards-"))
        for index in range(self.config.shards):
            state = _ShardState(
                index=index,
                control_socket=self._control_dir / f"shard-{index}.sock",
            )
            self.shards.append(state)
            self._spawn(state)
        await asyncio.gather(
            *(self._wait_shard_ready(state) for state in self.shards)
        )
        for state in self.shards:
            self._tasks.append(
                asyncio.get_running_loop().create_task(
                    self._supervise(state)
                )
            )
        if self.config.metrics_port is not None:
            self.gateway = FleetGateway(
                self,
                host=self.config.metrics_host,
                port=self.config.metrics_port,
            )
            await self.gateway.start()

    def _reserve_port(self) -> None:
        """Resolve an ephemeral port request to one concrete number.

        The placeholder binds with ``SO_REUSEPORT`` but **never
        listens** — a bound, non-listening socket receives no
        connections, so it safely pins the number for the fleet's
        lifetime while the kernel balances real connections across
        the shards' listening sockets.
        """
        placeholder = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        placeholder.setsockopt(
            socket.SOL_SOCKET, socket.SO_REUSEPORT, 1
        )
        placeholder.bind((self.host, self.port or 0))
        self.port = placeholder.getsockname()[1]
        self._placeholder = placeholder

    def _child_payload(self, state: _ShardState) -> dict[str, Any]:
        return {
            "options": self.options.to_json(),
            "config": self.config.to_json(),
            "shard_index": state.index,
            "port": self.port,
            "control_socket": str(state.control_socket),
        }

    def _spawn(self, state: _ShardState) -> None:
        import repro

        env = dict(os.environ)
        env[ENV_CONFIG] = json.dumps(self._child_payload(state))
        pkg_root = str(Path(repro.__file__).parents[1])
        existing = env.get("PYTHONPATH", "")
        if pkg_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (
                pkg_root + (os.pathsep + existing if existing else "")
            )
        with contextlib.suppress(OSError):
            state.control_socket.unlink()
        state.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.shard"], env=env
        )
        state.started_at = time.monotonic()

    def _ping_shard(self, state: _ShardState, timeout: float) -> None:
        from repro.client import Ms2Client

        client = Ms2Client(str(state.control_socket))
        try:
            client.wait_ready(timeout=timeout)
        finally:
            client.close()

    async def _wait_shard_ready(
        self, state: _ShardState, timeout: float = SHARD_READY_TIMEOUT_S
    ) -> None:
        try:
            await asyncio.to_thread(self._ping_shard, state, timeout)
        except TimeoutError:
            code = (
                state.proc.poll() if state.proc is not None else None
            )
            raise RuntimeError(
                f"shard {state.index} did not become ready within "
                f"{timeout:.0f}s"
                + (f" (exited with code {code})" if code is not None else "")
            ) from None

    async def _supervise(self, state: _ShardState) -> None:
        """Restart the shard whenever its process dies (unless the
        fleet is draining)."""
        backoff = RESTART_BACKOFF_S
        while True:
            proc = state.proc
            assert proc is not None
            code = await asyncio.to_thread(proc.wait)
            if self._draining:
                return
            state.restarts += 1
            self.restarts_total += 1
            print(
                f"[repro.shard] shard {state.index} exited with code "
                f"{code}; restarting (restart #{state.restarts})",
                file=sys.stderr,
            )
            # A shard that stayed up a while earns its backoff reset.
            lifetime = time.monotonic() - state.started_at
            await asyncio.sleep(backoff)
            if self._draining:
                return
            self._spawn(state)
            with contextlib.suppress(RuntimeError):
                await self._wait_shard_ready(state)
            if lifetime > 30.0:
                backoff = RESTART_BACKOFF_S
            else:
                backoff = min(backoff * 2, RESTART_BACKOFF_MAX_S)

    # -- introspection ---------------------------------------------------

    @property
    def address(self) -> str:
        """The shared TCP listen address."""
        return f"{self.host}:{self.port}"

    @property
    def sidecar(self) -> "FleetGateway | None":
        """The fleet gateway, in the slot the single-process server
        keeps its telemetry sidecar (CLI announcements duck-type)."""
        return self.gateway

    @property
    def draining(self) -> bool:
        return self._draining

    def live_shards(self) -> list[_ShardState]:
        return [state for state in self.shards if state.alive()]

    # -- fleet-wide protocol calls (over control sockets) ---------------

    def _shard_call(
        self, state: _ShardState, frame: dict[str, Any]
    ) -> dict[str, Any]:
        """One raw protocol frame to one shard, blocking (run it in a
        thread)."""
        from repro.client import Ms2Client

        with Ms2Client(str(state.control_socket), timeout=30.0) as client:
            return client.request(dict(frame))

    async def shard_request(
        self, frame: dict[str, Any], preferred: int | None = None
    ) -> dict[str, Any]:
        """Route one frame to a live shard: the preferred
        (warm-affinity) shard first, any other live shard when it is
        down, an ``unavailable`` error frame (retryable) when none
        answer."""
        candidates = self.live_shards()
        if preferred is not None:
            candidates.sort(
                key=lambda state: 0 if state.index == preferred else 1
            )
        for state in candidates:
            try:
                return await asyncio.to_thread(
                    self._shard_call, state, frame
                )
            except (ConnectionError, OSError):
                continue
        return {
            "id": frame.get("id"),
            "ok": False,
            "error": {
                "code": "unavailable",
                "message": "no shard reachable (fleet restarting?)",
                "retry_after_ms": 200,
            },
        }

    async def fleet_stats(self) -> dict[str, Any]:
        """Aggregated ``stats`` across every reachable shard."""
        results = await asyncio.gather(
            *(
                self.shard_request({"op": "stats"}, preferred=state.index)
                for state in self.live_shards()
            ),
            return_exceptions=True,
        )
        payloads = [
            r.get("result", {})
            for r in results
            if isinstance(r, dict) and r.get("ok")
        ]
        return aggregate_stats(payloads, supervisor=self)

    async def fleet_snapshot(self) -> dict[str, Any]:
        """Every shard's registry snapshot merged with the
        supervisor's own (restart counters, fleet gauges)."""
        from repro.telemetry import merge_snapshots

        results = await asyncio.gather(
            *(
                self.shard_request(
                    {"op": "telemetry"}, preferred=state.index
                )
                for state in self.live_shards()
            ),
            return_exceptions=True,
        )
        snapshots = [self.registry.snapshot()]
        for r in results:
            if isinstance(r, dict) and r.get("ok"):
                snapshot = r.get("result", {}).get("snapshot")
                if snapshot:
                    snapshots.append(snapshot)
        return merge_snapshots(snapshots)

    def route_for_frame(self, frame: dict[str, Any]) -> int:
        """The warm-affinity shard index for one work frame."""
        options = frame.get("options")
        try:
            if options is not None:
                options_hash = Ms2Options.from_json(
                    options
                ).options_hash()
            else:
                options_hash = self.options.options_hash()
        except Exception:
            return 0
        return shard_for_options_hash(options_hash, self.config.shards)

    # -- shutdown --------------------------------------------------------

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError):
                loop.add_signal_handler(signum, self.request_shutdown)

    def request_shutdown(self) -> None:
        if self._draining:
            return
        self._draining = True
        self._drain_task = asyncio.get_running_loop().create_task(
            self._drain()
        )

    async def _drain(self) -> None:
        # SIGTERM every shard: each drains its own in-flight work
        # (the per-shard drain_s budget), then exits.
        for state in self.shards:
            if state.alive():
                assert state.proc is not None
                with contextlib.suppress(OSError):
                    state.proc.terminate()
        deadline = self.config.drain_s + 5.0

        def _reap(state: _ShardState) -> None:
            if state.proc is None:
                return
            try:
                state.proc.wait(timeout=deadline)
            except subprocess.TimeoutExpired:
                state.proc.kill()
                state.proc.wait()

        await asyncio.gather(
            *(asyncio.to_thread(_reap, state) for state in self.shards)
        )
        for task in self._tasks:
            task.cancel()
        if self.gateway is not None:
            await self.gateway.aclose()
        if self._placeholder is not None:
            self._placeholder.close()
            self._placeholder = None
        if self._control_dir is not None:
            shutil.rmtree(self._control_dir, ignore_errors=True)
        assert self._stopped is not None
        self._stopped.set()

    async def serve_until_stopped(self) -> None:
        assert self._stopped is not None, "call start() first"
        await self._stopped.wait()

    async def aclose(self) -> None:
        """Drain and stop programmatically (tests, embedding)."""
        self.request_shutdown()
        if self._drain_task is not None:
            await self._drain_task


# ---------------------------------------------------------------------------
# The fleet gateway
# ---------------------------------------------------------------------------


class FleetGateway:
    """The HTTP face of a shard fleet, on the ``metrics_port``.

    Same four routes as the single-process
    :class:`~repro.metrics_http.TelemetrySidecar` — ``/metrics``,
    ``/healthz``, ``/statusz``, ``POST /v1/expand`` — but fleet-wide:
    telemetry reads aggregate every shard, and gateway frames route
    to the warm-affinity shard (falling back to any live shard, so a
    restarting shard never surfaces as a client failure).
    """

    def __init__(
        self,
        supervisor: ShardSupervisor,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.supervisor = supervisor
        self.host = host
        self.port = port
        self._http: asyncio.AbstractServer | None = None
        self.bound_port: int | None = None
        #: Requests served, by path.
        self.requests: dict[str, int] = {}

    async def start(self) -> None:
        self._http = await asyncio.start_server(
            self._handle, host=self.host, port=self.port
        )
        sockets = self._http.sockets or []
        if sockets:
            self.bound_port = sockets[0].getsockname()[1]

    async def aclose(self) -> None:
        if self._http is not None:
            self._http.close()
            await self._http.wait_closed()
            self._http = None

    @property
    def address(self) -> str:
        return f"{self.host}:{self.bound_port or self.port}"

    # ------------------------------------------------------------------

    async def _handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        from repro.metrics_http import (
            read_http_request,
            write_http_response,
        )

        try:
            parsed = await read_http_request(
                reader, self.supervisor.config.max_frame_bytes
            )
            status, content_type, body, extra = await self._respond(parsed)
            await write_http_response(
                writer, status, content_type, body, extra
            )
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()

    async def _respond(
        self,
        parsed: tuple[str, str, dict[str, str], bytes] | None,
    ) -> tuple[int, str, bytes, dict[str, str]]:
        plain = "text/plain; charset=utf-8"
        if parsed is None:
            return 400, plain, b"bad request\n", {}
        method, path, headers, body = parsed
        self.requests[path] = self.requests.get(path, 0) + 1
        if method == "POST":
            if path != "/v1/expand":
                return 405, plain, b"method not allowed\n", {}
            return await self._gateway(headers, body)
        if method != "GET":
            return 405, plain, b"method not allowed\n", {}
        if path == "/metrics":
            return await self._metrics()
        if path == "/healthz":
            return self._healthz()
        if path == "/statusz":
            return await self._statusz()
        return (
            404,
            plain,
            b"not found; try /metrics /healthz /statusz "
            b"or POST /v1/expand\n",
            {},
        )

    async def _metrics(self) -> tuple[int, str, bytes, dict[str, str]]:
        from repro.telemetry import render_snapshot

        merged = await self.supervisor.fleet_snapshot()
        return (
            200,
            "text/plain; version=0.0.4; charset=utf-8",
            render_snapshot(merged).encode("utf-8"),
            {},
        )

    def _healthz(self) -> tuple[int, str, bytes, dict[str, str]]:
        plain = "text/plain; charset=utf-8"
        if self.supervisor.draining:
            return 503, plain, b"draining\n", {}
        if not self.supervisor.live_shards():
            return 503, plain, b"no live shards\n", {}
        return 200, plain, b"ok\n", {}

    async def _statusz(self) -> tuple[int, str, bytes, dict[str, str]]:
        payload = await self.supervisor.fleet_stats()
        return (
            200,
            "application/json; charset=utf-8",
            json.dumps(payload, indent=2).encode("utf-8"),
            {},
        )

    async def _gateway(
        self, headers: dict[str, str], body: bytes
    ) -> tuple[int, str, bytes, dict[str, str]]:
        from repro.metrics_http import (
            gateway_parse_body,
            gateway_response,
        )

        parsed = gateway_parse_body(headers, body)
        if parsed is None:
            frame = {
                "id": None,
                "ok": False,
                "error": {
                    "code": "bad_request",
                    "message": "body must be one JSON frame",
                },
            }
            return gateway_response(frame)
        if "too_large" in parsed:
            frame = {
                "id": None,
                "ok": False,
                "error": {
                    "code": "frame_too_large",
                    "message": (
                        f"body of {parsed['too_large']} bytes exceeds "
                        "max_frame_bytes"
                    ),
                },
            }
            return gateway_response(frame)
        frame = parsed["frame"]
        response = await self._dispatch(frame)
        return gateway_response(response)

    async def _dispatch(self, frame: dict[str, Any]) -> dict[str, Any]:
        """Fleet semantics for one protocol frame: read-only fleet
        ops answer here, work routes to a shard."""
        supervisor = self.supervisor
        op = frame.get("op")
        rid = frame.get("id")
        request_id = frame.get("request_id")

        def _ok(result: dict[str, Any]) -> dict[str, Any]:
            out: dict[str, Any] = {"id": rid, "ok": True, "result": result}
            if request_id:
                out["request_id"] = request_id
            return out

        if op == "ping":
            return _ok(
                {
                    "pong": True,
                    "gateway": True,
                    "shards": supervisor.config.shards,
                    "shards_alive": len(supervisor.live_shards()),
                    "pid": os.getpid(),
                }
            )
        if op == "stats":
            return _ok(await supervisor.fleet_stats())
        if op == "telemetry":
            return _ok({"snapshot": await supervisor.fleet_snapshot()})
        if op == "shutdown":
            supervisor.request_shutdown()
            return _ok({"draining": True})
        preferred = supervisor.route_for_frame(frame)
        response = await supervisor.shard_request(
            frame, preferred=preferred
        )
        return response


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def run_sharded(
    options: Ms2Options | None,
    config: ServeConfig,
    *,
    ready: Any = None,
) -> None:
    """Run a shard fleet until it drains (the ``shards > 1`` path of
    :func:`repro.server.serve`)."""
    supervisor = ShardSupervisor(options, config)

    async def _main() -> None:
        await supervisor.start()
        supervisor.install_signal_handlers()
        if ready is not None:
            ready(supervisor)
        await supervisor.serve_until_stopped()

    asyncio.run(_main())


def shard_child_main() -> int:
    """One shard process: rebuild the configuration from the
    environment and run a plain Ms2Server on the shared port."""
    raw = os.environ.get(ENV_CONFIG)
    if not raw:
        print(
            "repro.shard: MS2_SHARD_CONFIG not set (this module is "
            "an internal entry point of `repro serve --shards N`)",
            file=sys.stderr,
        )
        return 2
    payload = json.loads(raw)
    config = ServeConfig.from_json(payload.get("config"))
    options = Ms2Options.from_json(payload.get("options"))
    index = int(payload.get("shard_index", 0))
    event_log = (
        f"{config.event_log}.shard-{index}" if config.event_log else None
    )

    from repro.server import Ms2Server, _arm_config_faults

    # Each shard arms the fleet's chaos plan itself (it may have been
    # spawned by a supervisor that never went through serve()).
    _arm_config_faults(config)
    server = Ms2Server.from_config(
        options,
        config,
        socket_path=None,
        port=int(payload["port"]),
        reuse_port=True,
        control_socket=payload.get("control_socket"),
        shard_index=index,
        metrics_port=None,  # the fleet gateway owns HTTP
        event_log=event_log,
    )

    async def _main() -> None:
        await server.start()
        server.install_signal_handlers()
        await server.serve_until_stopped()

    asyncio.run(_main())
    return 0


if __name__ == "__main__":
    sys.exit(shard_child_main())
