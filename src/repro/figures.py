"""Reproduction helpers for the paper's figures.

* :func:`parse_template_fragment` — parse a code template in a given
  meta type environment (the machinery behind Figures 2 and 3);
* :func:`figure2_rows` — the four parses of ``[int $y;]`` by the AST
  type of ``y``;
* :func:`figure3_rows` — the four parse outcomes of
  ``{int x; $ph1 $ph2 return(x);}`` by the types of the placeholders,
  including the syntactically illegal statement-then-declaration case.

``benchmarks/test_fig2_decl_parses.py`` and
``benchmarks/test_fig3_compound_parses.py`` print these tables in the
paper's format.
"""

from __future__ import annotations

from repro.asttypes.types import AstType, list_of, prim
from repro.cast.base import Node
from repro.cast.sexpr import render_sexpr
from repro.errors import ParseError
from repro.parser.core import Parser

#: Row order of Figure 2, keyed by the paper's type spellings.
FIGURE2_TYPES: list[tuple[str, AstType]] = [
    ("init-declarator[]", list_of(prim("init_declarator"))),
    ("init-declarator", prim("init_declarator")),
    ("declarator", prim("declarator")),
    ("identifier", prim("id")),
]

#: Row order of Figure 3: (ph1 type, ph2 type).
FIGURE3_TYPES: list[tuple[str, str]] = [
    ("decl", "decl"),
    ("decl", "stmt"),
    ("stmt", "stmt"),
    ("stmt", "decl"),
]


def parse_template_fragment(
    kind: str,
    source: str,
    bindings: dict[str, AstType],
) -> Node:
    """Parse ``source`` as a template of the given kind.

    ``kind`` is ``"decl"``, ``"stmt"`` (a compound statement), or
    ``"exp"``.  ``bindings`` supplies the meta type environment the
    placeholders are analyzed against — exactly the situation inside
    a macro body whose formals have those types.
    """
    parser = Parser(source)
    env = parser.global_type_env.child()
    for name, asttype in bindings.items():
        env.bind(name, asttype)
    with parser._meta(True), parser._scoped_env(env), parser._template(True):
        if kind == "decl":
            return parser.parse_template_declaration()
        if kind == "stmt":
            return parser.parse_compound_statement()
        if kind == "exp":
            return parser.parse_expression()
    raise ValueError(f"unknown template kind {kind!r}")


def figure2_rows() -> list[tuple[str, str]]:
    """(AST type of y, S-expression parse) for the template ``int $y;``."""
    rows: list[tuple[str, str]] = []
    for label, asttype in FIGURE2_TYPES:
        tree = parse_template_fragment("decl", "int $y;", {"y": asttype})
        rows.append((label, render_sexpr(tree)))
    return rows


def figure3_rows() -> list[tuple[str, str, str]]:
    """(ph1, ph2, parse-or-error) for ``{int x; $ph1 $ph2 return(x);}``."""
    rows: list[tuple[str, str, str]] = []
    source = "{int x; $ph1 $ph2 return(x);}"
    for t1, t2 in FIGURE3_TYPES:
        bindings = {"ph1": prim(t1), "ph2": prim(t2)}
        try:
            tree = parse_template_fragment("stmt", source, bindings)
            rows.append((t1, t2, render_sexpr(tree, abbrev=True)))
        except ParseError:
            rows.append((t1, t2, "Syntactically Illegal Program"))
    return rows
