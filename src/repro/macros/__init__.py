"""The MS2 macro system: patterns, templates, definitions, expansion."""

from repro.macros.definition import MacroDefinition, MacroTable
from repro.macros.expander import Expander
from repro.macros.pattern import Pattern, parse_pattern_text
from repro.macros.lookahead import validate_pattern

__all__ = [
    "Expander",
    "MacroDefinition",
    "MacroTable",
    "Pattern",
    "parse_pattern_text",
    "validate_pattern",
]
