"""The macro pattern language (paper section 2).

A macro header's pattern specifies the concrete syntax of invocations:
literal ("buzz") tokens interleaved with typed parameters.  Parameter
specifiers (``pspec``) support the paper's full grammar::

    pattern:         pattern-element ...
    pattern-element: token
                     $$ pspec :: identifier
    pspec:           ast-specifier
                     + pspec            list of 1 or more
                     + / token pspec    list of 1 or more + separator
                     * pspec            list of 0 or more
                     * / token pspec    list of 0 or more + separator
                     ? pspec            optional element
                     ? token pspec      optional preamble + element
                     ( pattern )        tuple

Patterns are parsed once, at macro-definition time, into the dataclass
structures below; each parameter knows the
:class:`~repro.asttypes.types.AstType` it binds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.asttypes.types import (
    AstType,
    ListType,
    TupleType,
    prim,
)
from repro.errors import MacroSyntaxError
from repro.lexer.tokens import AST_SPECIFIER_NAMES, Token, TokenKind


# ---------------------------------------------------------------------------
# Pattern structure
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Pspec:
    """Base class of parameter specifiers."""

    def binding_type(self) -> AstType:
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class SpecPrim(Pspec):
    """A bare AST specifier: the parameter binds one AST of this type."""

    name: str

    def binding_type(self) -> AstType:
        return prim(self.name)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class SpecList(Pspec):
    """``+``/``*`` repetition, optionally with a separator token."""

    element: Pspec
    at_least_one: bool
    separator: str | None = None

    def binding_type(self) -> AstType:
        return ListType(self.element.binding_type())

    def __str__(self) -> str:
        star = "+" if self.at_least_one else "*"
        sep = f"/{self.separator} " if self.separator else " "
        return f"{star}{sep}{self.element}"


@dataclass(frozen=True, slots=True)
class SpecOptional(Pspec):
    """``?`` optional element, optionally guarded by a preamble token."""

    element: Pspec
    guard: str | None = None

    def binding_type(self) -> AstType:
        # An absent optional binds the meta-value NULL; its static type
        # is the element's type.
        return self.element.binding_type()

    def __str__(self) -> str:
        guard = f"{self.guard} " if self.guard else ""
        return f"? {guard}{self.element}"


@dataclass(frozen=True, slots=True)
class SpecTuple(Pspec):
    """A parenthesized sub-pattern binding a named tuple."""

    pattern: "Pattern"

    def binding_type(self) -> AstType:
        fields = tuple(
            (p.name, p.pspec.binding_type())
            for p in self.pattern.elements
            if isinstance(p, ParamElement)
        )
        return TupleType(fields)

    def __str__(self) -> str:
        return f"({self.pattern.source_text})"


@dataclass(frozen=True, slots=True)
class PatternElement:
    """Base class of pattern elements."""


@dataclass(frozen=True, slots=True)
class TokenElement(PatternElement):
    """A literal token that must appear verbatim in invocations."""

    text: str

    def __str__(self) -> str:
        return self.text


@dataclass(frozen=True, slots=True)
class ParamElement(PatternElement):
    """``$$ pspec :: identifier`` — a typed actual parameter."""

    pspec: Pspec
    name: str

    def __str__(self) -> str:
        return f"$${self.pspec}::{self.name}"


@dataclass(frozen=True, slots=True)
class Pattern:
    """A compiled macro pattern."""

    elements: tuple[PatternElement, ...]
    source_text: str = field(default="", compare=False)

    def params(self) -> list[ParamElement]:
        """All parameters, including those nested in tuples."""
        out: list[ParamElement] = []
        for element in self.elements:
            if isinstance(element, ParamElement):
                out.append(element)
                if isinstance(element.pspec, SpecTuple):
                    out.extend(element.pspec.pattern.params())
                elif isinstance(element.pspec, SpecList) and isinstance(
                    element.pspec.element, SpecTuple
                ):
                    # Tuple fields inside repetitions are not bound at
                    # the top level; they're accessed via the tuple.
                    pass
        return out

    def binding_types(self) -> dict[str, AstType]:
        """Name -> type for every top-level parameter of the pattern."""
        out: dict[str, AstType] = {}
        for element in self.elements:
            if isinstance(element, ParamElement):
                if element.name in out:
                    raise MacroSyntaxError(
                        f"duplicate pattern parameter {element.name!r}"
                    )
                out[element.name] = element.pspec.binding_type()
        return out

    def __str__(self) -> str:
        return self.source_text or " ".join(str(e) for e in self.elements)


# ---------------------------------------------------------------------------
# Pattern parsing
# ---------------------------------------------------------------------------

#: Punctuation that begins a compound pspec.
_PSPEC_PUNCT = {"+", "*", "?", "("}


class PatternParser:
    """Parses a pattern from a token slice (between ``{|`` and ``|}``).

    The caller (the main parser) hands over the raw tokens; this class
    is deliberately independent of the main parser so patterns can also
    be compiled from strings in tests and tooling.
    """

    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing -------------------------------------------------

    def _peek(self) -> Token | None:
        if self.pos < len(self.tokens):
            return self.tokens[self.pos]
        return None

    def _next(self) -> Token:
        token = self._peek()
        if token is None:
            raise MacroSyntaxError("unexpected end of macro pattern")
        self.pos += 1
        return token

    # -- grammar ----------------------------------------------------------

    def parse_pattern(self, stop: str | None = None) -> Pattern:
        elements: list[PatternElement] = []
        while True:
            token = self._peek()
            if token is None:
                break
            if stop is not None and token.is_punct(stop):
                break
            elements.append(self.parse_element())
        if not elements:
            raise MacroSyntaxError("macro pattern must not be empty")
        text = " ".join(str(e) for e in elements)
        return Pattern(tuple(elements), text)

    def parse_element(self) -> PatternElement:
        token = self._next()
        if token.kind is TokenKind.DOLLAR_DOLLAR:
            pspec = self.parse_pspec()
            sep = self._next()
            if sep.kind is not TokenKind.COLON_COLON:
                raise MacroSyntaxError(
                    f"expected '::' after parameter specifier, got "
                    f"{sep.describe()}",
                    sep.location,
                )
            name = self._next()
            if name.kind is not TokenKind.IDENT:
                raise MacroSyntaxError(
                    f"expected parameter name after '::', got {name.describe()}",
                    name.location,
                )
            return ParamElement(pspec, name.text)
        if token.kind in (TokenKind.PUNCT, TokenKind.IDENT, TokenKind.KEYWORD):
            return TokenElement(token.text)
        raise MacroSyntaxError(
            f"token {token.describe()} cannot appear in a macro pattern",
            token.location,
        )

    def parse_pspec(self) -> Pspec:
        token = self._next()
        if token.is_punct("+") or token.is_punct("*"):
            at_least_one = token.text == "+"
            separator = None
            if self._peek() is not None and self._peek().is_punct("/"):
                self._next()
                sep_token = self._next()
                separator = sep_token.text
            element = self.parse_pspec()
            return SpecList(element, at_least_one, separator)
        if token.is_punct("?"):
            nxt = self._peek()
            if nxt is None:
                raise MacroSyntaxError(
                    "unexpected end of pattern after '?'", token.location
                )
            if self._starts_pspec(nxt):
                return SpecOptional(self.parse_pspec(), guard=None)
            guard = self._next()
            return SpecOptional(self.parse_pspec(), guard=guard.text)
        if token.is_punct("("):
            pattern = self.parse_pattern(stop=")")
            close = self._next()
            if not close.is_punct(")"):
                raise MacroSyntaxError(
                    "expected ')' closing tuple sub-pattern", close.location
                )
            return SpecTuple(pattern)
        if (
            token.kind in (TokenKind.IDENT, TokenKind.KEYWORD)
            and token.text in AST_SPECIFIER_NAMES
        ):
            return SpecPrim(token.text)
        raise MacroSyntaxError(
            f"expected parameter specifier, got {token.describe()}",
            token.location,
        )

    @staticmethod
    def _starts_pspec(token: Token) -> bool:
        if token.kind is TokenKind.PUNCT and token.text in _PSPEC_PUNCT:
            return True
        return (
            token.kind in (TokenKind.IDENT, TokenKind.KEYWORD)
            and token.text in AST_SPECIFIER_NAMES
        )


def parse_pattern_text(text: str) -> Pattern:
    """Compile a pattern from source text (testing/tooling convenience)."""
    from repro.lexer.scanner import tokenize

    tokens = tokenize(text)
    tokens = tokens[:-1]  # drop EOF
    parser = PatternParser(tokens)
    pattern = parser.parse_pattern()
    if parser.pos != len(parser.tokens):
        extra = parser.tokens[parser.pos]
        raise MacroSyntaxError(
            f"trailing tokens in pattern: {extra.describe()}", extra.location
        )
    return pattern
