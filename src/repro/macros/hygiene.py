"""Hygiene support (paper section 5, future work).

The paper's examples avoid variable capture manually with ``gensym``;
its section 5 notes that hygienic macro systems do this automatically
and that the authors "are considering methods for making our system be
hygienic".  This module implements that extension: every expansion
stamps template-origin nodes with a mark, and — when the expander runs
in hygienic mode — local variables *declared by the template itself*
are automatically renamed to fresh identifiers, while user code
substituted through placeholders (which carries a different mark, or
none) is left untouched.

This is the classic mark-based approximation of Kohlbecker-style
hygiene, sufficient to make the paper's ``dynamic_bind`` and ``catch``
examples capture-safe without explicit ``gensym`` calls.
"""

from __future__ import annotations

from typing import Any

from repro.cast import decls, nodes, stmts
from repro.cast.base import Node, walk
from repro.meta.interp import Interpreter


def make_hygienic(
    tree: Node | list, mark: int, interpreter: Interpreter, stats: Any = None
) -> Any:
    """Rename template-declared locals in ``tree`` to fresh names.

    Only binders whose declaration node carries ``mark`` (i.e. was
    created by this expansion's templates) are renamed, and only
    references that also carry ``mark`` are redirected — a placeholder
    substitution that happens to use the same spelling keeps its
    meaning.  ``stats`` (a :class:`~repro.stats.PipelineStats`) counts
    each distinct rename when supplied.
    """
    renamer = _Renamer(mark, interpreter, stats)
    if isinstance(tree, list):
        for item in tree:
            renamer.process(item)
    else:
        renamer.process(tree)
    return tree


class _Renamer:
    def __init__(
        self, mark: int, interpreter: Interpreter, stats: Any = None
    ) -> None:
        self.mark = mark
        self.interpreter = interpreter
        self.stats = stats

    def process(self, root: Node) -> None:
        for node in walk(root):
            if isinstance(node, stmts.CompoundStmt) and node.mark == self.mark:
                self._process_compound(node)

    def _process_compound(self, compound: stmts.CompoundStmt) -> None:
        renames: dict[str, str] = {}
        for declaration in compound.decls:
            if not isinstance(declaration, decls.Declaration):
                continue
            if declaration.mark != self.mark:
                continue
            for name_decl in _binders(declaration):
                old = name_decl.name
                if old.startswith("__"):
                    continue  # already a gensym
                if old not in renames:
                    fresh = self.interpreter.gensym(old).name
                    renames[old] = fresh
                    if self.stats is not None:
                        self.stats.hygiene_renames += 1
                name_decl.name = renames[old]
        if not renames:
            return
        for node in walk(compound):
            if (
                isinstance(node, nodes.Identifier)
                and node.mark == self.mark
                and node.name in renames
            ):
                node.name = renames[node.name]


def _binders(declaration: decls.Declaration) -> list[decls.NameDeclarator]:
    out: list[decls.NameDeclarator] = []
    for item in declaration.init_declarators:
        if isinstance(item, decls.InitDeclarator):
            current: Node = item.declarator
            while True:
                if isinstance(current, decls.NameDeclarator):
                    out.append(current)
                    break
                if isinstance(
                    current,
                    (decls.PointerDeclarator, decls.ArrayDeclarator,
                     decls.FuncDeclarator),
                ):
                    current = current.inner
                    continue
                break
    return out
