"""Compiled per-macro invocation parse routines.

Paper, section 3 ("Parsing Macro Headers"): "even this process could
be accelerated by a routine that compiled a parse routine for each
macro's pattern.  This specialized routine would be associated with
the macro keyword and called when needed."

This module implements exactly that: :func:`compile_pattern` lowers a
pattern — once, at definition time — into a chain of Python closures
with all pspec dispatch, FIRST sets, separators and follow tokens
resolved in advance.  The interpreted engine
(:class:`repro.macros.invocation.InvocationParser`) and the compiled
routine produce identical invocation nodes;
``benchmarks/test_pattern_compilation.py`` measures the speedup.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.cast import nodes
from repro.errors import ParseError
from repro.lexer.tokens import Token, TokenKind
from repro.macros.invocation import InvocationParser, _follow_text
from repro.macros.lookahead import first_of_pspec
from repro.macros.pattern import (
    ParamElement,
    Pattern,
    Pspec,
    SpecList,
    SpecOptional,
    SpecPrim,
    SpecTuple,
    TokenElement,
)

if TYPE_CHECKING:
    from repro.macros.definition import MacroDefinition
    from repro.parser.core import Parser

#: A compiled step: mutates ``args`` while consuming tokens.
Step = Callable[["Parser", list[nodes.MacroArg]], None]


class CompiledMatcher:
    """The specialized parse routine for one macro's pattern."""

    def __init__(self, name: str, steps: list[Step]) -> None:
        self.name = name
        self.steps = steps

    def parse_invocation(
        self, parser: "Parser", defn: "MacroDefinition", keyword: Token
    ) -> nodes.MacroInvocation:
        args: list[nodes.MacroArg] = []
        for step in self.steps:
            step(parser, args)
        return nodes.MacroInvocation(
            defn.name, args, defn, loc=keyword.location
        )


def compile_pattern(pattern: Pattern, name: str = "<macro>") -> CompiledMatcher:
    """Lower a pattern into a specialized parse routine (one-time, at definition)."""
    elements = list(pattern.elements)
    steps: list[Step] = []
    for i, element in enumerate(elements):
        follow = _follow_text(elements, i)
        if isinstance(element, TokenElement):
            steps.append(_compile_literal(element.text))
        else:
            assert isinstance(element, ParamElement)
            value_fn = _compile_pspec(element.pspec, follow)
            steps.append(_compile_param(element.name, value_fn))
    return CompiledMatcher(name, steps)


def _compile_literal(text: str) -> Step:
    def step(parser: "Parser", args: list[nodes.MacroArg]) -> None:
        token = parser.next_token()
        if token.text != text:
            raise ParseError(
                f"macro invocation expected {text!r}, got "
                f"{token.describe()}",
                token.location,
            )

    return step


def _compile_param(
    name: str, value_fn: Callable[["Parser"], Any]
) -> Step:
    def step(parser: "Parser", args: list[nodes.MacroArg]) -> None:
        args.append(nodes.MacroArg(name, value_fn(parser)))

    return step


def _compile_pspec(
    pspec: Pspec, follow_text: str | None
) -> Callable[["Parser"], Any]:
    if isinstance(pspec, SpecPrim):
        prim_name = pspec.name

        def parse_prim(parser: "Parser") -> Any:
            return InvocationParser(parser)._parse_prim(prim_name)

        return parse_prim

    if isinstance(pspec, SpecList):
        element_fn = _compile_pspec(pspec.element, follow_text)
        first = first_of_pspec(pspec.element)
        at_least_one = pspec.at_least_one
        separator = pspec.separator

        if separator is not None:

            def parse_separated(parser: "Parser") -> list[Any]:
                items: list[Any] = []
                if at_least_one or _present(parser, first, None):
                    items.append(element_fn(parser))
                    while parser.peek().text == separator:
                        parser.next_token()
                        items.append(element_fn(parser))
                return items

            return parse_separated

        def parse_repeated(parser: "Parser") -> list[Any]:
            items: list[Any] = []
            if at_least_one:
                items.append(element_fn(parser))
            while _present(parser, first, follow_text):
                items.append(element_fn(parser))
            return items

        return parse_repeated

    if isinstance(pspec, SpecOptional):
        element_fn = _compile_pspec(pspec.element, follow_text)
        guard = pspec.guard
        first = first_of_pspec(pspec.element)

        if guard is not None:

            def parse_guarded(parser: "Parser") -> Any:
                token = parser.peek()
                if token.text == guard and token.kind is not TokenKind.EOF:
                    parser.next_token()
                    return element_fn(parser)
                return None

            return parse_guarded

        def parse_optional(parser: "Parser") -> Any:
            if _present(parser, first, follow_text):
                return element_fn(parser)
            return None

        return parse_optional

    if isinstance(pspec, SpecTuple):
        sub = compile_pattern(pspec.pattern)

        def parse_tuple(parser: "Parser") -> nodes.TupleValue:
            args: list[nodes.MacroArg] = []
            for step in sub.steps:
                step(parser, args)
            return nodes.TupleValue(args)

        return parse_tuple

    raise TypeError(f"unknown pspec {type(pspec).__name__}")


def _present(parser: "Parser", first, follow_text: str | None) -> bool:
    token = parser.peek()
    if token.kind is TokenKind.EOF:
        return False
    if follow_text is not None and token.text == follow_text:
        return False
    if token.kind is TokenKind.PLACEHOLDER:
        return True
    return first.contains_token(token)
