"""The macro body/template compiler: meta-programs lowered to Python.

The cache-off ("cold") expansion path runs every macro body through the
tree-walking interpreter of :mod:`repro.meta.interp` and fills every
backquote template node by node through
:func:`repro.macros.template.instantiate`.  The paper's section 3
observation — that per-macro parse routines can be *compiled* rather
than interpreted — extends to the whole macro: this module lowers a
macro body (a C-subset meta-program) to one generated Python function,
compiled once with :func:`compile` and cached on the
:class:`~repro.macros.definition.MacroDefinition`:

* meta statements and expressions become straight-line Python
  (meta-variables are alpha-renamed Python locals, scoping resolved at
  compile time);
* backquote templates become direct C-AST constructor calls
  (``BinaryOp(Identifier(...), ...)``) — no field introspection, no
  per-node dispatch — with hygiene marks and provenance locations
  stamped exactly as the instantiator would;
* builtin and meta-function calls dispatch through tiny runtime
  helpers that replicate the interpreter's frame-then-builtin lookup
  (so later ``meta`` redefinitions are still honoured).

Compilation is **semantics-neutral by contract**: every runtime helper
reproduces the interpreter's checks and error messages verbatim, value
adaptation and cloning reuse :mod:`repro.macros.template`'s own
functions, and any construct the compiler does not handle makes the
whole macro fall back to the interpreter (counted in
``PipelineStats.compile_fallbacks``).  The only sanctioned divergence
is fuel accounting: compiled bodies charge the shared step budget in
static per-statement batches rather than per node, so a runaway
meta-program still exhausts the identical budget with the identical
error message, merely at a slightly different step.

Environment: ``MS2_DISABLE_BODY_COMPILE=1`` is an operational kill
switch forcing every body through the interpreter (used by CI's
compiled-off leg); ``MS2_BODY_COMPILE_DEBUG=1`` re-raises compiler
errors instead of falling back (development aid).
"""

from __future__ import annotations

import dataclasses
import os
import re
import time
from typing import Any

from repro.asttypes.convert import bindings_from_declaration
from repro.asttypes.types import CType, ListType
from repro.cast import ctypes, decls, nodes, stmts
from repro.cast.base import Node
from repro.errors import MetaInterpError, Ms2Error
from repro.macros.pattern import ParamElement
from repro.macros.template import (
    _PLACEHOLDER_CLASSES,
    _normalize,
    adapt_list_to_scalar,
    fill_placeholder,
)
from repro.meta.builtins import BUILTIN_IMPLS
from repro.meta.frames import NULL, NullValue
from repro.meta.interp import (
    MAX_STEPS,
    _Break,
    _c_div,
    _c_mod,
    _Continue,
    _require_int,
    _require_number,
    default_value,
)
from repro.meta.values import Closure, extract_component, truthy, values_equal

__all__ = [
    "CompiledBody",
    "CompiledClosure",
    "compile_macro_body",
    "get_compiled_body",
]

#: Kill switch: force the interpreter everywhere (CI compiled-off leg).
_DISABLED = os.environ.get("MS2_DISABLE_BODY_COMPILE", "") not in ("", "0")
#: Development aid: re-raise compiler bugs instead of falling back.
_DEBUG = os.environ.get("MS2_BODY_COMPILE_DEBUG", "") not in ("", "0")


class _Uncompilable(Exception):
    """Internal signal: this body uses a construct the compiler punts
    on; the whole macro stays interpreted."""

    def __init__(self, construct: str) -> None:
        super().__init__(construct)
        self.construct = construct


class CompiledClosure(Closure):
    """An anonymous meta-function whose body was compiled to Python.

    ``pyfunc(interp, args)`` evaluates the body expression.  The class
    masquerades as ``Closure`` in ``type(x).__name__`` so dynamic-type
    error messages stay byte-identical to the interpreter's.
    """

    __slots__ = ("pyfunc",)

    def __init__(self, params: list[str], pyfunc: Any) -> None:
        super().__init__("", params, None, None, is_anon=True)
        self.pyfunc = pyfunc


CompiledClosure.__name__ = "Closure"
CompiledClosure.__qualname__ = "Closure"


class CompiledBody:
    """One macro body lowered to a Python function.

    ``call`` mirrors :meth:`Interpreter.call_macro` exactly: same
    missing-return and recursion-limit errors, same return value.
    """

    __slots__ = ("name", "params", "pyfunc", "loc", "template_count")

    def __init__(
        self,
        name: str,
        params: frozenset[str],
        pyfunc: Any,
        loc: Any,
        template_count: int,
    ) -> None:
        self.name = name
        self.params = params
        self.pyfunc = pyfunc
        self.loc = loc
        self.template_count = template_count

    def call(self, interp: Any, bindings: dict[str, Any]) -> Any:
        try:
            return self.pyfunc(interp, bindings)
        except RecursionError:
            raise MetaInterpError(
                "meta-program exceeded the interpreter's recursion "
                f"limit (while expanding {self.name!r}); deeply "
                "recursive meta-function?",
                self.loc,
            ) from None


def get_compiled_body(definition: Any, stats: Any = None) -> CompiledBody | None:
    """The compiled body for ``definition``, compiling (once) on first
    use; ``None`` when compilation fell back to the interpreter.

    The result is cached on the definition (``compiled_body`` holds the
    :class:`CompiledBody`, or ``False`` after a fallback), so the
    compile cost is paid once per macro, not per invocation.
    """
    if _DISABLED:
        return None
    body = definition.compiled_body
    if body is None:
        start = time.perf_counter()
        try:
            body = compile_macro_body(definition)
        except _Uncompilable:
            body = False
        except (Ms2Error, Exception):  # noqa: B014 - never break expansion
            if _DEBUG:
                raise
            body = False
        definition.compiled_body = body
        if stats is not None:
            stats.compile_time_ms += (time.perf_counter() - start) * 1000.0
            if body is False:
                stats.compile_fallbacks += 1
            else:
                stats.bodies_compiled += 1
                stats.templates_compiled += body.template_count
    return body or None


def compile_macro_body(definition: Any) -> CompiledBody:
    """Lower ``definition.body`` to a :class:`CompiledBody`.

    Raises :class:`_Uncompilable` (internal) for constructs the
    compiler punts on — ``switch``, ``break``/``continue`` outside any
    loop, declarations the type converter rejects.
    """
    params = [
        el.name
        for el in definition.pattern.elements
        if isinstance(el, ParamElement)
    ]
    compiler = _BodyCompiler(definition, params)
    return compiler.compile()


# ---------------------------------------------------------------------------
# Runtime helpers — each one replicates an interpreter code path
# (checks, messages and evaluation order) exactly.
# ---------------------------------------------------------------------------


def _over(loc: Any) -> None:
    raise MetaInterpError(
        "meta-program exceeded its execution budget "
        f"({MAX_STEPS} steps); infinite loop in a macro body?",
        loc,
    )


def _nr(name: str, loc: Any) -> None:
    raise MetaInterpError(
        f"macro {name!r} finished without returning a value", loc
    )


def _g(I: Any, name: str, loc: Any) -> Any:
    return I.globals.lookup(name, loc)


def _ag(I: Any, name: str, value: Any, loc: Any) -> Any:
    I.globals.assign(name, value, loc)
    return value


def _callg(I: Any, name: str, args: list, loc: Any) -> Any:
    g = I.globals
    if name in g:
        target = g.lookup(name, loc)
        if not isinstance(target, Closure):
            raise MetaInterpError(f"{name!r} is not callable", loc)
        return I.call_closure(target, args, loc)
    impl = BUILTIN_IMPLS.get(name)
    if impl is not None:
        return impl(I, args, loc)
    raise MetaInterpError(f"call to unknown meta-function {name!r}", loc)


def _callv(I: Any, name: str, target: Any, args: list, loc: Any) -> Any:
    if not isinstance(target, Closure):
        raise MetaInterpError(f"{name!r} is not callable", loc)
    return I.call_closure(target, args, loc)


def _calle(I: Any, args: list, target: Any, loc: Any) -> Any:
    if isinstance(target, Closure):
        return I.call_closure(target, args, loc)
    raise MetaInterpError("called value is not a function", loc)


def _raise_expr(name: str, loc: Any) -> Any:
    raise MetaInterpError(
        f"expression form {name} is not executable in meta-code", loc
    )


def _raise_stmt(name: str, loc: Any) -> None:
    raise MetaInterpError(
        f"statement form {name} is not executable in meta-code", loc
    )


def _raise_decl(name: str, loc: Any) -> None:
    raise MetaInterpError(f"cannot execute {name} in meta-code", loc)


def _badop(op: str, loc: Any) -> Any:
    raise MetaInterpError(f"operator {op!r} not executable", loc)


def _reqint(v: Any, loc: Any) -> Any:
    _require_int(v, loc)
    return v


# -- binary operators (interpreter's _eval_BinaryOp, one op each) ----------


def _add(l: Any, r: Any, loc: Any) -> Any:
    if type(l) is int and type(r) is int:
        return l + r
    if isinstance(l, list):
        _require_int(r, loc)
        if r < 0 or r > len(l):
            raise MetaInterpError(
                f"list offset {r} out of range (list of {len(l)})", loc
            )
        return l[r:]
    _require_number(l, loc)
    _require_number(r, loc)
    return l + r


def _sub(l: Any, r: Any, loc: Any) -> Any:
    if type(l) is int and type(r) is int:
        return l - r
    _require_number(l, loc)
    _require_number(r, loc)
    return l - r


def _mul(l: Any, r: Any, loc: Any) -> Any:
    if type(l) is int and type(r) is int:
        return l * r
    _require_number(l, loc)
    _require_number(r, loc)
    return l * r


def _div(l: Any, r: Any, loc: Any) -> Any:
    if not (type(l) is int and type(r) is int):
        _require_number(l, loc)
        _require_number(r, loc)
    if r == 0:
        raise MetaInterpError("division by zero in meta-code", loc)
    if isinstance(l, int) and isinstance(r, int):
        return _c_div(l, r)
    return l / r


def _mod(l: Any, r: Any, loc: Any) -> Any:
    if not (type(l) is int and type(r) is int):
        _require_number(l, loc)
        _require_number(r, loc)
    if r == 0:
        raise MetaInterpError("modulo by zero in meta-code", loc)
    return _c_mod(l, r)


def _eq(l: Any, r: Any, loc: Any) -> int:
    if type(l) is int and type(r) is int:
        return int(l == r)
    return int(values_equal(l, r))


def _ne(l: Any, r: Any, loc: Any) -> int:
    if type(l) is int and type(r) is int:
        return int(l != r)
    return int(not values_equal(l, r))


def _lt(l: Any, r: Any, loc: Any) -> int:
    if type(l) is int and type(r) is int:
        return int(l < r)
    _require_number(l, loc)
    _require_number(r, loc)
    return int(l < r)


def _gt(l: Any, r: Any, loc: Any) -> int:
    if type(l) is int and type(r) is int:
        return int(l > r)
    _require_number(l, loc)
    _require_number(r, loc)
    return int(l > r)


def _le(l: Any, r: Any, loc: Any) -> int:
    if type(l) is int and type(r) is int:
        return int(l <= r)
    _require_number(l, loc)
    _require_number(r, loc)
    return int(l <= r)


def _ge(l: Any, r: Any, loc: Any) -> int:
    if type(l) is int and type(r) is int:
        return int(l >= r)
    _require_number(l, loc)
    _require_number(r, loc)
    return int(l >= r)


def _shl(l: Any, r: Any, loc: Any) -> Any:
    if type(l) is int and type(r) is int:
        return l << r
    _require_number(l, loc)
    _require_number(r, loc)
    _require_int(l, loc)
    _require_int(r, loc)
    return l << r


def _shr(l: Any, r: Any, loc: Any) -> Any:
    if type(l) is int and type(r) is int:
        return l >> r
    _require_number(l, loc)
    _require_number(r, loc)
    _require_int(l, loc)
    _require_int(r, loc)
    return l >> r


def _band(l: Any, r: Any, loc: Any) -> Any:
    _require_number(l, loc)
    _require_number(r, loc)
    return l & r


def _bor(l: Any, r: Any, loc: Any) -> Any:
    _require_number(l, loc)
    _require_number(r, loc)
    return l | r


def _bxor(l: Any, r: Any, loc: Any) -> Any:
    _require_number(l, loc)
    _require_number(r, loc)
    return l ^ r


# -- unary operators --------------------------------------------------------


def _neg(v: Any, loc: Any) -> Any:
    if type(v) is int:
        return -v
    _require_number(v, loc)
    return -v


def _pos(v: Any, loc: Any) -> Any:
    _require_number(v, loc)
    return v


def _inv(v: Any, loc: Any) -> Any:
    _require_int(v, loc)
    return ~v


def _head(v: Any, loc: Any) -> Any:
    if isinstance(v, list):
        if not v:
            raise MetaInterpError("head (*) of an empty list", loc)
        return v[0]
    raise MetaInterpError("unary * applies to meta-lists only", loc)


# -- index / member / cast / assignment targets ----------------------------


def _ix(seq: Any, index: Any, loc: Any) -> Any:
    if isinstance(seq, list) and isinstance(index, int):
        if index < 0 or index >= len(seq):
            raise MetaInterpError(
                f"list index {index} out of range (list of {len(seq)})",
                loc,
            )
        return seq[index]
    if isinstance(seq, str) and isinstance(index, int):
        if index < 0 or index >= len(seq):
            raise MetaInterpError("string index out of range", loc)
        return ord(seq[index])
    raise MetaInterpError(
        "indexing requires a list (or string) and an int", loc
    )


def _mb(base: Any, name: str, loc: Any) -> Any:
    if isinstance(base, nodes.TupleValue):
        try:
            return base.get(name)
        except KeyError:
            raise MetaInterpError(
                f"tuple has no field {name!r}", loc
            ) from None
    if isinstance(base, Node):
        return extract_component(base, name, loc)
    raise MetaInterpError(
        f"cannot select {name!r} from {type(base).__name__} value", loc
    )


def _cast(v: Any) -> Any:
    if isinstance(v, float):
        return int(v)
    return v


def _aix(seq: Any, index: Any, value: Any, loc: Any) -> Any:
    if not isinstance(seq, list) or not isinstance(index, int):
        raise MetaInterpError(
            "indexed assignment requires a list and an int", loc
        )
    if index < 0 or index >= len(seq):
        raise MetaInterpError(f"list index {index} out of range", loc)
    seq[index] = value
    return value


def _amb(base: Any, name: str, value: Any, loc: Any) -> Any:
    if isinstance(base, nodes.TupleValue):
        for f in base.fields:
            if f.name == name:
                f.value = value
                return value
        raise MetaInterpError(f"tuple has no field {name!r}", loc)
    raise MetaInterpError(
        "member assignment requires a tuple value", loc
    )


# -- template helpers -------------------------------------------------------


def _aslist(v: Any) -> list:
    return v if isinstance(v, list) else [v]


def _sc(result: Any, tname: str, fname: str, loc: Any, mark: Any) -> Any:
    """Scalar position: adapt a list-valued fill, pass nodes through."""
    if isinstance(result, list):
        return adapt_list_to_scalar(result, tname, fname, loc, mark)
    return result


def _fillx(ph: Node, value: Any) -> Any:
    """``PlaceholderExpr`` fill fast path: meta ints/floats/strings
    become fresh literal nodes directly — ``fill_placeholder`` would
    construct the identical node and then deep-copy it.  Node and list
    values (and the NULL error) take the shared path unchanged."""
    cls = value.__class__
    if cls is int:
        return nodes.IntLit(value)
    if cls is str:
        return nodes.StringLit(value)
    if cls is float:
        return nodes.FloatLit(value)
    return fill_placeholder(ph, value)


#: exec() namespace shared by every generated body (read-only).
_HELPER_NS: dict[str, Any] = {
    "__builtins__": {},
    "int": int,
    "_N": NULL,
    "_Break": _Break,
    "_Continue": _Continue,
    "_CC": CompiledClosure,
    "_truthy": truthy,
    "_over": _over,
    "_nr": _nr,
    "_g": _g,
    "_ag": _ag,
    "_callg": _callg,
    "_callv": _callv,
    "_calle": _calle,
    "_raise_expr": _raise_expr,
    "_raise_stmt": _raise_stmt,
    "_raise_decl": _raise_decl,
    "_badop": _badop,
    "_reqint": _reqint,
    "_add": _add,
    "_sub": _sub,
    "_mul": _mul,
    "_div": _div,
    "_mod": _mod,
    "_eq": _eq,
    "_ne": _ne,
    "_lt": _lt,
    "_gt": _gt,
    "_le": _le,
    "_ge": _ge,
    "_shl": _shl,
    "_shr": _shr,
    "_band": _band,
    "_bor": _bor,
    "_bxor": _bxor,
    "_neg": _neg,
    "_pos": _pos,
    "_inv": _inv,
    "_head": _head,
    "_ix": _ix,
    "_mb": _mb,
    "_cast": _cast,
    "_aix": _aix,
    "_amb": _amb,
    "_fill": fill_placeholder,
    "_fillx": _fillx,
    "_aslist": _aslist,
    "_sc": _sc,
    "_nz": _normalize,
    "_dflt": default_value,
}

#: Binary meta-operator -> runtime helper (short-circuit ops excluded).
_BINOP_HELPERS = {
    "+": "_add", "-": "_sub", "*": "_mul", "/": "_div", "%": "_mod",
    "==": "_eq", "!=": "_ne", "<": "_lt", ">": "_gt", "<=": "_le",
    ">=": "_ge", "<<": "_shl", ">>": "_shr", "&": "_band", "|": "_bor",
    "^": "_bxor",
}

#: Operator -> inline form, used when both operand code strings are
#: side-effect-free atoms and both values are ints at runtime.  Each
#: fast form replicates its helper's int path exactly: comparisons
#: produce 0/1 ints, and ``/`` / ``%`` only shortcut where Python
#: floor semantics coincide with the C truncation the helpers
#: implement (non-negative over positive).
_INT_FAST_OPS = {
    "+": "{l} + {r}",
    "-": "{l} - {r}",
    "*": "{l} * {r}",
    "/": "{l} // {r}",
    "%": "{l} % {r}",
    "==": "(1 if {l} == {r} else 0)",
    "!=": "(1 if {l} != {r} else 0)",
    "<": "(1 if {l} < {r} else 0)",
    ">": "(1 if {l} > {r} else 0)",
    "<=": "(1 if {l} <= {r} else 0)",
    ">=": "(1 if {l} >= {r} else 0)",
}

_CMP_OPS = frozenset(("==", "!=", "<", ">", "<=", ">="))

#: Generated-code strings safe to mention more than once: Python
#: locals produced by the compiler itself and non-negative int
#: literals.  (Global reads compile to ``_g(...)`` calls and never
#: match, so re-evaluation semantics are preserved.)
_ATOM_RE = re.compile(r"(?:[A-Za-z_]\w*|\d+)\Z")


def _is_atom(code: str) -> bool:
    return _ATOM_RE.match(code) is not None


def _int_guards(op: str, left: str, right: str) -> list[str] | None:
    """Runtime conditions under which ``op``'s inline form is exact.
    Digit atoms are int literals, so their type (and sign) guards are
    settled statically; returns ``None`` when the fast form can never
    apply (e.g. a literal division by zero must use the helper)."""
    guards = []
    if not left[0].isdigit():
        guards.append(f"{left}.__class__ is int")
    if not right[0].isdigit():
        guards.append(f"{right}.__class__ is int")
    if op in ("/", "%"):
        if not left[0].isdigit():
            guards.append(f"{left} >= 0")
        if right[0].isdigit():
            if int(right) <= 0:
                return None
        else:
            guards.append(f"{right} > 0")
    return guards

#: Node classes whose rebuilt form needs template._normalize fixups.
_NORMALIZED_CLASSES = (
    ctypes.EnumType,
    ctypes.StructOrUnionType,
    nodes.Member,
    decls.Declaration,
    stmts.CompoundStmt,
)

#: Values inlined as Python literals in generated source.
_INLINE_TYPES = (str, int, float, bool, type(None))


class _Scope:
    """Compile-time lexical scope: meta name -> generated Python local."""

    __slots__ = ("parent", "names")

    def __init__(self, parent: "_Scope | None" = None) -> None:
        self.parent = parent
        self.names: dict[str, str] = {}

    def lookup(self, name: str) -> str | None:
        scope: _Scope | None = self
        while scope is not None:
            py = scope.names.get(name)
            if py is not None:
                return py
            scope = scope.parent
        return None


class _FnCtx:
    """One generated Python function (the body, or a nested anon fn)."""

    __slots__ = ("own_names", "nonlocals")

    def __init__(self) -> None:
        self.own_names: set[str] = set()
        self.nonlocals: set[str] = set()


class _BodyCompiler:
    """Lowers one macro body to Python source and compiles it."""

    def __init__(self, definition: Any, params: list[str]) -> None:
        self.definition = definition
        self.param_names = params
        self.lines: list[str] = []
        self.consts: list[Any] = []
        self.const_names: dict[int, str] = {}
        self.ns: dict[str, Any] = {}
        self.counter = 0
        self.template_count = 0
        #: Innermost-first loop kinds ("while" / "for" / "dowhile").
        self.loop_stack: list[str] = []
        #: Pending statement lines (nested defs) to flush before the
        #: line that uses them; one list per open function context.
        self.pending: list[list[str]] = [[]]
        self.fn_stack: list[_FnCtx] = [_FnCtx()]

    # -- small utilities ----------------------------------------------

    def fresh(self, stem: str) -> str:
        self.counter += 1
        return f"{stem}{self.counter}"

    def const(self, value: Any) -> str:
        name = self.const_names.get(id(value))
        if name is None:
            name = f"c{len(self.consts)}"
            self.const_names[id(value)] = name
            self.consts.append(value)
            self.ns[name] = value
        return name

    def lit(self, value: Any) -> str:
        """A Python expression for a constant value."""
        if type(value) in (str, int, float, bool, type(None)):
            return repr(value)
        return self.const(value)

    def emit(self, indent: int, text: str) -> None:
        self.lines.append("    " * indent + text)

    def flush_pending(self, indent: int) -> None:
        lines = self.pending[-1]
        if lines:
            for line in lines:
                self.emit(indent, line)
            self.pending[-1] = []

    def charge(self, indent: int, n: int, loc: Any) -> None:
        """Fuel: batch-charge ``n`` interpreter ticks."""
        if n <= 0:
            return
        self.emit(indent, f"I._steps += {n}")
        self.emit(
            indent,
            f"if I._steps > {MAX_STEPS}: _over({self.const(loc)})",
        )

    def define_local(self, scope: _Scope, name: str) -> str:
        py = f"u{self.counter}_{name}"
        self.counter += 1
        scope.names[name] = py
        self.fn_stack[-1].own_names.add(py)
        return py

    def note_assignment(self, py: str) -> None:
        """Track assignments to enclosing-function locals so nested
        defs declare them ``nonlocal``."""
        ctx = self.fn_stack[-1]
        if py not in ctx.own_names:
            ctx.nonlocals.add(py)

    # -- entry point ---------------------------------------------------

    def compile(self) -> CompiledBody:
        definition = self.definition
        body = definition.body
        if not isinstance(body, stmts.CompoundStmt):
            raise _Uncompilable("non-compound body")
        scope = _Scope()
        self.emit(0, "def _body(I, B):")
        self.emit(1, "M = I.current_mark")
        for name in self.param_names:
            py = self.define_local(scope, name)
            self.emit(1, f"{py} = B[{name!r}]")
        # call_macro's exec_compound gives the body its own block scope
        # under the parameter frame.
        self.compile_block(body, _Scope(scope), 1)
        self.emit(
            1,
            f"_nr({definition.name!r}, {self.const(body.loc)})",
        )
        source = "\n".join(self.lines) + "\n"
        code = compile(source, f"<ms2:{definition.name}>", "exec")
        ns = dict(_HELPER_NS)
        ns.update(self.ns)
        exec(code, ns)
        return CompiledBody(
            definition.name,
            frozenset(self.param_names),
            ns["_body"],
            body.loc,
            self.template_count,
        )

    # -- statements ----------------------------------------------------

    def compile_block(
        self, block: stmts.CompoundStmt, scope: _Scope, indent: int
    ) -> None:
        """A compound's declarations then statements (C89 order), in
        the given (fresh) scope."""
        for d in block.decls:
            self.compile_declaration(d, scope, indent)
        for s in block.stmts:
            self.compile_stmt(s, scope, indent)

    def compile_declaration(
        self, d: Node, scope: _Scope, indent: int
    ) -> None:
        if not isinstance(d, decls.Declaration):
            # The interpreter raises lazily, when the block executes.
            self.emit(
                indent,
                f"_raise_decl({type(d).__name__!r}, {self.const(d.loc)})",
            )
            return
        try:
            bindings = bindings_from_declaration(d)
        except Ms2Error:
            # The converter would raise the same (deterministic) error
            # at run time; keep the interpreter's exact behaviour.
            raise _Uncompilable("declaration") from None
        for (name, asttype), item in zip(bindings, d.init_declarators):
            if (
                isinstance(item, decls.InitDeclarator)
                and item.init is not None
            ):
                code, ticks = self.compile_expr(item.init, scope)
                self.charge(indent, ticks, item.init.loc)
                self.flush_pending(indent)
                py = self.define_local(scope, name)
                self.emit(indent, f"{py} = {code}")
            else:
                py = self.define_local(scope, name)
                self.emit(indent, f"{py} = {self.default_code(asttype)}")

    def default_code(self, asttype: Any) -> str:
        if isinstance(asttype, ListType):
            return "[]"
        if isinstance(asttype, CType):
            if asttype.name in ("int", "char"):
                return "0"
            if asttype.name == "float":
                return "0.0"
            if asttype.name == "string":
                return "''"
            return "_N"
        if asttype is None:
            return "_N"
        return f"_dflt({self.const(asttype)})"

    def compile_stmt(self, s: Node, scope: _Scope, indent: int) -> None:
        if isinstance(s, stmts.ExprStmt):
            code, ticks = self.compile_expr(s.expr, scope)
            self.charge(indent, 1 + ticks, s.loc)
            self.flush_pending(indent)
            self.emit(indent, code)
        elif isinstance(s, stmts.CompoundStmt):
            self.charge(indent, 1, s.loc)
            self.compile_block(s, _Scope(scope), indent)
        elif isinstance(s, stmts.IfStmt):
            cond, ticks = self.compile_condition(s.cond, scope, s.loc)
            self.charge(indent, 1 + ticks, s.loc)
            self.flush_pending(indent)
            self.emit(indent, f"if {cond}:")
            self.compile_stmt(s.then, scope, indent + 1)
            if s.otherwise is not None:
                self.emit(indent, "else:")
                self.compile_stmt(s.otherwise, scope, indent + 1)
        elif isinstance(s, stmts.WhileStmt):
            self.compile_while(s, scope, indent)
        elif isinstance(s, stmts.DoWhileStmt):
            self.compile_dowhile(s, scope, indent)
        elif isinstance(s, stmts.ForStmt):
            self.compile_for(s, scope, indent)
        elif isinstance(s, stmts.ReturnStmt):
            if s.expr is None:
                self.charge(indent, 1, s.loc)
                self.emit(indent, "return _N")
            else:
                code, ticks = self.compile_expr(s.expr, scope)
                self.charge(indent, 1 + ticks, s.loc)
                self.flush_pending(indent)
                self.emit(indent, f"return {code}")
        elif isinstance(s, stmts.BreakStmt):
            if not self.loop_stack:
                raise _Uncompilable("break outside loop")
            self.charge(indent, 1, s.loc)
            self.emit(indent, "break")
        elif isinstance(s, stmts.ContinueStmt):
            if not self.loop_stack:
                raise _Uncompilable("continue outside loop")
            self.charge(indent, 1, s.loc)
            if self.loop_stack[-1] == "while":
                self.emit(indent, "continue")
            else:
                # C continue in for/do-while falls through to the step
                # (or the bottom condition): replicate the
                # interpreter's exception-based jump.
                self.emit(indent, "raise _Continue()")
        elif isinstance(s, stmts.NullStmt):
            self.charge(indent, 1, s.loc)
        elif isinstance(s, stmts.LabeledStmt):
            self.charge(indent, 1, s.loc)
            self.compile_stmt(s.stmt, scope, indent)
        elif isinstance(s, stmts.SwitchStmt):
            raise _Uncompilable("switch")
        else:
            self.charge(indent, 1, s.loc)
            self.emit(
                indent,
                f"_raise_stmt({type(s).__name__!r}, {self.const(s.loc)})",
            )

    # Loop bodies are wrapped in ``try/except _Break/_Continue`` even
    # though break/continue compile to native jumps: the interpreter's
    # loop handlers also catch a stray ``break;`` escaping from a
    # *called* (interpreted) meta-function, and parity includes that
    # corner.  try/except is free on the non-raising path (3.11+).

    def compile_while(
        self, s: stmts.WhileStmt, scope: _Scope, indent: int
    ) -> None:
        self.charge(indent, 1, s.loc)
        cond, cticks = self.compile_condition(s.cond, scope, s.loc)
        cond_pending = self.pending[-1]
        self.pending[-1] = []
        if cond_pending:
            self.emit(indent, "while True:")
            body_indent = indent + 1
            for line in cond_pending:
                self.emit(body_indent, line)
            self.emit(body_indent, f"if not {cond}: break")
        else:
            self.emit(indent, f"while {cond}:")
            body_indent = indent + 1
        self.charge(body_indent, 1 + cticks, s.loc)
        self.emit(body_indent, "try:")
        self.loop_stack.append("while")
        self.compile_stmt(s.body, scope, body_indent + 1)
        self.loop_stack.pop()
        self.emit(body_indent, "except _Break: break")
        self.emit(body_indent, "except _Continue: continue")

    def compile_dowhile(
        self, s: stmts.DoWhileStmt, scope: _Scope, indent: int
    ) -> None:
        self.charge(indent, 1, s.loc)
        self.emit(indent, "while True:")
        body_indent = indent + 1
        cond, cticks = self.compile_condition(s.cond, scope, s.loc)
        cond_pending = self.pending[-1]
        self.pending[-1] = []
        self.charge(body_indent, 1 + cticks, s.loc)
        self.emit(body_indent, "try:")
        self.loop_stack.append("dowhile")
        self.compile_stmt(s.body, scope, body_indent + 1)
        self.loop_stack.pop()
        self.emit(body_indent, "except _Break: break")
        self.emit(body_indent, "except _Continue: pass")
        for line in cond_pending:
            self.emit(body_indent, line)
        self.emit(body_indent, f"if not {cond}: break")

    def compile_for(
        self, s: stmts.ForStmt, scope: _Scope, indent: int
    ) -> None:
        init_ticks = 0
        if s.init is not None:
            init_code, init_ticks = self.compile_expr(s.init, scope)
        self.charge(indent, 1 + init_ticks, s.loc)
        self.flush_pending(indent)
        if s.init is not None:
            self.emit(indent, init_code)
        cond = None
        cticks = 0
        if s.cond is not None:
            cond, cticks = self.compile_condition(s.cond, scope, s.loc)
        cond_pending = self.pending[-1]
        self.pending[-1] = []
        if cond is not None and not cond_pending:
            self.emit(indent, f"while {cond}:")
            body_indent = indent + 1
        else:
            self.emit(indent, "while True:")
            body_indent = indent + 1
            if cond is not None:
                for line in cond_pending:
                    self.emit(body_indent, line)
                self.emit(body_indent, f"if not {cond}: break")
        step_code = None
        sticks = 0
        if s.step is not None:
            step_code, sticks = self.compile_expr(s.step, scope)
        step_pending = self.pending[-1]
        self.pending[-1] = []
        self.charge(body_indent, 1 + cticks + sticks, s.loc)
        self.emit(body_indent, "try:")
        self.loop_stack.append("for")
        self.compile_stmt(s.body, scope, body_indent + 1)
        self.loop_stack.pop()
        self.emit(body_indent, "except _Break: break")
        self.emit(body_indent, "except _Continue: pass")
        if step_code is not None:
            for line in step_pending:
                self.emit(body_indent, line)
            self.emit(body_indent, step_code)

    # -- expressions ---------------------------------------------------
    #
    # Each compiles to one Python *expression* (so templates and
    # conditions stay inline); the paired int is the statically known
    # number of interpreter ticks the equivalent evaluation performs
    # unconditionally (short-circuited operands are undercounted —
    # fuel batches may only ever under-charge, never over-charge).

    def compile_expr(self, e: Node, scope: _Scope) -> tuple[str, int]:
        if isinstance(e, nodes.Identifier):
            py = scope.lookup(e.name)
            if py is not None:
                return py, 1
            return f"_g(I, {e.name!r}, {self.const(e.loc)})", 1
        if isinstance(e, nodes.IntLit):
            return repr(e.value), 1
        if isinstance(e, nodes.FloatLit):
            return repr(e.value), 1
        if isinstance(e, nodes.CharLit):
            return repr(e.value), 1
        if isinstance(e, nodes.StringLit):
            return repr(e.value), 1
        if isinstance(e, nodes.BinaryOp):
            return self.compile_binop(e, scope)
        if isinstance(e, nodes.UnaryOp):
            return self.compile_unary(e, scope)
        if isinstance(e, nodes.PostfixOp):
            return self.compile_incdec(e, e.op, scope, post=True)
        if isinstance(e, nodes.AssignOp):
            return self.compile_assign(e, scope)
        if isinstance(e, nodes.ConditionalOp):
            cond, ct = self.compile_condition(e.cond, scope, e.loc)
            then, _ = self.compile_expr(e.then, scope)
            other, _ = self.compile_expr(e.otherwise, scope)
            return f"({then} if {cond} else {other})", 1 + ct
        if isinstance(e, nodes.CommaOp):
            left, lt = self.compile_expr(e.left, scope)
            right, rt = self.compile_expr(e.right, scope)
            return f"({left}, {right})[1]", 1 + lt + rt
        if isinstance(e, nodes.Index):
            base, bt = self.compile_expr(e.base, scope)
            index, it = self.compile_expr(e.index, scope)
            return (
                f"_ix({base}, {index}, {self.const(e.loc)})",
                1 + bt + it,
            )
        if isinstance(e, nodes.Member):
            base, bt = self.compile_expr(e.base, scope)
            return (
                f"_mb({base}, {e.name!r}, {self.const(e.loc)})",
                1 + bt,
            )
        if isinstance(e, nodes.Cast):
            operand, ot = self.compile_expr(e.operand, scope)
            return f"_cast({operand})", 1 + ot
        if isinstance(e, nodes.Call):
            return self.compile_call(e, scope)
        if isinstance(e, nodes.Backquote):
            return self.compile_template_expr(e, scope)
        if isinstance(e, nodes.AnonFunction):
            return self.compile_anon(e, scope)
        if isinstance(e, nodes.PlaceholderExpr):
            # Outside a template the interpreter evaluates the
            # placeholder's meta-expression directly.
            code, ticks = self.compile_expr(e.meta_expr, scope)
            return code, 1 + ticks
        # Anything else raises lazily, exactly when evaluated.
        return (
            f"_raise_expr({type(e).__name__!r}, {self.const(e.loc)})",
            1,
        )

    def compile_binop(
        self, e: nodes.BinaryOp, scope: _Scope
    ) -> tuple[str, int]:
        loc = self.const(e.loc)
        if e.op == "&&":
            left, lt = self.compile_condition(e.left, scope, e.loc)
            right, _ = self.compile_condition(e.right, scope, e.loc)
            return (
                f"((1 if {right} else 0) if {left} else 0)",
                1 + lt,
            )
        if e.op == "||":
            left, lt = self.compile_condition(e.left, scope, e.loc)
            right, _ = self.compile_condition(e.right, scope, e.loc)
            return (
                f"(1 if {left} else (1 if {right} else 0))",
                1 + lt,
            )
        helper = _BINOP_HELPERS.get(e.op)
        left, lt = self.compile_expr(e.left, scope)
        right, rt = self.compile_expr(e.right, scope)
        if helper is None:
            return f"_badop({e.op!r}, {loc})", 1 + lt + rt
        fast = _INT_FAST_OPS.get(e.op)
        if fast is not None and _is_atom(left) and _is_atom(right):
            guards = _int_guards(e.op, left, right)
            if guards:
                return (
                    f"({fast.format(l=left, r=right)}"
                    f" if {' and '.join(guards)}"
                    f" else {helper}({left}, {right}, {loc}))",
                    1 + lt + rt,
                )
            if guards is not None:
                return (
                    f"({fast.format(l=left, r=right)})",
                    1 + lt + rt,
                )
        return f"{helper}({left}, {right}, {loc})", 1 + lt + rt

    def compile_condition(
        self, e: Node, scope: _Scope, at: Any
    ) -> tuple[str, int]:
        """Code for ``e`` in a boolean context (if/while/ternary
        tests): an all-int comparison between atoms tests natively,
        anything else funnels through ``_truthy`` exactly as the
        interpreter does.  ``at`` is the location the enclosing
        construct reports (statement loc for statements)."""
        if isinstance(e, nodes.BinaryOp) and e.op in _CMP_OPS:
            left, lt = self.compile_expr(e.left, scope)
            right, rt = self.compile_expr(e.right, scope)
            loc = self.const(at)
            helper = _BINOP_HELPERS[e.op]
            if _is_atom(left) and _is_atom(right):
                guards = _int_guards(e.op, left, right)
                eloc = self.const(e.loc)
                if guards:
                    return (
                        f"({left} {e.op} {right}"
                        f" if {' and '.join(guards)}"
                        f" else _truthy("
                        f"{helper}({left}, {right}, {eloc}), {loc}))",
                        1 + lt + rt,
                    )
                return f"({left} {e.op} {right})", 1 + lt + rt
            eloc = self.const(e.loc)
            return (
                f"_truthy({helper}({left}, {right}, {eloc}), {loc})",
                1 + lt + rt,
            )
        code, ticks = self.compile_expr(e, scope)
        return f"_truthy({code}, {self.const(at)})", ticks

    def compile_unary(
        self, e: nodes.UnaryOp, scope: _Scope
    ) -> tuple[str, int]:
        if e.op in ("++", "--"):
            return self.compile_incdec(e, e.op, scope, post=False)
        if e.op == "!":
            cond, ot = self.compile_condition(e.operand, scope, e.loc)
            return f"(0 if {cond} else 1)", 1 + ot
        operand, ot = self.compile_expr(e.operand, scope)
        loc = self.const(e.loc)
        if e.op == "*":
            return f"_head({operand}, {loc})", 1 + ot
        if e.op == "-":
            return f"_neg({operand}, {loc})", 1 + ot
        if e.op == "+":
            return f"_pos({operand}, {loc})", 1 + ot
        if e.op == "~":
            return f"_inv({operand}, {loc})", 1 + ot
        return f"_badop({e.op!r}, {loc})", 1 + ot

    def compile_incdec(
        self, e: Node, op: str, scope: _Scope, post: bool
    ) -> tuple[str, int]:
        """``++x`` / ``x++`` and friends: read, require int, write
        back via the same target shapes the interpreter accepts."""
        target = e.operand
        read, rticks = self.compile_expr(target, scope)
        loc = self.const(e.loc)
        delta = "+ 1" if op == "++" else "- 1"
        if _is_atom(read) and not read[0].isdigit():
            checked = (
                f"({read} if {read}.__class__ is int"
                f" else _reqint({read}, {loc}))"
            )
        else:
            checked = f"_reqint({read}, {loc})"
        if post:
            old = self.fresh("_t")
            write, wticks = self.compile_store(
                target, f"{old} {delta}", scope
            )
            if write is None:
                raise _Uncompilable("increment target")
            return (
                f"(({old} := {checked}), {write})[0]",
                1 + rticks + wticks,
            )
        write, wticks = self.compile_store(
            target, f"{checked} {delta}", scope
        )
        if write is None:
            raise _Uncompilable("increment target")
        return f"({write})", 1 + rticks + wticks

    def compile_store(
        self, target: Node, value_code: str, scope: _Scope
    ) -> tuple[str | None, int]:
        """An expression that assigns ``value_code`` to ``target`` and
        evaluates to the stored value; mirrors ``_assign_to``.  The
        int counts the ticks of re-evaluating the target's address
        sub-expressions (the interpreter re-evaluates them too)."""
        if isinstance(target, nodes.Identifier):
            py = scope.lookup(target.name)
            if py is not None:
                self.note_assignment(py)
                return f"({py} := {value_code})", 0
            loc = self.const(target.loc)
            return f"_ag(I, {target.name!r}, {value_code}, {loc})", 0
        if isinstance(target, nodes.Index):
            base, bt = self.compile_expr(target.base, scope)
            index, it = self.compile_expr(target.index, scope)
            loc = self.const(target.loc)
            tmp = self.fresh("_t")
            return (
                f"(({tmp} := {value_code}), "
                f"_aix({base}, {index}, {tmp}, {loc}))[1]",
                bt + it,
            )
        if isinstance(target, nodes.Member):
            base, bt = self.compile_expr(target.base, scope)
            loc = self.const(target.loc)
            tmp = self.fresh("_t")
            return (
                f"(({tmp} := {value_code}), "
                f"_amb({base}, {target.name!r}, {tmp}, {loc}))[1]",
                bt,
            )
        # Invalid targets ("invalid assignment target") are rare and
        # error-only; keep the interpreter's exact behaviour.
        return None, 0

    def compile_assign(
        self, e: nodes.AssignOp, scope: _Scope
    ) -> tuple[str, int]:
        if e.op == "=":
            value, vticks = self.compile_expr(e.value, scope)
            write, wticks = self.compile_store(e.target, value, scope)
            if write is None:
                raise _Uncompilable("assignment target")
            return write, 1 + vticks + wticks
        op = e.op[:-1]
        helper = _BINOP_HELPERS.get(op)
        if helper is None:
            raise _Uncompilable(f"compound assignment {e.op!r}")
        # The interpreter evaluates target-as-expression, then the
        # value, applies the operator, then re-evaluates the target's
        # address parts for the store — so do we.
        read, rticks = self.compile_expr(e.target, scope)
        value, vticks = self.compile_expr(e.value, scope)
        loc = self.const(e.loc)
        combined = f"{helper}({read}, {value}, {loc})"
        if isinstance(e.target, nodes.Identifier):
            write, wticks = self.compile_store(e.target, combined, scope)
            if write is None:
                raise _Uncompilable("assignment target")
            return write, 1 + rticks + vticks + wticks
        tmp = self.fresh("_t")
        write, wticks = self.compile_store(e.target, tmp, scope)
        if write is None:
            raise _Uncompilable("assignment target")
        return (
            f"(({tmp} := {combined}), {write})[0]",
            1 + rticks + vticks + wticks,
        )

    def compile_call(
        self, e: nodes.Call, scope: _Scope
    ) -> tuple[str, int]:
        parts = []
        ticks = 1
        for a in e.args:
            code, t = self.compile_expr(a, scope)
            parts.append(code)
            ticks += t
        args = "[" + ", ".join(parts) + "]"
        loc = self.const(e.loc)
        if isinstance(e.func, nodes.Identifier):
            name = e.func.name
            py = scope.lookup(name)
            if py is not None:
                return f"_callv(I, {name!r}, {py}, {args}, {loc})", ticks
            return f"_callg(I, {name!r}, {args}, {loc})", ticks
        func, ft = self.compile_expr(e.func, scope)
        # The interpreter evaluates arguments before the callee.
        return f"_calle(I, {args}, {func}, {loc})", ticks + ft

    def compile_anon(
        self, e: nodes.AnonFunction, scope: _Scope
    ) -> tuple[str, int]:
        """An anonymous function becomes a nested Python def (hoisted
        just before the statement that evaluates this expression) plus
        a :class:`CompiledClosure` created at the expression site."""
        fname = self.fresh("_af")
        params = [name for name, _ in e.params]
        fn_scope = _Scope(scope)
        self.fn_stack.append(_FnCtx())
        self.pending.append([])
        prologue: list[str] = []
        for i, name in enumerate(params):
            py = self.define_local(fn_scope, name)
            prologue.append(f"{py} = _a[{i}]")
        body_code, bticks = self.compile_expr(e.body, fn_scope)
        inner_pending = self.pending.pop()
        ctx = self.fn_stack.pop()
        lines = [f"def {fname}(I, _a):"]
        for py in sorted(ctx.nonlocals):
            lines.append(f"    nonlocal {py}")
            # An assignment through *this* scope also needs declaring
            # one level up if it isn't ours either.
            self.note_assignment(py)
        # Templates in the closure body stamp the mark current at
        # *call* time (the closure may be stored and invoked under a
        # later expansion) — exactly what the interpreter does.
        lines.append("    M = I.current_mark")
        for line in prologue:
            lines.append("    " + line)
        # The interpreter would tick every node of the body expression
        # when the closure is called.
        lines.append(f"    I._steps += {bticks}")
        lines.append(
            f"    if I._steps > {MAX_STEPS}: _over({self.const(e.loc)})"
        )
        for line in inner_pending:
            lines.append("    " + line)
        lines.append(f"    return {body_code}")
        self.pending[-1].extend(lines)
        return f"_CC({self.const(params)}, {fname})", 1

    # -- templates -----------------------------------------------------

    def compile_template_expr(
        self, e: nodes.Backquote, scope: _Scope
    ) -> tuple[str, int]:
        self.template_count += 1
        code, ticks = self.compile_template(e.template, scope)
        return code, 1 + ticks

    def fill_call(self, ph: Node, meta_code: str) -> str:
        """Placeholder fill: expression placeholders get the scalar
        fast path, every other placeholder kind the shared one."""
        fn = "_fillx" if isinstance(ph, nodes.PlaceholderExpr) else "_fill"
        return f"{fn}({self.const(ph)}, {meta_code})"

    def compile_template(
        self, t: Any, scope: _Scope
    ) -> tuple[str, int]:
        """Straight-line constructor code for a template (the compiled
        form of ``template._Instantiator.run``)."""
        if t is None:
            return "None", 0
        if isinstance(t, NullValue):
            return "_N", 0
        if isinstance(t, list):
            return self.compile_template_list(t, scope)
        if isinstance(t, _PLACEHOLDER_CLASSES):
            meta, ticks = self.compile_expr(t.meta_expr, scope)
            return self.fill_call(t, meta), ticks
        if isinstance(t, Node):
            return self.compile_rebuild(t, scope)
        return self.lit(t), 0

    def compile_template_list(
        self, items: list[Any], scope: _Scope
    ) -> tuple[str, int]:
        """A template list: placeholder results splice, single nodes
        append — compiled to list-literal concatenation."""
        parts: list[str] = []
        run: list[str] = []
        ticks = 0
        for item in items:
            code, t = self.compile_template(item, scope)
            ticks += t
            if isinstance(item, _PLACEHOLDER_CLASSES) or isinstance(
                item, list
            ):
                if run:
                    parts.append("[" + ", ".join(run) + "]")
                    run = []
                parts.append(
                    code if isinstance(item, list) else f"_aslist({code})"
                )
            else:
                run.append(code)
        if run:
            parts.append("[" + ", ".join(run) + "]")
        if not parts:
            return "[]", 0
        return "(" + " + ".join(parts) + ")", ticks

    def compile_rebuild(
        self, node: Node, scope: _Scope
    ) -> tuple[str, int]:
        cls = type(node)
        clsname = cls.__name__
        self.ns[clsname] = cls
        args: list[str] = []
        ticks = 0
        for f in dataclasses.fields(node):
            if not f.init:
                continue
            value = getattr(node, f.name)
            if f.name == "mark":
                args.append("mark=M")
                continue
            if f.name == "loc":
                args.append(f"loc={self.const(value)}")
                continue
            if isinstance(value, _PLACEHOLDER_CLASSES):
                meta, t = self.compile_expr(value.meta_expr, scope)
                ticks += t
                fill = self.fill_call(value, meta)
                args.append(
                    f"{f.name}=_sc({fill}, {clsname!r}, {f.name!r}, "
                    f"{self.const(node.loc)}, M)"
                )
            elif isinstance(value, Node):
                code, t = self.compile_rebuild(value, scope)
                ticks += t
                args.append(f"{f.name}={code}")
            elif isinstance(value, list):
                code, t = self.compile_rebuild_list(value, scope)
                ticks += t
                args.append(f"{f.name}={code}")
            else:
                args.append(f"{f.name}={self.lit(value)}")
        code = f"{clsname}({', '.join(args)})"
        if isinstance(node, _NORMALIZED_CLASSES):
            code = f"_nz({code})"
        return code, ticks

    def compile_rebuild_list(
        self, items: list[Any], scope: _Scope
    ) -> tuple[str, int]:
        """A list-valued template field: node items recurse (direct
        placeholders may splice), non-node items pass through."""
        parts: list[str] = []
        run: list[str] = []
        ticks = 0
        for item in items:
            if isinstance(item, _PLACEHOLDER_CLASSES):
                meta, t = self.compile_expr(item.meta_expr, scope)
                ticks += t
                if run:
                    parts.append("[" + ", ".join(run) + "]")
                    run = []
                parts.append(f"_aslist({self.fill_call(item, meta)})")
            elif isinstance(item, Node):
                code, t = self.compile_rebuild(item, scope)
                ticks += t
                run.append(code)
            else:
                run.append(self.lit(item))
        if run:
            parts.append("[" + ", ".join(run) + "]")
        if not parts:
            return "[]", 0
        return "(" + " + ".join(parts) + ")", ticks
