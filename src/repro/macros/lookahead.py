"""One-token-lookahead validation of macro patterns.

The paper requires that "detecting the end of a repetition or the
presence of an optional element require only one token lookahead", and
that the pattern parser "report an error in the specification of a
pattern if the end of a repetition cannot be uniquely determined by
one token lookahead".  This module computes (approximate, sound)
FIRST sets for pattern elements and enforces exactly that rule when a
macro is defined.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PatternLookaheadError
from repro.lexer.tokens import Token, TokenKind
from repro.macros.pattern import (
    ParamElement,
    Pattern,
    PatternElement,
    Pspec,
    SpecList,
    SpecOptional,
    SpecPrim,
    SpecTuple,
    TokenElement,
)

# Token categories: lexical classes that FIRST sets can contain beyond
# concrete spellings.
IDENT = "ident"
NUMBER = "number"
STRING = "string"
CHAR = "char"


@dataclass(slots=True)
class FirstSet:
    """An approximation of the set of tokens a construct can start with.

    ``texts`` holds concrete token spellings; ``categories`` holds
    lexical classes; ``open_ended`` marks a FOLLOW position that
    extends past the end of the pattern (and is therefore unknowable
    at definition time).
    """

    texts: set[str] = field(default_factory=set)
    categories: set[str] = field(default_factory=set)
    open_ended: bool = False

    def union(self, other: "FirstSet") -> "FirstSet":
        return FirstSet(
            self.texts | other.texts,
            self.categories | other.categories,
            self.open_ended or other.open_ended,
        )

    def contains_token(self, token: Token) -> bool:
        if token.text in self.texts:
            return True
        category = _category_of(token)
        return category is not None and category in self.categories

    def contains_text(self, text: str) -> bool:
        if text in self.texts:
            return True
        return IDENT in self.categories and _looks_like_ident(text)

    def intersects(self, other: "FirstSet") -> bool:
        if self.texts & other.texts:
            return True
        if self.categories & other.categories:
            return True
        for text in other.texts:
            if IDENT in self.categories and _looks_like_ident(text):
                return True
        for text in self.texts:
            if IDENT in other.categories and _looks_like_ident(text):
                return True
        return False


def _category_of(token: Token) -> str | None:
    if token.kind is TokenKind.IDENT:
        return IDENT
    if token.kind is TokenKind.INT_LIT or token.kind is TokenKind.FLOAT_LIT:
        return NUMBER
    if token.kind is TokenKind.STRING_LIT:
        return STRING
    if token.kind is TokenKind.CHAR_LIT:
        return CHAR
    return None


def _looks_like_ident(text: str) -> bool:
    return bool(text) and (text[0].isalpha() or text[0] == "_")


# ---------------------------------------------------------------------------
# FIRST sets of the primitive AST categories
# ---------------------------------------------------------------------------

_EXPR_PUNCT = {"(", "*", "&", "+", "-", "!", "~", "++", "--"}
_TYPE_KEYWORDS = {
    "void", "char", "short", "int", "long", "float", "double",
    "signed", "unsigned", "struct", "union", "enum", "const", "volatile",
}
_STORAGE_KEYWORDS = {"auto", "register", "static", "extern", "typedef"}
_STMT_KEYWORDS = {
    "if", "while", "do", "for", "switch", "return", "break",
    "continue", "goto", "case", "default",
}

_PRIM_FIRST: dict[str, FirstSet] = {
    "exp": FirstSet(
        _EXPR_PUNCT | {"sizeof"}, {IDENT, NUMBER, STRING, CHAR}
    ),
    "num": FirstSet(set(), {NUMBER}),
    "id": FirstSet(set(), {IDENT}),
    "stmt": FirstSet(
        _EXPR_PUNCT | {"sizeof", "{", ";"} | _STMT_KEYWORDS,
        {IDENT, NUMBER, STRING, CHAR},
    ),
    "decl": FirstSet(_TYPE_KEYWORDS | _STORAGE_KEYWORDS, {IDENT}),
    "type_spec": FirstSet(_TYPE_KEYWORDS, {IDENT}),
    "declarator": FirstSet({"*", "("}, {IDENT}),
    "init_declarator": FirstSet({"*", "("}, {IDENT}),
}


def first_of_pspec(pspec: Pspec) -> FirstSet:
    """FIRST set of a parameter specifier."""
    if isinstance(pspec, SpecPrim):
        return _PRIM_FIRST[pspec.name]
    if isinstance(pspec, SpecList):
        return first_of_pspec(pspec.element)
    if isinstance(pspec, SpecOptional):
        if pspec.guard is not None:
            return FirstSet({pspec.guard})
        return first_of_pspec(pspec.element)
    if isinstance(pspec, SpecTuple):
        return first_of_sequence(list(pspec.pattern.elements))
    raise TypeError(f"unknown pspec {type(pspec).__name__}")


def first_of_element(element: PatternElement) -> FirstSet:
    """FIRST set of one pattern element."""
    if isinstance(element, TokenElement):
        return FirstSet({element.text})
    if isinstance(element, ParamElement):
        return first_of_pspec(element.pspec)
    raise TypeError(f"unknown element {type(element).__name__}")


def is_nullable(element: PatternElement) -> bool:
    """True when the element can match the empty token sequence."""
    if isinstance(element, TokenElement):
        return False
    pspec = element.pspec  # type: ignore[union-attr]
    return _pspec_nullable(pspec)


def _pspec_nullable(pspec: Pspec) -> bool:
    if isinstance(pspec, SpecOptional):
        return True
    if isinstance(pspec, SpecList):
        return not pspec.at_least_one
    if isinstance(pspec, SpecTuple):
        return all(is_nullable(e) for e in pspec.pattern.elements)
    return False


def first_of_sequence(elements: list[PatternElement]) -> FirstSet:
    """FIRST of a pattern suffix; open-ended if the suffix is nullable."""
    result = FirstSet()
    for element in elements:
        result = result.union(first_of_element(element))
        if not is_nullable(element):
            return result
    result.open_ended = True
    return result


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------


#: Tokens that *continue* an expression: a literal pattern token from
#: this set placed right after an ``exp`` parameter would be consumed
#: into the actual parameter instead of terminating it.
EXPRESSION_CONTINUATIONS = frozenset(
    {
        "(", "[", ".", "->", "++", "--", "?",
        "*", "/", "%", "+", "-", "<<", ">>", "<", ">", "<=", ">=",
        "==", "!=", "&", "^", "|", "&&", "||",
        "=", "+=", "-=", "*=", "/=", "%=", "<<=", ">>=", "&=", "^=",
        "|=",
    }
)


def validate_pattern(pattern: Pattern, macro_name: str = "<macro>") -> None:
    """Raise :class:`PatternLookaheadError` on ambiguous patterns."""
    _validate_sequence(list(pattern.elements), macro_name, top_level=True)
    _validate_exp_follow(list(pattern.elements), macro_name)


def _ends_with_exp(pspec: Pspec) -> bool:
    if isinstance(pspec, SpecPrim):
        return pspec.name == "exp"
    if isinstance(pspec, (SpecList, SpecOptional)):
        return _ends_with_exp(pspec.element)
    if isinstance(pspec, SpecTuple):
        params = [
            e for e in pspec.pattern.elements if isinstance(e, ParamElement)
        ]
        last = pspec.pattern.elements[-1]
        if isinstance(last, ParamElement):
            return _ends_with_exp(last.pspec)
        return False
    return False


def _validate_exp_follow(
    elements: list[PatternElement], macro_name: str
) -> None:
    """An expression actual would swallow a following operator token."""
    for i, element in enumerate(elements):
        if not isinstance(element, ParamElement):
            continue
        pspec = element.pspec
        if isinstance(pspec, SpecList) and pspec.separator is not None:
            if (
                _ends_with_exp(pspec.element)
                and pspec.separator in EXPRESSION_CONTINUATIONS
                and pspec.separator != ","
            ):
                raise PatternLookaheadError(
                    f"macro {macro_name!r}: the separator "
                    f"{pspec.separator!r} after the expression elements "
                    f"of {element.name!r} would be parsed as part of "
                    "the expression"
                )
        if isinstance(pspec, SpecTuple):
            _validate_exp_follow(
                list(pspec.pattern.elements), macro_name
            )
        if not _ends_with_exp(pspec):
            continue
        if i + 1 < len(elements):
            nxt = elements[i + 1]
            if (
                isinstance(nxt, TokenElement)
                and nxt.text in EXPRESSION_CONTINUATIONS
            ):
                raise PatternLookaheadError(
                    f"macro {macro_name!r}: the token {nxt.text!r} "
                    f"following the expression parameter "
                    f"{element.name!r} continues an expression and "
                    "would be consumed into the actual parameter; "
                    "choose a non-operator delimiter"
                )
            if isinstance(nxt, ParamElement) and isinstance(
                nxt.pspec, SpecOptional
            ) and nxt.pspec.guard in EXPRESSION_CONTINUATIONS:
                raise PatternLookaheadError(
                    f"macro {macro_name!r}: the guard token "
                    f"{nxt.pspec.guard!r} following the expression "
                    f"parameter {element.name!r} continues an "
                    "expression"
                )


def _validate_sequence(
    elements: list[PatternElement], macro_name: str, top_level: bool
) -> None:
    for i, element in enumerate(elements):
        follow = first_of_sequence(elements[i + 1 :])
        if isinstance(element, ParamElement):
            _validate_pspec(element.pspec, follow, macro_name, element.name)


def _validate_pspec(
    pspec: Pspec, follow: FirstSet, macro_name: str, param: str
) -> None:
    if isinstance(pspec, SpecPrim):
        return
    if isinstance(pspec, SpecList):
        _validate_pspec(pspec.element, follow, macro_name, param)
        if pspec.separator is None:
            first = first_of_pspec(pspec.element)
            if follow.open_ended:
                raise PatternLookaheadError(
                    f"macro {macro_name!r}: the end of the unseparated "
                    f"repetition binding {param!r} cannot be determined — "
                    "it is followed only by optional elements or the end "
                    "of the pattern; add a separator or a following token"
                )
            if first.intersects(follow):
                raise PatternLookaheadError(
                    f"macro {macro_name!r}: cannot detect the end of the "
                    f"repetition binding {param!r} with one token of "
                    "lookahead — an element may start with the same token "
                    "that follows the repetition"
                )
        else:
            if follow.contains_text(pspec.separator):
                raise PatternLookaheadError(
                    f"macro {macro_name!r}: the separator "
                    f"{pspec.separator!r} of the repetition binding "
                    f"{param!r} also follows it; one-token lookahead "
                    "cannot decide whether to continue"
                )
        return
    if isinstance(pspec, SpecOptional):
        if pspec.guard is not None:
            if follow.contains_text(pspec.guard):
                raise PatternLookaheadError(
                    f"macro {macro_name!r}: the guard token "
                    f"{pspec.guard!r} of the optional element binding "
                    f"{param!r} may also begin what follows it"
                )
            _validate_pspec(pspec.element, follow, macro_name, param)
            return
        first = first_of_pspec(pspec.element)
        if follow.open_ended:
            raise PatternLookaheadError(
                f"macro {macro_name!r}: the presence of the optional "
                f"element binding {param!r} cannot be determined — it is "
                "followed only by optional elements or the end of the "
                "pattern; add a guard token or a following token"
            )
        if first.intersects(follow):
            raise PatternLookaheadError(
                f"macro {macro_name!r}: cannot detect the presence of the "
                f"optional element binding {param!r} with one token of "
                "lookahead"
            )
        _validate_pspec(pspec.element, follow, macro_name, param)
        return
    if isinstance(pspec, SpecTuple):
        _validate_sequence(
            list(pspec.pattern.elements), macro_name, top_level=False
        )
        return
    raise TypeError(f"unknown pspec {type(pspec).__name__}")
