"""Template instantiation: evaluating backquote expressions.

"The AST denoted by a code template must be uniquely determined by
information available at macro definition time" — so instantiation is
purely structural: copy the template tree, replacing each placeholder
node with the (evaluated) meta-value it stands for, splicing lists,
and adapting values to their syntactic position (an ``id`` standing in
a declarator position becomes a declarator; identifiers spliced into
an enumerator list become enumerators; the concrete separator tokens
the paper's section 2 discusses simply never exist at the AST level).

Nodes originating from the template spine are stamped with the current
expansion's hygiene mark; values substituted for placeholders keep
their own marks (user code stays unmarked), which is what the optional
hygienic renamer keys on.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable

from repro.cast import ctypes, decls, nodes, stmts
from repro.cast.base import Node, clone
from repro.cast.printer import CPrinter
from repro.errors import ExpansionError
from repro.meta.frames import NULL, NullValue

#: Evaluation callback: meta-expression AST -> runtime meta-value.
EvalFn = Callable[[Node], Any]

_PLACEHOLDER_CLASSES = (
    nodes.PlaceholderExpr,
    stmts.PlaceholderStmt,
    decls.PlaceholderDecl,
    decls.PlaceholderDeclarator,
    decls.PlaceholderInitDeclarator,
    ctypes.PlaceholderTypeSpec,
)


def instantiate(template: Any, evalfn: EvalFn, mark: int | None = None) -> Any:
    """Instantiate a template (node, list, or tuple of nodes)."""
    return _Instantiator(evalfn, mark).run(template)


def fill_placeholder(ph: Node, value: Any) -> Any:
    """Adapt an evaluated placeholder value to its syntactic position.

    Shared by the interpretive :class:`_Instantiator` and the compiled
    templates of :mod:`repro.macros.codegen`, so both paths apply the
    exact same adaptation (and raise the exact same errors).
    """
    if isinstance(value, NullValue):
        raise ExpansionError(
            "placeholder evaluated to NULL (absent optional "
            "parameter?) inside a template",
            ph.loc,
        )
    if isinstance(ph, stmts.PlaceholderStmt):
        if isinstance(value, list):
            return [_as_statement(clone(v), ph) for v in value]
        return _as_statement(clone(value), ph)
    if isinstance(ph, decls.PlaceholderDecl):
        if isinstance(value, list):
            return [clone(_expect_node(v, ph)) for v in value]
        return clone(_expect_node(value, ph))
    if isinstance(ph, decls.PlaceholderDeclarator):
        return _as_declarator(clone(_expect_node(value, ph)), ph)
    if isinstance(ph, decls.PlaceholderInitDeclarator):
        if isinstance(value, list):
            return [_as_init_declarator(clone(v), ph) for v in value]
        return _as_init_declarator(clone(_expect_node(value, ph)), ph)
    if isinstance(ph, ctypes.PlaceholderTypeSpec):
        return clone(_expect_node(value, ph))
    # PlaceholderExpr: expression (or list of expressions, spliced
    # into argument/enumerator/init-declarator lists by the caller).
    if isinstance(value, list):
        return [clone(_expect_node(v, ph)) for v in value]
    return clone(_expect_node(value, ph))


def adapt_list_to_scalar(
    items: list[Any],
    type_name: str,
    field: str,
    loc: Any,
    mark: int | None,
) -> Node:
    """A list value landed in a single-node position: wrap an
    all-statement list in a compound, reject anything else.  Shared by
    the instantiator and compiled templates."""
    if all(_is_statement_like(v) for v in items):
        return stmts.CompoundStmt([], items, mark=mark)
    raise ExpansionError(
        f"a list placeholder cannot stand in the {field!r} position "
        f"of {type_name}",
        loc,
    )


class _Instantiator:
    def __init__(self, evalfn: EvalFn, mark: int | None) -> None:
        self.evalfn = evalfn
        self.mark = mark

    def run(self, template: Any) -> Any:
        if template is None or isinstance(template, NullValue):
            return template
        if isinstance(template, list):
            out: list[Any] = []
            for item in template:
                result = self.run(item)
                if isinstance(result, list):
                    out.extend(result)
                else:
                    out.append(result)
            return out
        if isinstance(template, _PLACEHOLDER_CLASSES):
            return self._fill(template)
        if isinstance(template, Node):
            return self._rebuild(template)
        return template

    # ------------------------------------------------------------------

    def _rebuild(self, node: Node) -> Node:
        kwargs: dict[str, Any] = {}
        for f in dataclasses.fields(node):
            if not f.init:
                continue
            value = getattr(node, f.name)
            if f.name == "mark":
                kwargs[f.name] = self.mark
                continue
            if f.name == "loc":
                kwargs[f.name] = value
                continue
            if isinstance(value, Node):
                result = self.run(value)
                if isinstance(result, list):
                    result = self._adapt_list_to_scalar(node, f.name, result)
                kwargs[f.name] = result
            elif isinstance(value, list):
                out: list[Any] = []
                for item in value:
                    if isinstance(item, Node):
                        result = self.run(item)
                        if isinstance(result, list):
                            out.extend(result)
                        else:
                            out.append(result)
                    else:
                        out.append(item)
                kwargs[f.name] = out
            else:
                kwargs[f.name] = value
        rebuilt = type(node)(**kwargs)
        return _normalize(rebuilt)

    def _adapt_list_to_scalar(
        self, parent: Node, field: str, items: list[Any]
    ) -> Node:
        return adapt_list_to_scalar(
            items, type(parent).__name__, field, parent.loc, self.mark
        )

    # ------------------------------------------------------------------

    def _fill(self, ph: Node) -> Any:
        value = self.evalfn(ph.meta_expr)  # type: ignore[attr-defined]
        return fill_placeholder(ph, value)


# ---------------------------------------------------------------------------
# Value adaptation
# ---------------------------------------------------------------------------


def _expect_node(value: Any, ph: Node) -> Node:
    if isinstance(value, Node):
        return value
    if isinstance(value, str):
        return nodes.StringLit(value)
    if isinstance(value, int):
        return nodes.IntLit(value)
    if isinstance(value, float):
        return nodes.FloatLit(value)
    raise ExpansionError(
        f"placeholder produced a non-AST value "
        f"({type(value).__name__}) inside a template",
        ph.loc,
    )


_STMT_CLASSES = (
    stmts.ExprStmt, stmts.CompoundStmt, stmts.IfStmt, stmts.WhileStmt,
    stmts.DoWhileStmt, stmts.ForStmt, stmts.SwitchStmt, stmts.CaseStmt,
    stmts.DefaultStmt, stmts.BreakStmt, stmts.ContinueStmt,
    stmts.ReturnStmt, stmts.GotoStmt, stmts.LabeledStmt, stmts.NullStmt,
    stmts.PlaceholderStmt,
)


def _is_statement_like(value: Any) -> bool:
    return isinstance(value, _STMT_CLASSES) or isinstance(
        value, (nodes.MacroInvocation, decls.Declaration)
    )


def _as_statement(value: Any, ph: Node) -> Node:
    node = _expect_node(value, ph)
    if isinstance(node, _STMT_CLASSES) or isinstance(
        node, nodes.MacroInvocation
    ):
        return node
    # An expression standing in a statement position becomes an
    # expression statement.
    return stmts.ExprStmt(node, loc=node.loc, mark=node.mark)


def _as_declarator(node: Node, ph: Node) -> Node:
    if isinstance(node, nodes.Identifier):
        return decls.NameDeclarator(node.name, loc=node.loc, mark=node.mark)
    return node


def _as_init_declarator(value: Any, ph: Node) -> Node:
    node = _expect_node(value, ph)
    if isinstance(node, decls.InitDeclarator):
        return node
    if isinstance(node, nodes.Identifier):
        return decls.InitDeclarator(
            decls.NameDeclarator(node.name, loc=node.loc, mark=node.mark),
            None,
            loc=node.loc,
            mark=node.mark,
        )
    if isinstance(
        node,
        (decls.NameDeclarator, decls.PointerDeclarator,
         decls.ArrayDeclarator, decls.FuncDeclarator,
         decls.PlaceholderDeclarator),
    ):
        return decls.InitDeclarator(node, None, loc=node.loc, mark=node.mark)
    raise ExpansionError(
        "placeholder value cannot stand in an init-declarator position",
        ph.loc,
    )


def _normalize(node: Node) -> Node:
    """Position-specific fixups after children were spliced in."""
    if isinstance(node, ctypes.EnumType):
        if isinstance(node.tag, nodes.Identifier):
            node.tag = node.tag.name
        if node.enumerators is not None:
            node.enumerators = [
                ctypes.Enumerator(e.name, None, loc=e.loc, mark=e.mark)
                if isinstance(e, nodes.Identifier)
                else e
                for e in node.enumerators
            ]
    elif isinstance(node, ctypes.StructOrUnionType):
        if isinstance(node.tag, nodes.Identifier):
            node.tag = node.tag.name
    elif isinstance(node, nodes.Member):
        if isinstance(node.name, nodes.Identifier):
            node.name = node.name.name
    elif isinstance(node, decls.Declaration):
        node.init_declarators = [
            _as_init_declarator(item, node)
            if not isinstance(
                item, (decls.InitDeclarator, decls.PlaceholderInitDeclarator)
            )
            else item
            for item in node.init_declarators
        ]
    elif isinstance(node, stmts.CompoundStmt):
        node.stmts = [
            _as_statement(s, node) for s in node.stmts
        ]
    return node
