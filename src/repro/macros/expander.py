"""The macro expansion engine.

Expanding an invocation = running its macro's body (a C meta-program)
on the parsed actual parameters, then recursively expanding any macro
invocations embedded in the produced AST (templates may invoke
previously defined macros — the paper's improved ``Painting`` macro
expands into an ``unwind_protect`` invocation).

Each expansion gets a fresh integer *mark*; template-origin nodes are
stamped with it so the optional hygienic renamer
(:mod:`repro.macros.hygiene`) can tell macro-introduced binders apart
from user code.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from repro.asttypes.types import ListType
from repro.cast import decls, nodes, stmts
from repro.cast.base import Node
from repro.diagnostics import ExpansionBudget
from repro.errors import ExpansionError, Ms2Error
from repro.macros.cache import ExpansionCache
from repro.macros.definition import MacroDefinition, MacroTable
from repro.meta.frames import NULL
from repro.meta.interp import Interpreter
from repro.provenance import (
    ExpansionSite,
    expansion_chain,
    provenance_of,
    replay_location,
    restamp_tree,
)

#: Guard against macros that expand into themselves forever.
MAX_EXPANSION_DEPTH = 200


class Expander:
    """Drives macro expansion over parsed ASTs.

    When ``cache`` is supplied, invocations of macros certified pure
    by :func:`repro.analysis.analyze_macro_purity` are memoized: a
    repeat invocation with structurally equal actuals replays the
    stored result (deep-copied, fresh locations and marks) instead of
    re-running the meta-program.
    """

    def __init__(
        self,
        table: MacroTable,
        interpreter: Interpreter | None = None,
        hygienic: bool = False,
        cache: ExpansionCache | None = None,
        stats: Any = None,
        tracer: Any = None,
        profiler: Any = None,
        budget: ExpansionBudget | None = None,
        compiled_bodies: bool = True,
    ) -> None:
        self.table = table
        self.interpreter = interpreter or Interpreter()
        self.hygienic = hygienic
        self.cache = cache
        self.stats = stats
        #: Run macro bodies through :mod:`repro.macros.codegen` when
        #: possible (semantics-neutral; per-macro interpreter fallback).
        self.compiled_bodies = compiled_bodies
        #: Optional :class:`repro.diagnostics.ExpansionBudget`.
        self.budget = budget
        #: Optional :class:`repro.trace.Tracer` (expansion spans).
        self.tracer = tracer
        #: Optional :class:`repro.trace.PhaseProfiler`.
        self.profiler = profiler
        self._mark_counter = 0
        self._depth = 0
        #: Statistics: how many invocations were expanded.
        self.expansion_count = 0

    # ------------------------------------------------------------------

    def _fresh_mark(self) -> int:
        self._mark_counter += 1
        return self._mark_counter

    def expand_invocation(
        self, invocation: nodes.MacroInvocation
    ) -> Node | list[Node]:
        """Run one invocation; returns the replacement AST(s)."""
        definition: MacroDefinition | None = invocation.definition
        if definition is None:
            definition = self.table.lookup(invocation.name)
        if definition is None:
            raise ExpansionError(
                f"invocation of unknown macro {invocation.name!r}",
                invocation.loc,
            )

        # The expansion backtrace for everything this invocation
        # produces: this site, then the frames already riding on the
        # invocation's location (present when the invocation node was
        # itself macro-generated).
        chain = expansion_chain(definition.name, invocation.loc)

        tracer = self.tracer
        span = tracer.begin(definition, invocation) if tracer else None
        try:
            result, cache_status = self._expand_uncached_or_replay(
                definition, invocation, chain
            )
        except Ms2Error as exc:
            if span is not None:
                tracer.fail(span, exc)
            raise self._with_provenance(exc, chain) from None
        if span is not None:
            tracer.end(span, result, cache_status)
        return result

    def _expand_uncached_or_replay(
        self,
        definition: MacroDefinition,
        invocation: nodes.MacroInvocation,
        chain: tuple[ExpansionSite, ...],
    ) -> tuple[Node | list[Node], str]:
        if self.budget is not None:
            self.budget.charge_expansion(invocation.loc)
        cache_status = "off"
        key = None
        if self.cache is not None:
            purity = definition.purity
            if purity is not None and purity.cacheable:
                key = self.cache.key_for(definition, invocation)
            if key is None:
                cache_status = "uncacheable"
                if self.stats is not None:
                    self.stats.cache_uncacheable += 1
            else:
                cached = self.cache.lookup(key)
                if cached is not None:
                    # Replayed nodes are re-stamped with the *replay*
                    # site's backtrace, so a hit at a second call site
                    # reports the second site, not the first.  A
                    # corrupt or stale snapshot replays as None and
                    # falls through to re-expansion.
                    replayed = self.cache.replay(
                        key,
                        cached,
                        replay_location(invocation.loc, chain),
                        self._fresh_mark,
                    )
                    if replayed is not None:
                        self.expansion_count += 1
                        if self.stats is not None:
                            self.stats.cache_hits += 1
                            self.stats.expansions += 1
                        if self.budget is not None:
                            self.budget.charge_output(
                                replayed, invocation.loc
                            )
                        return replayed, "hit"
                cache_status = "miss"
                if self.stats is not None:
                    self.stats.cache_misses += 1

        # Check *before* incrementing: the raising frame must not
        # count itself, so that every frame that did increment also
        # runs the matching ``finally`` decrement and the counter
        # returns to its pre-error value once the error is caught.
        if self._depth >= MAX_EXPANSION_DEPTH:
            raise ExpansionError(
                f"macro expansion exceeded depth {MAX_EXPANSION_DEPTH} "
                f"(while expanding {invocation.name!r}); "
                "self-recursive macro?",
                invocation.loc,
            )
        self._depth += 1
        try:
            mark = self._fresh_mark()
            bindings = {
                arg.name: (NULL if arg.value is None else arg.value)
                for arg in invocation.args
            }

            # Compiled bodies fold template instantiation into the
            # generated code, so a profiling session (which wants the
            # meta-eval / template-fill split) keeps the interpreter.
            compiled = None
            if self.compiled_bodies and self.profiler is None:
                from repro.macros.codegen import get_compiled_body

                compiled = get_compiled_body(definition, self.stats)
                if (
                    compiled is not None
                    and compiled.params != bindings.keys()
                ):
                    # Defensive: an invocation whose argument set does
                    # not match the pattern parameters (shouldn't
                    # happen) takes the interpreter path.
                    compiled = None

            saved_mark = self.interpreter.current_mark
            self.interpreter.current_mark = mark
            prof = self.profiler
            try:
                if compiled is not None:
                    result = compiled.call(self.interpreter, bindings)
                elif prof is None:
                    result = self.interpreter.call_macro(
                        definition, bindings
                    )
                else:
                    with prof.phase("meta-eval"):
                        result = self.interpreter.call_macro(
                            definition, bindings
                        )
            finally:
                self.interpreter.current_mark = saved_mark

            result = self._check_result(definition, result, invocation)
            # Stamp provenance on macro-origin nodes *before* the
            # recursive pass, so nested invocations inherit this
            # chain and extend it with their own frame.
            restamp_tree(result, chain, mark)
            result = self.expand_tree(result)
            if self.hygienic:
                from repro.macros.hygiene import make_hygienic

                result = make_hygienic(
                    result, mark, self.interpreter, stats=self.stats
                )
            if key is not None:
                self.cache.store(key, result)
            self.expansion_count += 1
            if self.stats is not None:
                self.stats.expansions += 1
            if self.budget is not None:
                self.budget.charge_output(result, invocation.loc)
            return result, cache_status
        finally:
            self._depth -= 1

    @staticmethod
    def _with_provenance(
        exc: Ms2Error, chain: tuple[ExpansionSite, ...]
    ) -> Ms2Error:
        """Attach the expansion backtrace to an error raised during
        this expansion, unless an inner expansion already did."""
        if provenance_of(exc.location):
            return exc
        loc = exc.location
        if loc is None:
            from repro.errors import SYNTHETIC

            loc = SYNTHETIC
        stamped = replay_location(loc, chain)
        try:
            return type(exc)(exc.message, stamped)
        except TypeError:
            return exc

    def _check_result(
        self,
        definition: MacroDefinition,
        result: Any,
        invocation: nodes.MacroInvocation,
    ) -> Node | list[Node]:
        if definition.returns_list:
            if not isinstance(result, list):
                raise ExpansionError(
                    f"macro {definition.name!r} is declared to return "
                    f"{definition.ret_spec}[] but returned a single AST",
                    invocation.loc,
                )
            return result
        if isinstance(result, list):
            raise ExpansionError(
                f"macro {definition.name!r} is declared to return a "
                f"single {definition.ret_spec} but returned a list",
                invocation.loc,
            )
        if not isinstance(result, Node):
            raise ExpansionError(
                f"macro {definition.name!r} returned a "
                f"{type(result).__name__}, not an AST",
                invocation.loc,
            )
        return result

    # ------------------------------------------------------------------
    # Recursive expansion of invocations embedded in produced ASTs
    # ------------------------------------------------------------------

    def expand_tree(self, tree: Node | list) -> Any:
        """Expand every :class:`MacroInvocation` in ``tree`` (in place
        order, outside-in via re-expansion of produced code)."""
        if isinstance(tree, list):
            out: list[Any] = []
            for item in tree:
                result = self.expand_tree(item)
                if isinstance(result, list):
                    out.extend(result)
                else:
                    out.append(result)
            return out
        if isinstance(tree, nodes.MacroInvocation):
            return self.expand_invocation(tree)
        if not isinstance(tree, Node):
            return tree
        return self._expand_children(tree)

    def _expand_children(self, node: Node) -> Node:
        kwargs: dict[str, Any] = {}
        changed = False
        for f in dataclasses.fields(node):
            if not f.init:
                continue
            value = getattr(node, f.name)
            if isinstance(value, Node):
                result = self.expand_tree(value)
                if isinstance(result, list):
                    result = self._wrap_list(node, f.name, result)
                if result is not value:
                    changed = True
                kwargs[f.name] = result
            elif isinstance(value, list):
                out: list[Any] = []
                for item in value:
                    if isinstance(item, Node):
                        result = self.expand_tree(item)
                        if isinstance(result, list):
                            out.extend(result)
                            changed = True
                        else:
                            if result is not item:
                                changed = True
                            out.append(result)
                    else:
                        out.append(item)
                kwargs[f.name] = out
            else:
                kwargs[f.name] = value
        if not changed:
            return node
        return type(node)(**kwargs)

    def _wrap_list(self, parent: Node, field: str, items: list[Any]) -> Node:
        if all(_is_stmt(v) for v in items):
            return stmts.CompoundStmt([], items, loc=parent.loc)
        raise ExpansionError(
            f"a list-returning macro cannot stand in the {field!r} "
            f"position of {type(parent).__name__}",
            parent.loc,
        )


def _is_stmt(value: Any) -> bool:
    from repro.macros.template import _STMT_CLASSES

    return isinstance(value, _STMT_CLASSES)
