"""Pattern-driven parsing of macro invocations.

"When the parser encounters a macro keyword, it parses the invocation
according to the macro's pattern" (paper section 3).  This is the
*interpreted* pattern engine: each invocation walks the pattern
structure.  :mod:`repro.macros.compiled` provides the accelerated
variant the paper suggests ("this process could be accelerated by a
routine that compiled a parse routine for each macro's pattern");
both produce identical :class:`~repro.cast.nodes.MacroInvocation`
nodes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.asttypes.types import ID, NUM
from repro.cast import nodes
from repro.errors import ParseError
from repro.lexer.tokens import Token, TokenKind
from repro.macros.lookahead import FirstSet, first_of_pspec
from repro.macros.pattern import (
    ParamElement,
    Pattern,
    Pspec,
    SpecList,
    SpecOptional,
    SpecPrim,
    SpecTuple,
    TokenElement,
)

if TYPE_CHECKING:
    from repro.parser.core import Parser


class InvocationParser:
    """Parses one macro invocation (or pspec-directed syntax) off the
    host parser's token stream."""

    def __init__(self, parser: "Parser") -> None:
        self.parser = parser

    # ------------------------------------------------------------------

    def parse_invocation(self, defn: Any, keyword: Token) -> nodes.MacroInvocation:
        args = self.parse_pattern_args(defn.pattern)
        return nodes.MacroInvocation(
            defn.name, args, defn, loc=keyword.location
        )

    def parse_pattern_args(self, pattern: Pattern) -> list[nodes.MacroArg]:
        args: list[nodes.MacroArg] = []
        elements = list(pattern.elements)
        for i, element in enumerate(elements):
            follow = _follow_text(elements, i)
            if isinstance(element, TokenElement):
                self._expect_literal(element.text)
            else:
                assert isinstance(element, ParamElement)
                value = self.parse_pspec_value(
                    element.pspec, follow_text=follow
                )
                args.append(nodes.MacroArg(element.name, value))
        return args

    # ------------------------------------------------------------------

    def _expect_literal(self, text: str) -> None:
        token = self.parser.next_token()
        if token.text != text:
            raise ParseError(
                f"macro invocation expected {text!r}, got {token.describe()}",
                token.location,
            )

    def parse_pspec_value(
        self, pspec: Pspec, follow_text: str | None = None
    ) -> Any:
        if isinstance(pspec, SpecPrim):
            return self._parse_prim(pspec.name)
        if isinstance(pspec, SpecList):
            return self._parse_list(pspec, follow_text)
        if isinstance(pspec, SpecOptional):
            return self._parse_optional(pspec, follow_text)
        if isinstance(pspec, SpecTuple):
            return self._parse_tuple(pspec)
        raise TypeError(f"unknown pspec {type(pspec).__name__}")

    # -- primitives -------------------------------------------------------

    def _parse_prim(self, name: str) -> Any:
        parser = self.parser
        token = parser.peek()

        # Inside templates, a placeholder of the right type may stand
        # for the actual parameter itself.
        if token.kind is TokenKind.PLACEHOLDER:
            from repro.asttypes.types import prim as prim_type

            payload = token.value
            if payload.asttype.is_usable_as(prim_type(name)):
                parser.next_token()
                return _placeholder_node_for(name, payload, token)

        if name == "exp":
            return parser.parse_assignment()
        if name == "id":
            ident = parser.next_token()
            if ident.kind is not TokenKind.IDENT:
                raise ParseError(
                    f"macro expected an identifier, got {ident.describe()}",
                    ident.location,
                )
            return nodes.Identifier(ident.text, loc=ident.location)
        if name == "num":
            lit = parser.next_token()
            if lit.kind is not TokenKind.INT_LIT:
                raise ParseError(
                    f"macro expected a number, got {lit.describe()}",
                    lit.location,
                )
            return nodes.IntLit(lit.value, lit.text, loc=lit.location)
        if name == "stmt":
            return parser.parse_statement()
        if name == "decl":
            return parser.parse_declaration()
        if name == "type_spec":
            return parser.parse_type_spec_only()
        if name == "declarator":
            return parser.parse_declarator()
        if name == "init_declarator":
            return parser.parse_init_declarator()
        raise TypeError(f"unknown AST specifier {name!r}")

    # -- repetition ---------------------------------------------------------

    def _parse_list(
        self, pspec: SpecList, follow_text: str | None
    ) -> list[Any]:
        items: list[Any] = []
        first = first_of_pspec(pspec.element)
        if pspec.separator is not None:
            if pspec.at_least_one or self._element_present(first):
                items.append(self.parse_pspec_value(pspec.element))
                while self.parser.peek().text == pspec.separator:
                    self.parser.next_token()
                    items.append(self.parse_pspec_value(pspec.element))
            return items
        # Unseparated repetition: one-token lookahead against FIRST and
        # the follow token (guaranteed to exist by pattern validation).
        if pspec.at_least_one:
            items.append(self.parse_pspec_value(pspec.element))
        while self._element_present(first, follow_text):
            items.append(self.parse_pspec_value(pspec.element))
        return items

    def _element_present(
        self, first: FirstSet, follow_text: str | None = None
    ) -> bool:
        token = self.parser.peek()
        if token.kind is TokenKind.EOF:
            return False
        if follow_text is not None and token.text == follow_text:
            return False
        if token.kind is TokenKind.PLACEHOLDER:
            # Template mode: a placeholder can begin any AST element.
            return True
        return first.contains_token(token)

    # -- optionals -------------------------------------------------------------

    def _parse_optional(
        self, pspec: SpecOptional, follow_text: str | None
    ) -> Any:
        token = self.parser.peek()
        if pspec.guard is not None:
            if token.text == pspec.guard and token.kind is not TokenKind.EOF:
                self.parser.next_token()
                return self.parse_pspec_value(pspec.element, follow_text)
            return None
        first = first_of_pspec(pspec.element)
        if self._element_present(first, follow_text):
            return self.parse_pspec_value(pspec.element, follow_text)
        return None

    # -- tuples ------------------------------------------------------------------

    def _parse_tuple(self, pspec: SpecTuple) -> nodes.TupleValue:
        args = self.parse_pattern_args(pspec.pattern)
        return nodes.TupleValue(args)


def _follow_text(elements: list, index: int) -> str | None:
    """The literal token following element ``index``, if any."""
    for nxt in elements[index + 1 :]:
        if isinstance(nxt, TokenElement):
            return nxt.text
        return None
    return None


def _placeholder_node_for(name: str, payload: Any, token: Token):
    from repro.cast import decls, stmts

    if name == "stmt":
        return stmts.PlaceholderStmt(
            payload.meta_expr, payload.asttype, loc=token.location
        )
    if name == "decl":
        return decls.PlaceholderDecl(
            payload.meta_expr, payload.asttype, loc=token.location
        )
    if name in ("declarator", "init_declarator"):
        return decls.PlaceholderDeclarator(
            payload.meta_expr, payload.asttype, loc=token.location
        )
    # exp / id / num / type_spec placeholders stay expression-shaped.
    return nodes.PlaceholderExpr(
        payload.meta_expr, payload.asttype, loc=token.location
    )
