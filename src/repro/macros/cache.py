"""Memoization of macro expansions.

The paper's expansion model re-runs a macro's meta-program on every
invocation.  For the (common) macros whose bodies are pure functions
of their parsed arguments, that work is repeated verbatim: the same
argument ASTs produce the same replacement AST every time.
:class:`ExpansionCache` exploits this — it maps

    (macro name, definition generation, structural key of the actuals)

to the fully-expanded result of a previous invocation.  A hit is
*replayed*: a fresh deep copy of the stored tree whose source
locations all point at the new invocation site and whose hygiene
marks are consistently replaced by fresh ones, so the copy is
indistinguishable from a re-expansion to every downstream consumer
(hygiene renaming, capture detection, unparser).

Replay is the hot path, so entries are stored *pickled*: the byte
blob is an immutable snapshot (later in-place passes on the spliced
original cannot corrupt it) and ``pickle.loads`` rebuilds the whole
tree in C, an order of magnitude faster than a field-by-field Python
copy.  The replay-variant parts of a tree are externalized through
pickle's persistent-ID machinery: every
:class:`~repro.errors.SourceLocation` pickles as the persistent ID
``"loc"``, and each distinct hygiene mark pickles as a ``("m", n)``
ID (via a one-time snapshot walk at store time that wraps mark ints
in :class:`_MarkToken`).  The unpickler resolves ``"loc"`` to the
replaying invocation's location and each distinct mark ID to a fresh
mark from the expander's counter — re-stamping the entire tree as a
side effect of loading it.

Whether a macro is safe to cache at all is decided once, at
definition time, by :func:`repro.analysis.analyze_macro_purity` —
macros that touch ``metadcl`` state, call ``gensym``-like or semantic
builtins, or call impure meta-functions are never cached, which keeps
the paper's non-local-transformation examples (the window-procedure
accumulator) working bit-for-bit with the cache enabled.
"""

from __future__ import annotations

import dataclasses
import io
import pickle
from typing import TYPE_CHECKING, Any, Callable, Hashable

from repro.cast.base import Node
from repro.cast.struct_hash import Unhashable, structural_key
from repro.errors import SourceLocation

if TYPE_CHECKING:
    from repro.cast import nodes
    from repro.macros.definition import MacroDefinition
    from repro.stats import PipelineStats

__all__ = [
    "ExpansionCache",
    "replay_result",
    "CACHE_FORMAT_VERSION",
    "SNAPSHOT_HEADER",
    "frame_snapshot",
    "unframe_snapshot",
]

#: The persistent ID standing for "the invocation site" in stored blobs.
_LOC_PID = "loc"

#: Snapshot wire-format version.  Bumped whenever the externalization
#: scheme (persistent IDs, snapshot layout) changes; entries carrying
#: any other version are treated as stale and re-expanded.
CACHE_FORMAT_VERSION = 1

#: Magic prefix identifying a well-formed snapshot blob.
_MAGIC = b"MS2C"
_HEADER = _MAGIC + bytes([CACHE_FORMAT_VERSION])

#: The version-stamped snapshot header (``MS2C`` + format byte) —
#: shared by the in-memory replay cache and the batch driver's
#: on-disk snapshot files (:mod:`repro.driver.diskcache`).
SNAPSHOT_HEADER = _HEADER


def frame_snapshot(payload: bytes) -> bytes:
    """Prefix ``payload`` with the version-stamped snapshot header."""
    return SNAPSHOT_HEADER + payload


def unframe_snapshot(blob: bytes) -> bytes | None:
    """Strip and validate the snapshot header; ``None`` when the blob
    is truncated, garbled, or stamped with another format version —
    the caller treats all three as a miss and re-expands."""
    if blob[: len(SNAPSHOT_HEADER)] != SNAPSHOT_HEADER:
        return None
    return blob[len(SNAPSHOT_HEADER):]


class _MarkToken:
    """Stands for one distinct hygiene mark inside a stored snapshot."""

    __slots__ = ("pid",)

    def __init__(self, index: int) -> None:
        self.pid = ("m", index)


class _StorePickler(pickle.Pickler):
    """Externalizes locations and mark tokens while storing a result."""

    def persistent_id(self, obj: Any) -> Any:
        if isinstance(obj, SourceLocation):
            return _LOC_PID
        if isinstance(obj, _MarkToken):
            return obj.pid
        return None


class _ReplayUnpickler(pickle.Unpickler):
    """Rebuilds a stored expansion at a new invocation site."""

    def __init__(
        self,
        blob: bytes,
        loc: SourceLocation,
        fresh_mark: Callable[[], int],
    ) -> None:
        super().__init__(io.BytesIO(blob))
        self._loc = loc
        self._fresh_mark = fresh_mark
        self._marks: dict[Any, int] = {}

    def persistent_load(self, pid: Any) -> Any:
        if pid == _LOC_PID:
            return self._loc
        fresh = self._marks.get(pid)
        if fresh is None:
            fresh = self._marks[pid] = self._fresh_mark()
        return fresh


#: Per-class snapshot plan: every field name except ``loc``/``mark``.
_SNAP_PLANS: dict[type, tuple[str, ...]] = {}


def _snapshot(value: Any, tokens: dict[int, _MarkToken]) -> Any:
    """Copy an expansion result, wrapping each distinct mark in a
    :class:`_MarkToken` so the pickler can externalize it.  Runs once
    per stored entry (never on the replay path)."""
    if isinstance(value, Node):
        cls = value.__class__
        plan = _SNAP_PLANS.get(cls)
        if plan is None:
            plan = _SNAP_PLANS[cls] = tuple(
                f.name
                for f in dataclasses.fields(cls)
                if f.name not in ("loc", "mark")
            )
        new = cls.__new__(cls)
        for name in plan:
            field_value = getattr(value, name)
            if isinstance(field_value, (Node, list)):
                field_value = _snapshot(field_value, tokens)
            setattr(new, name, field_value)
        new.loc = value.loc
        mark = value.mark
        if mark is not None:
            token = tokens.get(mark)
            if token is None:
                token = tokens[mark] = _MarkToken(len(tokens))
            mark = token
        new.mark = mark
        return new
    if isinstance(value, list):
        return [_snapshot(item, tokens) for item in value]
    return value


class ExpansionCache:
    """A per-session memo table of completed expansions."""

    def __init__(self, stats: "PipelineStats | None" = None) -> None:
        self._entries: dict[Hashable, bytes] = {}
        self.stats = stats

    def __len__(self) -> int:
        return len(self._entries)

    def key_for(
        self,
        definition: "MacroDefinition",
        invocation: "nodes.MacroInvocation",
    ) -> Hashable | None:
        """The cache key for this invocation, or ``None`` when an
        actual parameter has no structural key (unhashable payload)."""
        try:
            arg_key = structural_key(invocation.args)
        except Unhashable:
            return None
        return (definition.name, definition.generation, arg_key)

    def lookup(self, key: Hashable) -> bytes | None:
        return self._entries.get(key)

    def store(self, key: Hashable, result: Node | list[Node]) -> None:
        buffer = io.BytesIO()
        buffer.write(SNAPSHOT_HEADER)
        try:
            _StorePickler(
                buffer, protocol=pickle.HIGHEST_PROTOCOL
            ).dump(_snapshot(result, {}))
        except (pickle.PicklingError, TypeError, AttributeError):
            # Result embeds something unpicklable (a closure, a live
            # definition reference): leave the invocation uncached.
            return
        self._entries[key] = buffer.getvalue()

    def replay(
        self,
        key: Hashable,
        cached: bytes,
        loc: SourceLocation,
        fresh_mark: Callable[[], int],
    ) -> Node | list[Node] | None:
        """Replay a stored snapshot, or ``None`` when it cannot be
        trusted (wrong version header, truncated or corrupt blob).

        A failed replay evicts the entry and counts as a
        ``cache_replay_failure`` in :class:`PipelineStats`; the caller
        falls back to re-running the meta-program, so corruption of
        memo state can never surface as a raw unpickling exception.
        """
        payload = unframe_snapshot(cached)
        if payload is not None:
            try:
                result = replay_result(payload, loc, fresh_mark)
                # Shape check: a corrupt blob can unpickle "cleanly"
                # into something that is not an expansion result at
                # all, which would blow up far away in the printer.
                if isinstance(result, Node) or (
                    isinstance(result, list)
                    and all(isinstance(item, Node) for item in result)
                ):
                    return result
            except Exception:
                # pickle raises a menagerie on corrupt input
                # (UnpicklingError, EOFError, ValueError, TypeError,
                # AttributeError, ...); all of them mean the same
                # thing here: the snapshot is unusable.
                pass
        self._entries.pop(key, None)
        if self.stats is not None:
            self.stats.cache_replay_failures += 1
        return None

    def clear(self) -> None:
        """Drop every entry (meta-function redefinition, tests)."""
        self._entries.clear()


def replay_result(
    cached: bytes,
    loc: SourceLocation,
    fresh_mark: Callable[[], int],
) -> Node | list[Node]:
    """A fresh instance of a cached expansion, located at ``loc``,
    with every distinct stored mark consistently replaced by a fresh
    one drawn from ``fresh_mark``."""
    return _ReplayUnpickler(cached, loc, fresh_mark).load()
