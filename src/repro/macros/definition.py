"""Macro definitions and the macro (keyword) table.

A :class:`MacroDefinition` is the compiled form of a ``syntax``
declaration: the pattern (already validated for one-token lookahead),
the type-checked body, the declared return AST type, and — lazily —
the compiled invocation-parsing routine of
:mod:`repro.macros.compiled`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.asttypes.types import AstType, list_of, prim
from repro.cast import decls
from repro.errors import MacroSyntaxError
from repro.macros.pattern import Pattern

if TYPE_CHECKING:
    from repro.cast import nodes
    from repro.cast.printer import CPrinter


class MacroDefinition:
    """One registered syntax macro."""

    def __init__(
        self,
        name: str,
        ret_spec: str,
        returns_list: bool,
        pattern: Pattern,
        body: Any,
    ) -> None:
        self.name = name
        self.ret_spec = ret_spec
        self.returns_list = returns_list
        self.pattern = pattern
        self.body = body
        #: Set by :func:`repro.macros.compiled.compile_pattern` on demand.
        self.compiled_matcher = None
        #: Lazy result of :func:`repro.macros.codegen.get_compiled_body`:
        #: ``None`` = not attempted, ``False`` = fell back to the
        #: interpreter, else the :class:`~repro.macros.codegen.CompiledBody`.
        self.compiled_body = None
        #: Monotone definition timestamp, assigned by
        #: :meth:`MacroTable.define`; part of every expansion-cache key.
        self.generation = 0
        #: :class:`repro.analysis.PurityReport` once analyzed, else
        #: ``None`` (= not yet analyzed; treated as uncacheable).
        self.purity = None

    def head_literals(self) -> tuple[str, ...]:
        """The literal tokens the pattern starts with (after the
        keyword) — the path this macro occupies in the dispatch trie."""
        from repro.macros.pattern import TokenElement

        out: list[str] = []
        for element in self.pattern.elements:
            if not isinstance(element, TokenElement):
                break
            out.append(element.text)
        return tuple(out)

    @classmethod
    def from_node(cls, node: decls.MacroDef) -> "MacroDefinition":
        return cls(
            node.name, node.ret_spec, node.returns_list, node.pattern,
            node.body,
        )

    @property
    def return_type(self) -> AstType:
        base = prim(self.ret_spec)
        return list_of(base) if self.returns_list else base

    def render_invocation(
        self, invocation: "nodes.MacroInvocation", printer: "CPrinter"
    ) -> str:
        """Best-effort concrete rendering of an unexpanded invocation."""
        from repro.macros.pattern import ParamElement, TokenElement

        parts: list[str] = [self.name]
        values = {a.name: a.value for a in invocation.args}
        for element in self.pattern.elements:
            if isinstance(element, TokenElement):
                parts.append(element.text)
            elif isinstance(element, ParamElement):
                value = values.get(element.name)
                if value is None:
                    continue
                if isinstance(value, list):
                    parts.append(
                        ", ".join(printer._arg_text(v) for v in value)
                    )
                else:
                    parts.append(printer._arg_text(value))
        return " ".join(parts)

    def __repr__(self) -> str:
        suffix = "[]" if self.returns_list else ""
        return (
            f"<macro {self.ret_spec}{suffix} {self.name} "
            f"{{| {self.pattern} |}}>"
        )


class DispatchNode:
    """One node of the literal-prefix dispatch trie.

    ``accepts`` maps a return position (``"exp"`` / ``"stmt"`` /
    ``"decl"`` / ...) to the definition reachable here; ``children``
    maps the next literal pattern token to a deeper node.  With
    macro keywords being unique the trie is shallow, but it gives the
    parser a single-probe answer to "is this identifier a macro usable
    at this position?" and records the full literal spine for
    diagnostics and future prefix-overloaded dispatch.
    """

    __slots__ = ("accepts", "children")

    def __init__(self) -> None:
        self.accepts: dict[str, MacroDefinition] = {}
        self.children: dict[str, "DispatchNode"] = {}


class MacroTable:
    """The keyword table of defined macros.

    Besides the name -> definition map, the table maintains a
    *first-token dispatch index*: for every macro keyword, a
    literal-prefix trie rooted at the keyword whose root node knows
    which return positions the macro may occupy.  The parser's macro
    lookahead probes :meth:`dispatch` — one dict hit — instead of
    looking the name up and then inspecting candidate definitions.
    """

    def __init__(self) -> None:
        self._macros: dict[str, MacroDefinition] = {}
        #: keyword text -> dispatch trie root.
        self._dispatch: dict[str, DispatchNode] = {}
        #: Bumped on every definition; stamped onto the definition so
        #: expansion-cache keys distinguish definition epochs.
        self.generation = 0

    def define(self, definition: MacroDefinition) -> None:
        if definition.name in self._macros:
            raise MacroSyntaxError(
                f"macro {definition.name!r} is already defined"
            )
        self.generation += 1
        definition.generation = self.generation
        self._macros[definition.name] = definition
        self._index(definition)

    def _index(self, definition: MacroDefinition) -> None:
        root = self._dispatch.setdefault(definition.name, DispatchNode())
        root.accepts[definition.ret_spec] = definition
        node = root
        for literal in definition.head_literals():
            node = node.children.setdefault(literal, DispatchNode())
            node.accepts[definition.ret_spec] = definition

    def lookup(self, name: str) -> MacroDefinition | None:
        return self._macros.get(name)

    def dispatch(self, name: str, position: str) -> MacroDefinition | None:
        """The macro invocable as ``name`` at ``position``, if any —
        a single trie-root probe on the parser's hot lookahead path."""
        root = self._dispatch.get(name)
        if root is None:
            return None
        return root.accepts.get(position)

    def dispatch_root(self, name: str) -> DispatchNode | None:
        """The dispatch trie rooted at keyword ``name`` (diagnostics)."""
        return self._dispatch.get(name)

    def names(self) -> list[str]:
        return sorted(self._macros)

    def defined_names(self) -> list[str]:
        """All macro names in definition order."""
        return list(self._macros)

    def __contains__(self, name: str) -> bool:
        return name in self._macros

    def __len__(self) -> int:
        return len(self._macros)
