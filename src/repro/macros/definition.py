"""Macro definitions and the macro (keyword) table.

A :class:`MacroDefinition` is the compiled form of a ``syntax``
declaration: the pattern (already validated for one-token lookahead),
the type-checked body, the declared return AST type, and — lazily —
the compiled invocation-parsing routine of
:mod:`repro.macros.compiled`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.asttypes.types import AstType, list_of, prim
from repro.cast import decls
from repro.errors import MacroSyntaxError
from repro.macros.pattern import Pattern

if TYPE_CHECKING:
    from repro.cast import nodes
    from repro.cast.printer import CPrinter


class MacroDefinition:
    """One registered syntax macro."""

    def __init__(
        self,
        name: str,
        ret_spec: str,
        returns_list: bool,
        pattern: Pattern,
        body: Any,
    ) -> None:
        self.name = name
        self.ret_spec = ret_spec
        self.returns_list = returns_list
        self.pattern = pattern
        self.body = body
        #: Set by :func:`repro.macros.compiled.compile_pattern` on demand.
        self.compiled_matcher = None

    @classmethod
    def from_node(cls, node: decls.MacroDef) -> "MacroDefinition":
        return cls(
            node.name, node.ret_spec, node.returns_list, node.pattern,
            node.body,
        )

    @property
    def return_type(self) -> AstType:
        base = prim(self.ret_spec)
        return list_of(base) if self.returns_list else base

    def render_invocation(
        self, invocation: "nodes.MacroInvocation", printer: "CPrinter"
    ) -> str:
        """Best-effort concrete rendering of an unexpanded invocation."""
        from repro.macros.pattern import ParamElement, TokenElement

        parts: list[str] = [self.name]
        values = {a.name: a.value for a in invocation.args}
        for element in self.pattern.elements:
            if isinstance(element, TokenElement):
                parts.append(element.text)
            elif isinstance(element, ParamElement):
                value = values.get(element.name)
                if value is None:
                    continue
                if isinstance(value, list):
                    parts.append(
                        ", ".join(printer._arg_text(v) for v in value)
                    )
                else:
                    parts.append(printer._arg_text(value))
        return " ".join(parts)

    def __repr__(self) -> str:
        suffix = "[]" if self.returns_list else ""
        return (
            f"<macro {self.ret_spec}{suffix} {self.name} "
            f"{{| {self.pattern} |}}>"
        )


class MacroTable:
    """The keyword table of defined macros."""

    def __init__(self) -> None:
        self._macros: dict[str, MacroDefinition] = {}

    def define(self, definition: MacroDefinition) -> None:
        if definition.name in self._macros:
            raise MacroSyntaxError(
                f"macro {definition.name!r} is already defined"
            )
        self._macros[definition.name] = definition

    def lookup(self, name: str) -> MacroDefinition | None:
        return self._macros.get(name)

    def names(self) -> list[str]:
        return sorted(self._macros)

    def __contains__(self, name: str) -> bool:
        return name in self._macros

    def __len__(self) -> int:
        return len(self._macros)
