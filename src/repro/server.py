"""The long-running expansion daemon: ``repro serve``.

Every ``repro expand`` invocation pays full process startup — Python
interpreter boot, package imports, and the macro-package preamble —
before the first token is scanned.  :class:`Ms2Server` amortizes all
of that: an asyncio daemon that listens on a Unix socket or TCP port,
keeps a pool of **warm workers** (fresh
:class:`~repro.engine.MacroProcessor` instances with the package
preamble pre-loaded), and serves a newline-delimited JSON protocol, so
a warm-path expansion is one socket round-trip.

Protocol (one JSON object per LF-terminated line, UTF-8)::

    -> {"id": 1, "op": "expand", "source": "...", "filename": "x.c",
        "options": {...Ms2Options.to_json()...},
        "packages": ["loops"], "package_sources": [["m.ms2", "..."]]}
    <- {"id": 1, "ok": true, "op": "expand",
        "result": {...ExpandResult.to_json()...}}

Request ops: ``expand``, ``expand_file``, ``trace``, ``stats``,
``ping``, ``shutdown``, plus the fleet-cache trio ``cache_get`` /
``cache_put`` / ``cache_stats`` (the daemon doubles as the build
farm's snapshot cache authority — see
:mod:`repro.driver.cachebackend`).  Error responses carry
``{"error": {"code", "message", ...}}`` with codes ``bad_request``,
``busy`` (backpressure — the 429 of this protocol, carrying a
``retry_after_ms`` backoff hint), ``frame_too_large``,
``expansion_error`` (fail-fast :class:`~repro.errors.Ms2Error`, with
the full provenance backtrace as a serialized diagnostic),
``unavailable`` (transient infrastructure failure — retryable, also
hinted), ``shutting_down`` and ``internal``.  See ``docs/SERVER.md``
for the full schema reference and
:class:`repro.client.RetryPolicy` for the client-side backoff that
consumes the hints.

Design notes:

- **Workers are single-use.**  Expanding a program mutates the
  processor (program-defined macros, typedef scopes leak into later
  runs), so a worker serves exactly one request and is retired — the
  isolation guarantee of :mod:`repro.driver` kept intact.  Warmth
  comes from *pre-building*: the pool keeps spare workers with the
  preamble already loaded per ``(options_hash, preamble)`` key, and a
  replacement spare is built off the request path after each use.
- **Caches are shared with ``repro build``.**  ``expand_file``
  requests route through a :class:`~repro.driver.scheduler.BuildSession`
  over the server's persistent snapshot cache directory, so daemon
  and batch builds hit the same ``.ms2-cache/`` entries.  The
  in-memory expansion cache stays per-worker by design — its keys
  include table-local definition generations.
- **Backpressure is explicit.**  At most ``max_inflight`` expansions
  run concurrently (a thread pool; expansion is synchronous CPU
  work), up to ``queue_limit`` more wait in the executor's queue, and
  anything beyond that is answered ``busy`` immediately rather than
  queued without bound.
- **Budgets guard the loop.**  Per-request ``Ms2Options`` budgets
  (``max_expansions``/``max_output_nodes``/``deadline_s``) apply
  inside the worker; ``default_deadline_s`` imposes a server-side
  deadline on requests that set none.
- **SIGTERM drains.**  The listener closes, in-flight requests finish
  (bounded by ``drain_s``), their responses flush, then connections
  close and ``serve_forever`` returns.
"""

from __future__ import annotations

import asyncio
import contextlib
import hashlib
import json
import os
import signal
import sys
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from time import perf_counter
from typing import Any, Sequence

from repro import __version__, faults
from repro.engine import MacroProcessor
from repro.errors import Ms2Error
from repro.diagnostics import Diagnostic
from repro.options import Ms2Options
from repro.serveconfig import (
    DEFAULT_DRAIN_S,
    DEFAULT_MAX_FRAME_BYTES,
    DEFAULT_MAX_INFLIGHT,
    DEFAULT_QUEUE_LIMIT,
    DEFAULT_WARM_SPARES,
    ServeConfig,
)
from repro.stats import PipelineStats
from repro.telemetry import (
    LATENCY_BUCKETS_MS,
    EventLog,
    MetricsRegistry,
    new_request_id,
)

__all__ = [
    "Ms2Server",
    "ServeConfig",
    "serve",
    "PROTOCOL_VERSION",
    "REQUEST_OPS",
]

#: Bumped when the request/response schema changes incompatibly.
PROTOCOL_VERSION = 1

#: Every operation the daemon understands.  ``telemetry`` returns the
#: raw metrics-registry snapshot — the unit the sharding supervisor
#: aggregates with :func:`repro.telemetry.merge_snapshots`.
REQUEST_OPS = (
    "expand", "expand_file", "trace", "stats", "ping", "telemetry",
    "shutdown", "cache_get", "cache_put", "cache_stats",
)

#: Ops that run pipeline work (and are subject to backpressure).
_WORK_OPS = frozenset({"expand", "expand_file", "trace"})

#: Snapshot-cache authority ops: small file I/O against the daemon's
#: cache root, run on the executor (never the event loop — a wedged
#: entry lock must not stall unrelated connections) but exempt from
#: work-op admission control.
_CACHE_OPS = frozenset({"cache_get", "cache_put", "cache_stats"})


def _ok(rid: Any, op: str, result: dict[str, Any]) -> dict[str, Any]:
    return {"id": rid, "ok": True, "op": op, "result": result}


def _err(
    rid: Any, op: str | None, code: str, message: str, **extra: Any
) -> dict[str, Any]:
    error: dict[str, Any] = {"code": code, "message": message}
    error.update(extra)
    return {"id": rid, "ok": False, "op": op, "error": error}


class _BadRequest(ValueError):
    """Raised by request validation; becomes a ``bad_request`` frame."""


#: Worker error types that signal infrastructure trouble rather than
#: a fault in the source being expanded — mapped to the retryable
#: ``unavailable`` protocol code.
_TRANSIENT_ERROR_TYPES = frozenset(
    {
        "OSError",
        "IOError",
        "InjectedFault",
        "ConnectionResetError",
        "BrokenProcessPool",
        "TimeoutError",
    }
)


# ---------------------------------------------------------------------------
# Warm worker pool
# ---------------------------------------------------------------------------


class WorkerPool:
    """Warm spare :class:`MacroProcessor` instances, keyed by
    ``(options_hash, preamble signature)``.

    A worker is built fresh (packages registered, package sources
    loaded) and *used once*: serving a request hands the caller an
    exclusive processor and never takes it back.  :meth:`replenish`
    rebuilds a spare off the request path, so steady-state requests
    always find one waiting.
    """

    def __init__(self, spares: int = DEFAULT_WARM_SPARES) -> None:
        self.spares = max(0, int(spares))
        self._idle: dict[str, list[MacroProcessor]] = {}
        self._lock = threading.Lock()
        #: Requests served by a pre-built warm worker.
        self.warm_hits = 0
        #: Requests that had to build their worker inline.
        self.cold_builds = 0
        #: Spares actually added by :meth:`replenish`, and the wall
        #: milliseconds spent building them (off the request path).
        self.replenishes = 0
        self.replenish_ms = 0.0
        #: Spares built before the listener accepted traffic.
        self.prewarms = 0
        #: Replenish attempts whose worker build raised (each is
        #: retried off the request path up to a bounded count).
        self.replenish_failures = 0

    @staticmethod
    def key_for(
        options: Ms2Options,
        package_names: Sequence[str],
        package_sources: Sequence[tuple[str, str]],
    ) -> str:
        # Not options_hash(): that deliberately ignores trace/profile,
        # but a worker built without a tracer cannot serve a traced
        # request, so pool keys cover every serializable field.
        digest = hashlib.sha256(
            json.dumps(options.to_json(), sort_keys=True).encode("utf-8")
        )
        for name in package_names:
            digest.update(b"\x00name\x00" + name.encode("utf-8"))
        for filename, source in package_sources:
            digest.update(b"\x00file\x00" + filename.encode("utf-8"))
            digest.update(source.encode("utf-8"))
        return digest.hexdigest()[:16]

    @staticmethod
    def build_worker(
        options: Ms2Options,
        package_names: Sequence[str],
        package_sources: Sequence[tuple[str, str]],
    ) -> MacroProcessor:
        """A fresh processor with the preamble loaded (the slow part
        a warm hit skips)."""
        from repro.packages import register_named

        if faults.ACTIVE is not None:
            faults.ACTIVE.hit("pool.build_worker")
        mp = MacroProcessor(options=options)
        for name in package_names:
            register_named(mp, name)
        for filename, source in package_sources:
            mp.load(source, filename)
        return mp

    def acquire(
        self,
        options: Ms2Options,
        package_names: Sequence[str],
        package_sources: Sequence[tuple[str, str]],
    ) -> tuple[MacroProcessor, str, bool]:
        """``(worker, pool_key, was_warm)`` for one request.  The
        worker is exclusively the caller's; it is never returned."""
        key = self.key_for(options, package_names, package_sources)
        with self._lock:
            idle = self._idle.get(key)
            if idle:
                self.warm_hits += 1
                return idle.pop(), key, True
            self.cold_builds += 1
        return (
            self.build_worker(options, package_names, package_sources),
            key,
            False,
        )

    def replenish(
        self,
        options: Ms2Options,
        package_names: Sequence[str],
        package_sources: Sequence[tuple[str, str]],
    ) -> bool:
        """Build one spare for this key unless it is already at
        capacity; True when a spare was added."""
        key = self.key_for(options, package_names, package_sources)
        with self._lock:
            if len(self._idle.get(key, ())) >= self.spares:
                return False
        start = perf_counter()
        worker = self.build_worker(
            options, package_names, package_sources
        )
        built_ms = (perf_counter() - start) * 1000.0
        with self._lock:
            idle = self._idle.setdefault(key, [])
            if len(idle) >= self.spares:
                return False
            idle.append(worker)
            self.replenishes += 1
            self.replenish_ms += built_ms
            return True

    def note_prewarm(self) -> None:
        with self._lock:
            self.prewarms += 1

    def has_idle(self, key: str) -> bool:
        """Whether a pre-built warm worker is waiting for this pool
        key right now (the load-shedding expensiveness signal: a
        request with no warm worker pays an inline preamble build)."""
        with self._lock:
            return bool(self._idle.get(key))

    def idle_counts(self) -> dict[str, int]:
        with self._lock:
            return {key: len(idle) for key, idle in self._idle.items()}


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


class ServerMetrics:
    """Request-level counters, gauges and the latency histogram
    (the ``stats`` op payload).  Updated from the event loop and from
    executor threads, so mutation holds a lock."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.started = perf_counter()
        self.requests: dict[str, int] = {}
        self.responses: dict[str, int] = {"ok": 0, "error": 0}
        self.error_codes: dict[str, int] = {}
        self.busy_rejections = 0
        self.shed_rejections = 0
        self.bad_frames = 0
        self.client_disconnects = 0
        self.in_flight = 0
        self.peak_in_flight = 0
        self.connections_open = 0
        self.connections_total = 0
        #: Latency histogram: counts per LATENCY_BUCKETS_MS bound,
        #: plus one overflow bucket.
        self.latency_buckets = [0] * (len(LATENCY_BUCKETS_MS) + 1)
        self.latency_count = 0
        self.latency_total_ms = 0.0
        #: Every served expansion's pipeline counters, merged — the
        #: daemon-wide cache hit ratio lives here.
        self.pipeline = PipelineStats()

    def count_request(self, op: str) -> None:
        with self._lock:
            self.requests[op] = self.requests.get(op, 0) + 1

    # Every mutation below goes through a locked method too — handler
    # code must never poke the counters directly (the event loop and
    # executor threads both mutate this object).

    def connection_opened(self) -> None:
        with self._lock:
            self.connections_open += 1
            self.connections_total += 1

    def connection_closed(self) -> None:
        with self._lock:
            self.connections_open -= 1

    def count_disconnect(self) -> None:
        with self._lock:
            self.client_disconnects += 1

    def count_bad_frame(self) -> None:
        with self._lock:
            self.bad_frames += 1

    def count_busy(self) -> None:
        with self._lock:
            self.busy_rejections += 1

    def count_shed(self) -> None:
        with self._lock:
            self.busy_rejections += 1
            self.shed_rejections += 1

    def latency_histogram(self) -> tuple[list[int], float, int]:
        """(per-bucket counts, total ms, count) — a consistent copy
        for the telemetry collector."""
        with self._lock:
            return (
                list(self.latency_buckets),
                self.latency_total_ms,
                self.latency_count,
            )

    def count_response(self, response: dict[str, Any]) -> None:
        with self._lock:
            if response.get("ok"):
                self.responses["ok"] += 1
            else:
                self.responses["error"] += 1
                code = (response.get("error") or {}).get("code", "?")
                self.error_codes[code] = self.error_codes.get(code, 0) + 1

    def enter(self) -> None:
        with self._lock:
            self.in_flight += 1
            self.peak_in_flight = max(self.peak_in_flight, self.in_flight)

    def exit(self) -> None:
        with self._lock:
            self.in_flight -= 1

    def observe_latency(self, ms: float) -> None:
        with self._lock:
            self.latency_count += 1
            self.latency_total_ms += ms
            for index, bound in enumerate(LATENCY_BUCKETS_MS):
                if ms <= bound:
                    self.latency_buckets[index] += 1
                    break
            else:
                self.latency_buckets[-1] += 1

    def merge_pipeline(self, stats: PipelineStats) -> None:
        with self._lock:
            self.pipeline.merge(stats)

    def to_json(self) -> dict[str, Any]:
        with self._lock:
            buckets = {
                f"{bound:g}": count
                for bound, count in zip(
                    LATENCY_BUCKETS_MS, self.latency_buckets
                )
            }
            buckets["+Inf"] = self.latency_buckets[-1]
            mean = (
                self.latency_total_ms / self.latency_count
                if self.latency_count
                else 0.0
            )
            return {
                "uptime_s": round(perf_counter() - self.started, 3),
                "requests": dict(self.requests),
                "responses": dict(self.responses),
                "error_codes": dict(self.error_codes),
                "busy_rejections": self.busy_rejections,
                "shed_rejections": self.shed_rejections,
                "bad_frames": self.bad_frames,
                "client_disconnects": self.client_disconnects,
                "in_flight": self.in_flight,
                "peak_in_flight": self.peak_in_flight,
                "connections_open": self.connections_open,
                "connections_total": self.connections_total,
                "latency_ms": {
                    "count": self.latency_count,
                    "mean": round(mean, 3),
                    "buckets": buckets,
                },
                "expansion_cache": {
                    "hits": self.pipeline.cache_hits,
                    "misses": self.pipeline.cache_misses,
                    "hit_rate": round(
                        self.pipeline.cache_hit_rate(), 4
                    ),
                },
                "pipeline": self.pipeline.to_json(),
            }


# ---------------------------------------------------------------------------
# The daemon
# ---------------------------------------------------------------------------


class Ms2Server:
    """The expansion daemon.  Construct, then either ``await
    start()`` + ``await serve_until_stopped()`` inside an existing
    event loop, or call the blocking module-level :func:`serve`.

    Parameters
    ----------
    options:
        Default :class:`Ms2Options` for requests that carry none
        (requests with an ``options`` payload get exactly those).
    package_names / package_sources:
        The standard preamble pre-loaded into every pool worker and
        implied for every request that names no packages of its own.
    socket_path / host+port:
        Listen address — exactly one of Unix socket path or TCP port.
        ``port=0`` binds an ephemeral port (see :attr:`bound_port`).
    cache_dir:
        Persistent snapshot cache root shared with ``repro build``
        (``expand_file`` requests hit it); None disables it.
    max_inflight / queue_limit:
        Concurrency cap and bounded admission queue; excess requests
        are answered ``busy``.
    default_deadline_s:
        Wall-clock budget imposed on work requests whose options set
        no ``deadline_s`` of their own (None = unbounded).
    metrics_port / metrics_host:
        When a port is given (0 = ephemeral), an HTTP telemetry
        sidecar serves ``/metrics`` (Prometheus text), ``/healthz``
        (drain-aware readiness) and ``/statusz`` (the ``stats`` op as
        JSON) — see :mod:`repro.metrics_http`.
    event_log:
        Path or writable text stream for the structured JSONL event
        log: one ``request`` and one ``response`` record per frame,
        plus a ``span`` record per traced expansion, all keyed by the
        request's correlation ID.
    """

    def __init__(
        self,
        options: Ms2Options | None = None,
        *,
        package_names: Sequence[str] = (),
        package_sources: Sequence[tuple[str, str]] = (),
        socket_path: Path | str | None = None,
        host: str = "127.0.0.1",
        port: int | None = None,
        cache_dir: Path | str | None = None,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        warm_spares: int = DEFAULT_WARM_SPARES,
        default_deadline_s: float | None = None,
        drain_s: float = DEFAULT_DRAIN_S,
        metrics_port: int | None = None,
        metrics_host: str = "127.0.0.1",
        event_log: Path | str | Any = None,
        reuse_port: bool = False,
        control_socket: Path | str | None = None,
        shard_index: int | None = None,
        prewarm: bool = True,
    ) -> None:
        if (socket_path is None) == (port is None):
            raise ValueError(
                "exactly one of socket_path or port must be given"
            )
        base = options if options is not None else Ms2Options()
        self.options = base.without_runtime_hooks()
        self.package_names = tuple(package_names)
        self.package_sources = tuple(
            (str(name), source) for name, source in package_sources
        )
        self.socket_path = (
            Path(socket_path) if socket_path is not None else None
        )
        self.host = host
        self.port = port
        self.cache_dir = (
            Path(cache_dir) if cache_dir is not None else None
        )
        self.max_inflight = max(1, int(max_inflight))
        self.queue_limit = max(0, int(queue_limit))
        self.max_frame_bytes = int(max_frame_bytes)
        self.default_deadline_s = default_deadline_s
        self.drain_s = float(drain_s)
        #: Bind the TCP listener with ``SO_REUSEPORT`` so sibling
        #: shard processes can share the port (see repro.shard).
        self.reuse_port = bool(reuse_port)
        #: Optional second Unix listener speaking the same protocol —
        #: the sharding supervisor's private channel to this shard
        #: (stats/telemetry scrapes, routed gateway work), unaffected
        #: by the kernel's SO_REUSEPORT connection distribution.
        self.control_socket = (
            Path(control_socket) if control_socket is not None else None
        )
        #: This process's index in a sharded fleet, or None.
        self.shard_index = shard_index
        #: Build the default worker pool before accepting traffic.
        self.prewarm = bool(prewarm)

        #: The daemon's own handle on its snapshot cache root — the
        #: store behind the ``cache_get``/``cache_put``/``cache_stats``
        #: ops that make ``repro serve`` the fleet cache authority.
        #: Distinct from the per-session caches ``expand_file`` uses
        #: (same directory, same per-entry locks), so its counters
        #: measure exactly the remote-cache traffic served.
        if self.cache_dir is not None:
            from repro.driver.diskcache import PersistentCache

            self.cache_authority: Any = PersistentCache(self.cache_dir)
        else:
            self.cache_authority = None

        self.metrics = ServerMetrics()
        self.pool = WorkerPool(spares=warm_spares)
        self._executor = ThreadPoolExecutor(
            max_workers=self.max_inflight,
            thread_name_prefix="ms2-worker",
        )
        #: BuildSession per pool key (expand_file path; shares the
        #: persistent cache with `repro build`).
        self._sessions: dict[str, Any] = {}
        self._sessions_lock = threading.Lock()

        self._server: asyncio.AbstractServer | None = None
        self._control_server: asyncio.AbstractServer | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        #: Admitted work requests not yet responded (backpressure
        #: gauge and the drain condition).
        self._active = 0
        self._idle_event: asyncio.Event | None = None
        self._stopped: asyncio.Event | None = None
        self._draining = False
        self._drain_task: asyncio.Task | None = None
        #: The actually-bound TCP port (useful with ``port=0``).
        self.bound_port: int | None = None

        #: Structured JSONL event log, or None when disabled.
        self.event_log: EventLog | None = (
            EventLog(event_log) if event_log is not None else None
        )
        #: The HTTP telemetry sidecar, started with the listener when
        #: ``metrics_port`` was given.
        self.metrics_port = metrics_port
        self.metrics_host = metrics_host
        self.sidecar: Any = None
        #: The unified metrics registry: every layer's counters
        #: mirrored at scrape time (see :meth:`_collect_telemetry`).
        self.registry = self._build_registry()

    @classmethod
    def from_config(
        cls,
        options: Ms2Options | None,
        config: ServeConfig,
        **overrides: Any,
    ) -> "Ms2Server":
        """One daemon process from a validated :class:`ServeConfig`
        (``overrides`` patch individual constructor arguments — the
        shard child uses them for its resolved port and control
        socket)."""
        kwargs: dict[str, Any] = dict(
            socket_path=config.socket,
            host=config.host,
            port=config.port,
            package_names=config.packages,
            package_sources=config.package_sources,
            cache_dir=config.cache_dir,
            max_inflight=config.max_inflight,
            queue_limit=config.queue_limit,
            max_frame_bytes=config.max_frame_bytes,
            warm_spares=config.warm_spares,
            default_deadline_s=config.default_deadline_s,
            drain_s=config.drain_s,
            metrics_port=config.metrics_port,
            metrics_host=config.metrics_host,
            event_log=config.event_log,
            prewarm=config.prewarm,
        )
        kwargs.update(overrides)
        return cls(options, **kwargs)

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------

    @property
    def draining(self) -> bool:
        """True once shutdown has begun (``/healthz`` flips to 503)."""
        return self._draining

    def _build_registry(self) -> MetricsRegistry:
        """The unified metrics registry.  Hot paths keep their plain
        counters; one collector mirrors every layer into Prometheus
        samples at scrape time, so telemetry that is never scraped
        costs the request path nothing."""
        reg = MetricsRegistry()
        m: dict[str, Any] = {}
        m["info"] = reg.gauge(
            "ms2_server_info",
            "Constant 1, labeled with server version and protocol",
            ("version", "protocol"), merge="last",
        )
        m["uptime"] = reg.gauge(
            "ms2_uptime_seconds", "Seconds since server start",
            merge="max",
        )
        m["draining"] = reg.gauge(
            "ms2_draining", "1 once shutdown has begun", merge="max"
        )
        m["max_inflight"] = reg.gauge(
            "ms2_max_inflight", "Concurrent-expansion cap", merge="max"
        )
        m["queue_limit"] = reg.gauge(
            "ms2_queue_limit", "Bounded admission queue depth",
            merge="max",
        )
        m["requests"] = reg.counter(
            "ms2_requests_total", "Requests received, by op", ("op",)
        )
        m["responses"] = reg.counter(
            "ms2_responses_total", "Responses sent, by status",
            ("status",),
        )
        m["error_codes"] = reg.counter(
            "ms2_response_errors_total",
            "Error responses, by protocol error code", ("code",),
        )
        m["busy"] = reg.counter(
            "ms2_busy_rejections_total",
            "Requests rejected by admission control",
        )
        m["shed"] = reg.counter(
            "ms2_load_shed_total",
            "Expensive requests shed by the mid-load tier "
            "(a subset of ms2_busy_rejections_total)",
        )
        m["bad_frames"] = reg.counter(
            "ms2_bad_frames_total", "Malformed or oversized frames"
        )
        m["disconnects"] = reg.counter(
            "ms2_client_disconnects_total",
            "Connections dropped mid-conversation",
        )
        m["conns_open"] = reg.gauge(
            "ms2_connections_open", "Currently open connections"
        )
        m["conns_total"] = reg.counter(
            "ms2_connections_total", "Connections accepted"
        )
        m["in_flight"] = reg.gauge(
            "ms2_in_flight", "Work requests currently admitted"
        )
        m["peak_in_flight"] = reg.gauge(
            "ms2_peak_in_flight", "High-water mark of ms2_in_flight",
            merge="max",
        )
        m["latency"] = reg.histogram(
            "ms2_request_latency_ms",
            "Work-request wall time, milliseconds",
            LATENCY_BUCKETS_MS,
        )
        m["expansion_cache"] = reg.counter(
            "ms2_expansion_cache_lookups_total",
            "In-memory expansion cache lookups, by result",
            ("result",),
        )
        m["expansions"] = reg.counter(
            "ms2_expansions_total", "Macro invocations expanded"
        )
        m["bodies_compiled"] = reg.counter(
            "ms2_bodies_compiled_total",
            "Macro bodies lowered to Python closures",
        )
        m["templates_compiled"] = reg.counter(
            "ms2_templates_compiled_total",
            "Backquote templates lowered inside compiled bodies",
        )
        m["compile_fallbacks"] = reg.counter(
            "ms2_compile_fallbacks_total",
            "Macro bodies that fell back to the interpreter",
        )
        m["compile_ms"] = reg.counter(
            "ms2_compile_time_ms_total",
            "Wall milliseconds spent compiling macro bodies",
        )
        m["warm_hits"] = reg.counter(
            "ms2_worker_pool_warm_hits_total",
            "Requests served by a pre-built warm worker",
        )
        m["cold_builds"] = reg.counter(
            "ms2_worker_pool_cold_builds_total",
            "Requests that built their worker inline",
        )
        m["pool_idle"] = reg.gauge(
            "ms2_worker_pool_idle",
            "Warm spare workers currently idle, by pool key",
            ("pool",),
        )
        m["pool_spares"] = reg.gauge(
            "ms2_worker_pool_spares",
            "Configured spare workers per pool key", merge="max",
        )
        m["replenishes"] = reg.counter(
            "ms2_worker_pool_replenishes_total",
            "Warm spares rebuilt off the request path",
        )
        m["replenish_ms"] = reg.counter(
            "ms2_worker_pool_replenish_ms_total",
            "Wall milliseconds spent rebuilding warm spares",
        )
        m["prewarms"] = reg.counter(
            "ms2_worker_pool_prewarms_total",
            "Warm spares built before the listener accepted traffic",
        )
        m["disk_ops"] = reg.counter(
            "ms2_disk_cache_ops_total",
            "Persistent snapshot cache outcomes, by kind",
            ("kind",),
        )
        m["cache_backend_ops"] = reg.counter(
            "ms2_cache_backend_ops_total",
            "Snapshot cache backend outcomes, by tier "
            "(authority = this daemon serving cache_get/cache_put; "
            "local/remote = build-session tiers) and kind",
            ("tier", "kind"),
        )
        m["cache_backend_load_ms"] = reg.counter(
            "ms2_cache_backend_load_ms_total",
            "Wall milliseconds loading snapshots, by tier", ("tier",),
        )
        m["cache_backend_store_ms"] = reg.counter(
            "ms2_cache_backend_store_ms_total",
            "Wall milliseconds storing snapshots, by tier", ("tier",),
        )
        m["cache_wb_depth"] = reg.gauge(
            "ms2_cache_backend_write_behind_depth",
            "Remote publishes waiting in write-behind queues",
        )
        m["cache_wb_dropped"] = reg.counter(
            "ms2_cache_backend_write_behind_dropped_total",
            "Remote publishes dropped on write-behind queue overflow",
        )
        m["disk_load_ms"] = reg.counter(
            "ms2_disk_cache_load_ms_total",
            "Wall milliseconds spent loading snapshots",
        )
        m["disk_store_ms"] = reg.counter(
            "ms2_disk_cache_store_ms_total",
            "Wall milliseconds spent storing snapshots",
        )
        m["events"] = reg.counter(
            "ms2_event_log_records_total",
            "Structured event-log records written",
        )
        m["eventlog_errors"] = reg.counter(
            "ms2_eventlog_errors_total",
            "Event-log write failures absorbed off the request path",
        )
        m["faults"] = reg.counter(
            "ms2_faults_injected_total",
            "Faults fired by the injection framework, by site",
            ("site",),
        )
        m["client_retries"] = reg.counter(
            "ms2_client_retries_total",
            "Transient failures retried by in-process Ms2Client "
            "instances",
        )
        m["client_fallbacks"] = reg.counter(
            "ms2_client_fallbacks_total",
            "Requests degraded to local in-process expansion",
        )
        m["worker_restarts"] = reg.counter(
            "ms2_build_worker_restarts_total",
            "Build executors rebuilt after worker death",
        )
        m["replenish_failures"] = reg.counter(
            "ms2_worker_pool_replenish_failures_total",
            "Warm-spare builds that raised (retried off the request "
            "path)",
        )
        self._telemetry = m
        reg.register_collector(self._collect_telemetry)
        return reg

    def _collect_telemetry(self, reg: MetricsRegistry) -> None:
        """Mirror every layer's live counters into the registry
        (runs at scrape/snapshot time, never on the request path)."""
        m = self._telemetry
        snap = self.metrics.to_json()
        m["info"].set(
            1, version=__version__, protocol=str(PROTOCOL_VERSION)
        )
        m["uptime"].set(snap["uptime_s"])
        m["draining"].set(1.0 if self._draining else 0.0)
        m["max_inflight"].set(self.max_inflight)
        m["queue_limit"].set(self.queue_limit)
        for op, count in snap["requests"].items():
            m["requests"].set_total(count, op=op)
        for status, count in snap["responses"].items():
            m["responses"].set_total(count, status=status)
        for code, count in snap["error_codes"].items():
            m["error_codes"].set_total(count, code=code)
        m["busy"].set_total(snap["busy_rejections"])
        m["shed"].set_total(snap["shed_rejections"])
        m["bad_frames"].set_total(snap["bad_frames"])
        m["disconnects"].set_total(snap["client_disconnects"])
        m["conns_open"].set(snap["connections_open"])
        m["conns_total"].set_total(snap["connections_total"])
        m["in_flight"].set(snap["in_flight"])
        m["peak_in_flight"].set(snap["peak_in_flight"])
        counts, total_ms, count = self.metrics.latency_histogram()
        m["latency"].load(counts, total_ms, count)
        pipeline = snap["pipeline"]
        m["expansion_cache"].set_total(
            pipeline["cache_hits"], result="hit"
        )
        m["expansion_cache"].set_total(
            pipeline["cache_misses"], result="miss"
        )
        m["expansion_cache"].set_total(
            pipeline["cache_uncacheable"], result="uncacheable"
        )
        m["expansions"].set_total(pipeline["expansions"])
        m["bodies_compiled"].set_total(pipeline["bodies_compiled"])
        m["templates_compiled"].set_total(
            pipeline["templates_compiled"]
        )
        m["compile_fallbacks"].set_total(pipeline["compile_fallbacks"])
        m["compile_ms"].set_total(pipeline["compile_time_ms"])
        m["warm_hits"].set_total(self.pool.warm_hits)
        m["cold_builds"].set_total(self.pool.cold_builds)
        for pool_key, idle in self.pool.idle_counts().items():
            m["pool_idle"].set(idle, pool=pool_key)
        m["pool_spares"].set(self.pool.spares)
        m["replenishes"].set_total(self.pool.replenishes)
        m["replenish_ms"].set_total(self.pool.replenish_ms)
        m["prewarms"].set_total(self.pool.prewarms)
        disk = self._disk_counters()
        for kind in ("hits", "misses", "failures", "evictions"):
            m["disk_ops"].set_total(disk.get(kind, 0), kind=kind)
        m["disk_load_ms"].set_total(disk.get("load_ms", 0.0))
        m["disk_store_ms"].set_total(disk.get("store_ms", 0.0))
        for tier, flat in self._cache_backend_tiers().items():
            for kind in (
                "hits", "misses", "failures", "evictions",
                "loads", "stores", "timeouts", "errors", "skipped",
            ):
                if kind in flat:
                    m["cache_backend_ops"].set_total(
                        flat[kind], tier=tier, kind=kind
                    )
            m["cache_backend_load_ms"].set_total(
                flat.get("load_ms", 0.0), tier=tier
            )
            m["cache_backend_store_ms"].set_total(
                flat.get("store_ms", 0.0), tier=tier
            )
        wb = self._cache_write_behind()
        m["cache_wb_depth"].set(wb.get("depth", 0))
        m["cache_wb_dropped"].set_total(wb.get("dropped", 0))
        if self.event_log is not None:
            m["events"].set_total(self.event_log.events_written)
        m["eventlog_errors"].set_total(
            self.event_log.errors_total
            if self.event_log is not None
            else 0
        )
        if faults.ACTIVE is not None:
            for site, fired in faults.ACTIVE.counters().items():
                m["faults"].set_total(fired, site=site)
        from repro.client import client_counters

        client = client_counters()
        m["client_retries"].set_total(client["retries"])
        m["client_fallbacks"].set_total(client["fallbacks"])
        m["worker_restarts"].set_total(self._worker_restarts())
        m["replenish_failures"].set_total(self.pool.replenish_failures)

    def _disk_counters(self) -> dict[str, float]:
        """Persistent-cache counters summed over every BuildSession.
        Only numeric top-level entries count — a tiered backend's
        nested per-tier dicts are surfaced separately by
        :meth:`_cache_backend_tiers`."""
        disk: dict[str, float] = {}
        with self._sessions_lock:
            for session in self._sessions.values():
                if session.cache is None:
                    continue
                for name, value in session.cache.counters().items():
                    if isinstance(value, bool) or not isinstance(
                        value, (int, float)
                    ):
                        continue
                    disk[name] = disk.get(name, 0) + value
        return disk

    def _cache_backend_tiers(self) -> dict[str, dict[str, float]]:
        """Per-tier cache counters: the daemon's own authority store
        plus every build session's backend, summed by tier name (the
        ``ms2_cache_backend_*`` label set)."""
        from repro.driver.cachebackend import backend_tiers

        tiers: dict[str, dict[str, float]] = {}

        def fold(tier: str, flat: dict[str, float]) -> None:
            into = tiers.setdefault(tier, {})
            for name, value in flat.items():
                into[name] = into.get(name, 0) + value

        if self.cache_authority is not None:
            fold("authority", self.cache_authority.counters())
        with self._sessions_lock:
            sessions = list(self._sessions.values())
        for session in sessions:
            if session.cache is None:
                continue
            for tier, flat in backend_tiers(
                session.cache.counters()
            ).items():
                fold(tier, flat)
        return tiers

    def _cache_write_behind(self) -> dict[str, float]:
        """Write-behind queue accounting summed over every session
        backend that publishes asynchronously (empty on a pure-local
        daemon — the families still expose zeros)."""
        totals: dict[str, float] = {}
        with self._sessions_lock:
            sessions = list(self._sessions.values())
        for session in sessions:
            if session.cache is None:
                continue
            wb = session.cache.counters().get("write_behind")
            if not isinstance(wb, dict):
                continue
            for name, value in wb.items():
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    continue
                totals[name] = totals.get(name, 0) + value
        return totals

    def _worker_restarts(self) -> int:
        """Build-executor rebuilds summed over every BuildSession."""
        with self._sessions_lock:
            return sum(
                session.worker_restarts
                for session in self._sessions.values()
            )

    def _log_event(
        self, event: str, request_id: str | None, **fields: Any
    ) -> None:
        if self.event_log is not None:
            self.event_log.log(event, request_id, **fields)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener and pre-warm the default worker pool."""
        self._idle_event = asyncio.Event()
        self._stopped = asyncio.Event()
        if self.socket_path is not None:
            if self.socket_path.exists():
                # The daemon owns its socket path; a leftover file
                # from a crashed instance would refuse the bind.
                self.socket_path.unlink()
            self.socket_path.parent.mkdir(parents=True, exist_ok=True)
            self._server = await asyncio.start_unix_server(
                self._serve_conn,
                path=str(self.socket_path),
                limit=self.max_frame_bytes,
            )
        else:
            self._server = await asyncio.start_server(
                self._serve_conn,
                host=self.host,
                port=self.port,
                limit=self.max_frame_bytes,
                reuse_port=self.reuse_port or None,
            )
            sockets = self._server.sockets or []
            if sockets:
                self.bound_port = sockets[0].getsockname()[1]
        if self.control_socket is not None:
            if self.control_socket.exists():
                self.control_socket.unlink()
            self.control_socket.parent.mkdir(parents=True, exist_ok=True)
            self._control_server = await asyncio.start_unix_server(
                self._serve_conn,
                path=str(self.control_socket),
                limit=self.max_frame_bytes,
            )
        if self.metrics_port is not None:
            from repro.metrics_http import TelemetrySidecar

            self.sidecar = TelemetrySidecar(
                self, host=self.metrics_host, port=self.metrics_port
            )
            await self.sidecar.start()
        # First requests should hit a warm worker: build the default
        # pool before accepting traffic (unless prewarm is off — a
        # shard fleet may prefer fast process startup).
        if self.prewarm:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(self._executor, self._prewarm)

    def _prewarm(self) -> None:
        for _ in range(self.pool.spares):
            if self.pool.replenish(
                self._effective_options(None),
                self.package_names,
                self.package_sources,
            ):
                self.pool.note_prewarm()

    @property
    def address(self) -> str:
        """Printable listen address."""
        if self.socket_path is not None:
            return str(self.socket_path)
        return f"{self.host}:{self.bound_port or self.port}"

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT initiate a graceful drain."""
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError):
                loop.add_signal_handler(signum, self.request_shutdown)

    def request_shutdown(self) -> None:
        """Stop accepting, drain in-flight work, then stop."""
        if self._draining:
            return
        self._draining = True
        self._drain_task = asyncio.get_running_loop().create_task(
            self._drain()
        )

    async def _drain(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._control_server is not None:
            self._control_server.close()
            await self._control_server.wait_closed()
        with contextlib.suppress(asyncio.TimeoutError):
            await asyncio.wait_for(self._wait_idle(), timeout=self.drain_s)
        for writer in list(self._writers):
            writer.close()
        # The sidecar outlives the protocol listener slightly so a
        # load balancer polling /healthz observes the 503 drain state.
        if self.sidecar is not None:
            await self.sidecar.aclose()
        if self.event_log is not None:
            self.event_log.close()
        self._executor.shutdown(wait=False, cancel_futures=True)
        assert self._stopped is not None
        self._stopped.set()

    async def _wait_idle(self) -> None:
        assert self._idle_event is not None
        while self._active > 0:
            self._idle_event.clear()
            await self._idle_event.wait()

    def _unlink_sockets(self) -> None:
        for path in (self.socket_path, self.control_socket):
            if path is not None:
                with contextlib.suppress(OSError):
                    path.unlink()

    async def serve_until_stopped(self) -> None:
        """Block until a drain completes (``shutdown`` op or signal)."""
        assert self._stopped is not None, "call start() first"
        try:
            await self._stopped.wait()
        finally:
            self._unlink_sockets()

    async def aclose(self) -> None:
        """Drain and stop programmatically (tests, embedding)."""
        self.request_shutdown()
        if self._drain_task is not None:
            await self._drain_task
        self._unlink_sockets()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _serve_conn(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self._writers.add(writer)
        self.metrics.connection_opened()
        try:
            await self._conn_loop(reader, writer)
        except (OSError, asyncio.IncompleteReadError):
            # Any socket-level failure — reset, broken pipe, or an
            # injected frame-write fault — is a disconnect, never an
            # unhandled task exception.
            self.metrics.count_disconnect()
        finally:
            self._writers.discard(writer)
            self.metrics.connection_closed()
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _conn_loop(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        while True:
            try:
                line = await reader.readline()
            except (asyncio.LimitOverrunError, ValueError):
                # The frame exceeded max_frame_bytes.  The stream
                # cannot be resynchronized mid-frame: answer, then
                # close this connection.
                self.metrics.count_bad_frame()
                await self._send(
                    writer,
                    _err(
                        None, None, "frame_too_large",
                        f"request frame exceeds "
                        f"{self.max_frame_bytes} bytes",
                        limit=self.max_frame_bytes,
                    ),
                )
                return
            if not line:
                return  # client EOF
            if not line.strip():
                continue
            try:
                request = json.loads(line)
                if not isinstance(request, dict):
                    raise ValueError("frame must be a JSON object")
            except (ValueError, UnicodeDecodeError) as exc:
                self.metrics.count_bad_frame()
                await self._send(
                    writer,
                    _err(None, None, "bad_request",
                         f"malformed request frame: {exc}"),
                )
                continue
            response = await self._dispatch(request)
            await self._send(writer, response)
            if request.get("op") == "shutdown" and response.get("ok"):
                self.request_shutdown()
                return

    async def _send(
        self, writer: asyncio.StreamWriter, response: dict[str, Any]
    ) -> None:
        self.metrics.count_response(response)
        frame = json.dumps(response).encode("utf-8") + b"\n"
        if faults.ACTIVE is not None:
            frame = faults.ACTIVE.hit(
                "server.frame_write", frame,
                context=str(response.get("op")),
            )
        writer.write(frame)
        await writer.drain()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    async def _dispatch(self, request: dict[str, Any]) -> dict[str, Any]:
        """Answer one frame with its correlation ID attached.

        The client's ``request_id`` (minted here when the frame
        carries none) is echoed in **every** response — ok, error and
        busy alike — and bookends the request in the event log, with
        the expansion's trace spans stamped by the same ID in between.
        """
        op = request.get("op")
        request_id = request.get("request_id")
        if not (isinstance(request_id, str) and request_id):
            request_id = new_request_id()
        op_name = op if isinstance(op, str) else "?"
        self._log_event(
            "request", request_id, op=op_name, id=request.get("id")
        )
        start = perf_counter()
        response = await self._dispatch_inner(request, request_id)
        response["request_id"] = request_id
        status = (
            "ok"
            if response.get("ok")
            else (response.get("error") or {}).get("code", "error")
        )
        self._log_event(
            "response", request_id, op=op_name, status=status,
            ms=round((perf_counter() - start) * 1000.0, 3),
        )
        self._log_spans(response, request_id)
        return response

    def _log_spans(
        self, response: dict[str, Any], request_id: str
    ) -> None:
        """One ``span`` event-log record per trace span in a traced
        response (already stamped with the request ID)."""
        if self.event_log is None or not response.get("ok"):
            return
        result = response.get("result") or {}
        for record in result.get("spans") or ():
            fields = {
                key: value
                for key, value in record.items()
                if key != "request_id"
            }
            self._log_event("span", request_id, **fields)

    async def _dispatch_inner(
        self, request: dict[str, Any], request_id: str
    ) -> dict[str, Any]:
        op = request.get("op")
        rid = request.get("id")
        self.metrics.count_request(op if isinstance(op, str) else "?")
        if op == "ping":
            return _ok(rid, op, {
                "pong": True,
                "version": __version__,
                "protocol": PROTOCOL_VERSION,
                "pid": os.getpid(),
            })
        if op == "stats":
            return _ok(rid, op, self.stats_payload())
        if op == "telemetry":
            return _ok(rid, op, {"snapshot": self.registry.snapshot()})
        if op == "shutdown":
            return _ok(rid, op, {"draining": True})
        if op in _CACHE_OPS:
            loop = asyncio.get_running_loop()
            try:
                return await loop.run_in_executor(
                    self._executor, self._run_cache_op, op, rid, request
                )
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 — protocol backstop
                return _err(
                    rid, op, "internal", f"{type(exc).__name__}: {exc}"
                )
        if op not in _WORK_OPS:
            return _err(
                rid, op if isinstance(op, str) else None, "bad_request",
                f"unknown op {op!r}; expected one of "
                f"{', '.join(REQUEST_OPS)}",
            )
        if self._draining:
            return _err(rid, op, "shutting_down",
                        "server is draining; no new work accepted",
                        retry_after_ms=self.retry_after_ms())
        tier = self.load_tier()
        if tier == "busy":
            self.metrics.count_busy()
            return _err(
                rid, op, "busy",
                "server at capacity; retry later",
                in_flight=self._active,
                limit=self.max_inflight + self.queue_limit,
                retry_after_ms=self.retry_after_ms(),
            )
        if tier == "shed_expensive" and self._is_expensive(request):
            self.metrics.count_shed()
            return _err(
                rid, op, "busy",
                "server under load; expensive (cold-build) request "
                "shed",
                shed=True,
                tier="shed_expensive",
                in_flight=self._active,
                limit=self.max_inflight + self.queue_limit,
                retry_after_ms=self.retry_after_ms(),
            )

        self._active += 1
        self.metrics.enter()
        start = perf_counter()
        loop = asyncio.get_running_loop()
        try:
            response = await loop.run_in_executor(
                self._executor, self._run_work, op, rid, request,
                request_id,
            )
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 — protocol backstop
            response = _err(
                rid, op, "internal",
                f"{type(exc).__name__}: {exc}",
            )
        finally:
            self._active -= 1
            self.metrics.exit()
            assert self._idle_event is not None
            if self._active == 0:
                self._idle_event.set()
        self.metrics.observe_latency((perf_counter() - start) * 1000.0)
        return response

    # ------------------------------------------------------------------
    # Cache authority ops (executor threads)
    # ------------------------------------------------------------------

    def _run_cache_op(
        self, op: str, rid: Any, request: dict[str, Any]
    ) -> dict[str, Any]:
        """Serve one ``cache_get``/``cache_put``/``cache_stats``
        frame from the daemon's snapshot root.  Snapshots cross the
        wire as their JSON payload dicts plus a content digest; the
        disk format's own framing + integrity bytes guard the entry
        at rest exactly as they do for local builds."""
        from repro.driver.cachebackend import (
            snapshot_digest,
            validate_snapshot,
        )

        cache = self.cache_authority
        if cache is None:
            return _err(
                rid, op, "unavailable",
                "this daemon serves no snapshot cache "
                "(start repro serve with --cache-dir)",
            )
        if op == "cache_stats":
            return _ok(rid, op, {
                "dir": str(cache.root),
                **cache.counters(),
            })
        key = request.get("key")
        if not (isinstance(key, str) and key):
            return _err(
                rid, op, "bad_request",
                f"{op} requires a non-empty string 'key'",
            )
        if op == "cache_get":
            payload = cache.load(key)
            if payload is None:
                return _ok(rid, op, {
                    "found": False, "snapshot": None, "digest": None,
                })
            return _ok(rid, op, {
                "found": True,
                "snapshot": payload,
                "digest": snapshot_digest(payload),
            })
        snapshot = request.get("snapshot")
        if validate_snapshot(snapshot, key) is None:
            return _err(
                rid, op, "bad_request",
                "cache_put requires a snapshot object carrying the "
                "entry 'key' and a string 'output'",
            )
        digest = request.get("digest")
        if digest != snapshot_digest(snapshot):
            # The publish was corrupted in transit; storing it would
            # poison every machine that later warms from this entry.
            return _err(
                rid, op, "bad_request",
                "cache_put digest mismatch: snapshot corrupted in "
                "transit; entry not stored",
            )
        return _ok(rid, op, {"stored": bool(cache.store(key, snapshot))})

    # ------------------------------------------------------------------
    # Tiered load shedding
    # ------------------------------------------------------------------

    def shed_threshold(self) -> int:
        """Admitted work beyond which the shed tier starts: halfway
        into the bounded queue."""
        return self.max_inflight + (self.queue_limit + 1) // 2

    def load_tier(self) -> str:
        """The admission tier for the *next* work request, from
        current queue depth and the latency histogram:

        ``accept``
            below the shed threshold — everything is admitted;
        ``shed_expensive``
            the queue is more than half full, **or** the
            histogram-estimated wait for the queue ahead already
            exceeds the server's default deadline — requests that
            would pay an inline cold worker build (or a full
            ``expand_file`` pipeline) are answered ``busy`` with
            ``shed: true`` so warm traffic keeps flowing;
        ``busy``
            the bounded queue is full — everything is rejected (the
            PR-5 behaviour, unchanged).
        """
        if self._active >= self.max_inflight + self.queue_limit:
            return "busy"
        if self._active >= self.shed_threshold():
            return "shed_expensive"
        if (
            self.default_deadline_s is not None
            and self._active > self.max_inflight
            and self.estimated_wait_ms()
            >= self.default_deadline_s * 1000.0
        ):
            # Queued work is already doomed to blow its deadline:
            # shed cold work early instead of expanding the backlog.
            return "shed_expensive"
        return "accept"

    def _is_expensive(self, request: dict[str, Any]) -> bool:
        """Whether this request would do non-warm-path work: a full
        ``expand_file`` build, or an expand with no pre-built warm
        worker for its (options, preamble) pool key.  Malformed
        requests classify cheap — the normal dispatch path owns their
        ``bad_request`` answer."""
        if request.get("op") == "expand_file":
            return True
        try:
            options = self._effective_options(request.get("options"))
            names, sources = self._request_preamble(request)
        except (_BadRequest, ValueError):
            return False
        if request.get("op") == "trace":
            options = options.replace(trace=True)
        key = self.pool.key_for(options, names, sources)
        return not self.pool.has_idle(key)

    def estimated_wait_ms(self) -> float:
        """Histogram-estimated queueing delay for a newly admitted
        request: requests ahead of it times the observed mean
        latency."""
        with self.metrics._lock:
            mean_ms = (
                self.metrics.latency_total_ms / self.metrics.latency_count
                if self.metrics.latency_count
                else 0.0
            )
        queued = max(0, self._active - self.max_inflight)
        return mean_ms * queued

    #: Bounds for the busy-frame backoff hint, milliseconds.
    RETRY_AFTER_MIN_MS = 25
    RETRY_AFTER_MAX_MS = 5000

    def retry_after_ms(self) -> int:
        """The backoff hint carried by ``busy``/``shutting_down``/
        ``unavailable`` frames: the estimated time for the queue in
        front of a retrying client to clear — queue depth times the
        observed mean request latency — clamped to
        [:data:`RETRY_AFTER_MIN_MS`, :data:`RETRY_AFTER_MAX_MS`].
        """
        with self.metrics._lock:
            mean_ms = (
                self.metrics.latency_total_ms / self.metrics.latency_count
                if self.metrics.latency_count
                else float(self.RETRY_AFTER_MIN_MS)
            )
        queued = max(1, self._active - self.max_inflight + 1)
        hint = mean_ms * queued
        return int(
            min(
                float(self.RETRY_AFTER_MAX_MS),
                max(float(self.RETRY_AFTER_MIN_MS), hint),
            )
        )

    # ------------------------------------------------------------------
    # Work ops (executor threads)
    # ------------------------------------------------------------------

    def _effective_options(
        self, payload: dict[str, Any] | None
    ) -> Ms2Options:
        """Request options (absent payload = the server defaults),
        with the server-side default deadline applied when the
        request sets none, and runtime hooks stripped."""
        options = (
            self.options
            if payload is None
            else Ms2Options.from_json(payload)
        )
        if (
            self.default_deadline_s is not None
            and options.deadline_s is None
        ):
            options = options.replace(deadline_s=self.default_deadline_s)
        return options.without_runtime_hooks()

    def _request_preamble(
        self, request: dict[str, Any]
    ) -> tuple[tuple[str, ...], tuple[tuple[str, str], ...]]:
        """The (package names, package sources) a request asks for;
        the server preamble when it asks for none."""
        names = request.get("packages")
        sources = request.get("package_sources")
        if names is None and sources is None:
            return self.package_names, self.package_sources
        if names is not None and not (
            isinstance(names, list)
            and all(isinstance(n, str) for n in names)
        ):
            raise _BadRequest("packages must be a list of names")
        pairs: list[tuple[str, str]] = []
        for entry in sources or []:
            if not (
                isinstance(entry, (list, tuple))
                and len(entry) == 2
                and all(isinstance(part, str) for part in entry)
            ):
                raise _BadRequest(
                    "package_sources must be [filename, source] pairs"
                )
            pairs.append((entry[0], entry[1]))
        return tuple(names or ()), tuple(pairs)

    def _run_work(
        self, op: str, rid: Any, request: dict[str, Any],
        request_id: str,
    ) -> dict[str, Any]:
        try:
            options = self._effective_options(request.get("options"))
            package_names, package_sources = self._request_preamble(
                request
            )
        except (_BadRequest, ValueError) as exc:
            return _err(rid, op, "bad_request", str(exc))
        if op == "expand_file":
            return self._do_expand_file(
                rid, request, options, package_names, package_sources
            )
        return self._do_expand(
            rid, op, request, options, package_names, package_sources,
            request_id,
        )

    def _do_expand(
        self,
        rid: Any,
        op: str,
        request: dict[str, Any],
        options: Ms2Options,
        package_names: tuple[str, ...],
        package_sources: tuple[tuple[str, str], ...],
        request_id: str,
    ) -> dict[str, Any]:
        source = request.get("source")
        if not isinstance(source, str):
            return _err(rid, op, "bad_request",
                        "expand requires a string 'source'")
        filename = request.get("filename", "<server>")
        if not isinstance(filename, str):
            return _err(rid, op, "bad_request",
                        "'filename' must be a string")
        if op == "trace":
            options = options.replace(trace=True)
        try:
            worker, _, warm = self.pool.acquire(
                options, package_names, package_sources
            )
        except KeyError as exc:
            return _err(rid, op, "bad_request", str(exc.args[0]))
        except OSError as exc:
            # The inline worker build hit infrastructure trouble
            # (disk error, injected fault).  The request itself is
            # fine — answer a typed, retryable frame, and let the
            # off-path replenisher restock the pool.
            self._schedule_replenish(
                options, package_names, package_sources
            )
            return _err(
                rid, op, "unavailable",
                f"could not build an expansion worker: {exc}",
                retry_after_ms=self.retry_after_ms(),
            )
        if worker.tracer is not None:
            # Spans opened during this expansion carry the serving
            # request's correlation ID (single-use worker: no bleed).
            worker.tracer.request_id = request_id
        try:
            result = worker.expand(source, filename)
        except Ms2Error as exc:
            self.metrics.merge_pipeline(worker.stats)
            return _err(
                rid, op, "expansion_error", exc.message,
                diagnostic=Diagnostic.from_error(exc).to_json(),
                warm=warm,
            )
        finally:
            self._schedule_replenish(
                options, package_names, package_sources
            )
        self.metrics.merge_pipeline(worker.stats)
        payload = result.to_json()
        payload["warm"] = warm
        if op == "trace" and worker.tracer is not None:
            payload["tree"] = worker.tracer.render_tree()
        return _ok(rid, op, payload)

    def _do_expand_file(
        self,
        rid: Any,
        request: dict[str, Any],
        options: Ms2Options,
        package_names: tuple[str, ...],
        package_sources: tuple[tuple[str, str], ...],
    ) -> dict[str, Any]:
        path = request.get("path")
        if not isinstance(path, str):
            return _err(rid, "expand_file", "bad_request",
                        "expand_file requires a string 'path'")
        session = self._session_for(
            options, package_names, package_sources
        )
        try:
            report = session.build([path])
        except OSError as exc:
            return _err(rid, "expand_file", "bad_request", str(exc))
        except KeyError as exc:
            return _err(rid, "expand_file", "bad_request",
                        str(exc.args[0]))
        [file_result] = report.results
        if file_result.stats:
            self.metrics.merge_pipeline(
                PipelineStats.from_json(file_result.stats)
            )
        if file_result.status != "ok":
            # Infrastructure casualties (worker I/O faults, dead
            # workers) are transient: answer a retryable frame, not
            # an expansion error that clients would treat as final.
            if file_result.error_type in _TRANSIENT_ERROR_TYPES:
                return _err(
                    rid, "expand_file", "unavailable",
                    file_result.error or "worker failure",
                    path=file_result.path,
                    retry_after_ms=self.retry_after_ms(),
                )
            return _err(
                rid, "expand_file", "expansion_error",
                file_result.error or "expansion failed",
                path=file_result.path,
            )
        return _ok(rid, "expand_file", file_result.to_json())

    def _session_for(
        self,
        options: Ms2Options,
        package_names: tuple[str, ...],
        package_sources: tuple[tuple[str, str], ...],
    ):
        """The BuildSession serving ``expand_file`` for this pool key
        — jobs=1 (the daemon's executor is the concurrency), sharing
        the server's persistent cache directory."""
        from repro.driver.scheduler import BuildSession

        key = self.pool.key_for(options, package_names, package_sources)
        with self._sessions_lock:
            session = self._sessions.get(key)
            if session is None:
                session = BuildSession(
                    options,
                    package_names=package_names,
                    package_sources=package_sources,
                    jobs=1,
                    cache=(
                        str(self.cache_dir)
                        if self.cache_dir is not None
                        else None
                    ),
                )
                self._sessions[key] = session
            return session

    #: Replenish attempts per scheduling (the first build plus
    #: bounded off-path retries — a transient fault must not leave
    #: the pool cold, and a persistent one must not loop forever).
    REPLENISH_ATTEMPTS = 3

    def _schedule_replenish(
        self,
        options: Ms2Options,
        package_names: tuple[str, ...],
        package_sources: tuple[tuple[str, str], ...],
        attempts: int | None = None,
    ) -> None:
        """Rebuild a warm spare off the request path."""
        try:
            self._executor.submit(
                self._replenish_task,
                options, package_names, package_sources,
                attempts if attempts is not None
                else self.REPLENISH_ATTEMPTS,
            )
        except RuntimeError:
            pass  # executor already shut down (drain)

    def _replenish_task(
        self,
        options: Ms2Options,
        package_names: tuple[str, ...],
        package_sources: tuple[tuple[str, str], ...],
        attempts: int,
    ) -> None:
        """One replenish try.  A worker build that raises is counted
        and *rescheduled* (bounded), so a fault during replenishment
        can never wedge the pool: either a later attempt restocks
        it, or requests fall back to inline builds."""
        try:
            self.pool.replenish(options, package_names, package_sources)
        except Exception:  # noqa: BLE001 — isolation boundary
            with self.pool._lock:
                self.pool.replenish_failures += 1
            if attempts > 1:
                self._schedule_replenish(
                    options, package_names, package_sources,
                    attempts - 1,
                )

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------

    def stats_payload(self) -> dict[str, Any]:
        """The ``stats`` op response body."""
        payload = self.metrics.to_json()
        payload["server"] = {
            "version": __version__,
            "protocol": PROTOCOL_VERSION,
            "pid": os.getpid(),
            "address": self.address,
            "shard": self.shard_index,
            "max_inflight": self.max_inflight,
            "queue_limit": self.queue_limit,
            "shed_threshold": self.shed_threshold(),
            "load_tier": self.load_tier(),
            "max_frame_bytes": self.max_frame_bytes,
            "default_deadline_s": self.default_deadline_s,
            "draining": self._draining,
            "packages": list(self.package_names),
            "options_hash": self.options.options_hash(),
        }
        payload["workers"] = {
            "warm_hits": self.pool.warm_hits,
            "cold_builds": self.pool.cold_builds,
            "spares": self.pool.spares,
            "idle": self.pool.idle_counts(),
            "replenishes": self.pool.replenishes,
            "replenish_ms": round(self.pool.replenish_ms, 3),
            "prewarms": self.pool.prewarms,
            "replenish_failures": self.pool.replenish_failures,
        }
        from repro.client import client_counters

        payload["resilience"] = {
            "worker_restarts": self._worker_restarts(),
            "replenish_failures": self.pool.replenish_failures,
            "eventlog_errors": (
                self.event_log.errors_total
                if self.event_log is not None
                else 0
            ),
            "client_retries": client_counters()["retries"],
            "client_fallbacks": client_counters()["fallbacks"],
        }
        payload["faults"] = {
            "armed": faults.ACTIVE is not None,
            "seed": (
                faults.ACTIVE.seed if faults.ACTIVE is not None else None
            ),
            "injected": (
                faults.ACTIVE.counters()
                if faults.ACTIVE is not None
                else {}
            ),
        }
        disk = self._disk_counters()
        for key in ("hits", "misses", "failures", "evictions"):
            disk.setdefault(key, 0)
        payload["disk_cache"] = {
            "dir": str(self.cache_dir) if self.cache_dir else None,
            **disk,
        }
        payload["cache_backends"] = {
            "dir": str(self.cache_dir) if self.cache_dir else None,
            "tiers": self._cache_backend_tiers(),
            "write_behind": self._cache_write_behind(),
        }
        payload["telemetry"] = {
            "metrics_address": (
                self.sidecar.address if self.sidecar is not None else None
            ),
            "event_log_records": (
                self.event_log.events_written
                if self.event_log is not None
                else None
            ),
        }
        return payload


# ---------------------------------------------------------------------------
# Blocking entry point
# ---------------------------------------------------------------------------


def _arm_config_faults(config: ServeConfig) -> None:
    """Arm the config's chaos plan (and export it so every shard
    child inherits it through the environment)."""
    if not config.fault_specs:
        return
    plan = faults.arm(*config.fault_specs, seed=config.fault_seed)
    faults.export_to_env(plan)
    print(
        f"fault injection armed: {plan.describe()}",
        file=sys.stderr,
        flush=True,
    )


def serve(
    options: Ms2Options | None = None,
    config: ServeConfig | None = None,
    *,
    ready: Any = None,
    **legacy: Any,
) -> None:
    """Run an expansion daemon until it shuts down (the ``repro
    serve`` entry point; also the :mod:`repro.api` facade's
    ``serve``).

    ``options`` configure expansion semantics; ``config`` — a
    :class:`ServeConfig` — configures the serving process (listen
    address, shard count, capacity, telemetry).  With
    ``config.shards > 1`` the call runs the pre-forked
    :mod:`repro.shard` fleet instead of a single in-process daemon.

    ``ready`` is an optional callable invoked once the listener is
    bound — with the :class:`Ms2Server` (single process) or the
    :class:`repro.shard.ShardSupervisor` (fleet); both expose
    ``.address``.  Tests use it to learn ephemeral ports.

    The pre-:class:`ServeConfig` keyword arguments
    (``socket_path=...``, ``port=...``, ``max_inflight=...``, ...)
    keep working through a shim that emits
    :class:`~repro.options.Ms2DeprecationWarning`.
    """
    if legacy:
        if config is not None:
            raise TypeError(
                "serve() takes either config=ServeConfig(...) or the "
                "legacy keyword arguments, not both"
            )
        config = ServeConfig.from_legacy_kwargs(**legacy)
    if config is None:
        raise TypeError(
            "serve() requires a ServeConfig: "
            "serve(options, ServeConfig(socket=...))"
        )
    config.validate()
    _arm_config_faults(config)
    if config.shards > 1:
        from repro.shard import run_sharded

        run_sharded(options, config, ready=ready)
        return
    server = Ms2Server.from_config(options, config)

    async def _main() -> None:
        await server.start()
        server.install_signal_handlers()
        if ready is not None:
            ready(server)
        await server.serve_until_stopped()

    asyncio.run(_main())
