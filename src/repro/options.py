"""The unified configuration surface of the MS2 pipeline.

Historically every knob of the pipeline travelled as its own keyword
argument — ``MacroProcessor(hygienic=..., cache=..., trace=...)`` plus
per-call ``recover=`` / ``max_errors=`` / ``annotate=`` overrides on
each ``expand_*`` method, with the CLI re-deriving its own defaults
for all of them.  :class:`Ms2Options` replaces that sprawl with one
frozen value object that is

- the **single source of defaults** (the CLI's argparse defaults and
  the library's behaviour both come from ``Ms2Options()``),
- **hashable into a stable digest** (:meth:`Ms2Options.options_hash`),
  which is one third of the incremental-rebuild key used by the batch
  driver's persistent cache (source hash, macro hash, options hash),
- **picklable** (minus run-time observability hooks), so the parallel
  batch driver can ship one options value to every worker process.

:class:`ExpandResult` is the matching return object for
:meth:`repro.engine.MacroProcessor.expand`: expanded output plus the
diagnostics, pipeline stats and trace spans of the run, instead of the
shape-shifting ``str | (str, diagnostics)`` returns of the legacy
methods.

The legacy keyword arguments keep working through a thin shim that
forwards into :class:`Ms2Options` and emits
:class:`Ms2DeprecationWarning` (a :class:`DeprecationWarning`
subclass, so warning filters can be scoped to exactly this shim).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.diagnostics import DEFAULT_MAX_ERRORS, ExpansionBudget

if TYPE_CHECKING:
    from repro.cast.decls import TranslationUnit
    from repro.diagnostics import Diagnostic
    from repro.stats import PipelineStats
    from repro.trace import ExpansionSpan

__all__ = [
    "ExpandResult",
    "Ms2DeprecationWarning",
    "Ms2Options",
    "OPTION_FIELDS",
]


class Ms2DeprecationWarning(DeprecationWarning):
    """Deprecation warnings emitted by the legacy-kwargs shim.

    A dedicated subclass so projects (and this repo's own test suite)
    can run with ``-W error::DeprecationWarning`` while scoping an
    ``ignore`` filter to exactly the MS2 compatibility shim.
    """


def warn_legacy(old: str, new: str) -> None:
    """Emit the standard shim warning for one legacy spelling."""
    warnings.warn(
        f"{old} is deprecated; use {new} instead",
        Ms2DeprecationWarning,
        stacklevel=3,
    )


@dataclass(frozen=True, slots=True)
class Ms2Options:
    """Every knob of one macro-processing session, as a frozen value.

    Construct once, share freely: the object is immutable, comparable
    and (hooks aside) picklable.  Derive variants with
    :meth:`replace`.
    """

    # -- expansion semantics -------------------------------------------
    #: Rename template-declared locals automatically (§5 extension).
    hygienic: bool = False
    #: Keep ``syntax``/``metadcl`` items in the output.
    keep_meta: bool = False
    #: Emit provenance comments and ``#line`` directives on output.
    annotate: bool = False

    # -- fast paths -----------------------------------------------------
    #: Compiled per-macro invocation parse routines.
    compiled_patterns: bool = True
    #: Compile macro bodies/templates to Python (semantics-neutral;
    #: per-macro interpreter fallback — see repro.macros.codegen).
    compiled_bodies: bool = True
    #: Memoize expansions of pure macros (in-memory replay cache).
    cache: bool = True

    # -- fault tolerance ------------------------------------------------
    #: Collect diagnostics and keep going instead of raising on the
    #: first fault.
    recover: bool = False
    #: Cap on ``error`` diagnostics per recovered run.
    max_errors: int = DEFAULT_MAX_ERRORS
    #: Budget: cap on total macro expansions (None = unbounded).
    max_expansions: int | None = None
    #: Budget: cap on AST nodes produced by expansions.
    max_output_nodes: int | None = None
    #: Budget: wall-clock allowance in seconds.
    deadline_s: float | None = None

    # -- observability --------------------------------------------------
    #: Record an :class:`~repro.trace.ExpansionSpan` tree.
    trace: bool = False
    #: Aggregate per-phase wall time into the session stats.
    profile: bool = False
    #: Span event hooks, ``hook(event, span)``.  Runtime-only: never
    #: part of the options hash, stripped before crossing processes.
    trace_hooks: tuple = ()
    #: Writable text stream for JSONL span events.  Runtime-only.
    trace_jsonl: Any = None

    # ------------------------------------------------------------------

    def replace(self, **changes: Any) -> "Ms2Options":
        """A copy with the given fields changed."""
        return dataclasses.replace(self, **changes)

    def make_budget(self) -> ExpansionBudget | None:
        """A fresh :class:`ExpansionBudget` from the budget fields, or
        None when every limit is unset.  Fresh per call — budgets
        latch once exhausted, so they must not be shared across runs
        that should be accounted separately."""
        if (
            self.max_expansions is None
            and self.max_output_nodes is None
            and self.deadline_s is None
        ):
            return None
        return ExpansionBudget(
            max_expansions=self.max_expansions,
            max_output_nodes=self.max_output_nodes,
            deadline_s=self.deadline_s,
        )

    def wants_tracer(self) -> bool:
        return bool(self.trace or self.trace_hooks or self.trace_jsonl)

    # ------------------------------------------------------------------
    # Wire format (the server protocol / persistent snapshots)
    # ------------------------------------------------------------------

    def to_json(self) -> dict[str, Any]:
        """The wire form: every field except the runtime-only hook
        handles (``trace_hooks``/``trace_jsonl``), as JSON-able
        values.  :meth:`from_json` round-trips it exactly."""
        return {
            name: getattr(self, name)
            for name in OPTION_FIELDS
            if name not in _RUNTIME_FIELDS
        }

    @classmethod
    def from_json(cls, data: dict[str, Any] | None) -> "Ms2Options":
        """Rebuild an options value from a :meth:`to_json` payload.

        Unknown keys are ignored (payloads written by newer pipelines
        still load) and the runtime-only hook fields cannot cross the
        wire.  Values of the wrong JSON type raise :class:`ValueError`
        — the expansion server turns that into a ``bad_request``
        response instead of corrupting a worker.
        """
        if data is None:
            return cls()
        if not isinstance(data, dict):
            raise ValueError("options payload must be a JSON object")
        kwargs: dict[str, Any] = {}
        for name in OPTION_FIELDS:
            if name in _RUNTIME_FIELDS or name not in data:
                continue
            kwargs[name] = _check_field(name, data[name])
        return cls(**kwargs)

    # ------------------------------------------------------------------
    # Hashing / serialization (the incremental-rebuild key)
    # ------------------------------------------------------------------

    def hashed_fields(self) -> dict[str, Any]:
        """The fields that select an execution path through the
        pipeline, as a JSON-able dict.  Observability settings
        (``trace``/``profile`` and the runtime hooks) are excluded:
        they never change the expanded output."""
        return {
            name: getattr(self, name)
            for name in OPTION_FIELDS
            if name not in _UNHASHED_FIELDS
        }

    def options_hash(self) -> str:
        """A stable hex digest of :meth:`hashed_fields`.

        Equal options produce equal digests across processes and
        runs; this is the "options" third of the batch driver's
        (source, macros, options) incremental-rebuild key."""
        payload = json.dumps(self.hashed_fields(), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def without_runtime_hooks(self) -> "Ms2Options":
        """A copy safe to pickle across process boundaries."""
        if not self.trace_hooks and self.trace_jsonl is None:
            return self
        return self.replace(trace_hooks=(), trace_jsonl=None)

    # ------------------------------------------------------------------
    # Legacy-kwargs shim
    # ------------------------------------------------------------------

    @classmethod
    def from_legacy_kwargs(
        cls,
        base: "Ms2Options | None" = None,
        *,
        budget: ExpansionBudget | None = None,
        **legacy: Any,
    ) -> "Ms2Options":
        """Fold legacy ``MacroProcessor(...)`` keyword arguments into
        an options value, emitting one :class:`Ms2DeprecationWarning`
        per call.  ``budget=`` instances are flattened into the budget
        fields."""
        unknown = set(legacy) - set(OPTION_FIELDS)
        if unknown:
            raise TypeError(
                f"unknown MacroProcessor option(s): {sorted(unknown)}"
            )
        names = sorted(legacy) + (["budget"] if budget is not None else [])
        warn_legacy(
            f"passing {', '.join(names)} as keyword argument(s)",
            "Ms2Options",
        )
        if budget is not None:
            legacy.setdefault("max_expansions", budget.max_expansions)
            legacy.setdefault("max_output_nodes", budget.max_output_nodes)
            legacy.setdefault("deadline_s", budget.deadline_s)
        if "trace_hooks" in legacy and legacy["trace_hooks"] is not None:
            legacy["trace_hooks"] = tuple(legacy["trace_hooks"])
        elif legacy.get("trace_hooks", ()) is None:
            legacy["trace_hooks"] = ()
        base = base if base is not None else cls()
        return base.replace(**legacy)


#: Every field name of :class:`Ms2Options`, declaration order.
OPTION_FIELDS: tuple[str, ...] = tuple(
    f.name for f in dataclasses.fields(Ms2Options)
)

#: Fields excluded from :meth:`Ms2Options.options_hash` — pure
#: observability, or (``compiled_bodies``) a fast path whose output is
#: identical by contract: none of them can change the expanded output.
_UNHASHED_FIELDS = frozenset(
    {"trace", "profile", "trace_hooks", "trace_jsonl", "compiled_bodies"}
)

#: Runtime-only handles: never serialized, never on the wire.
_RUNTIME_FIELDS = frozenset({"trace_hooks", "trace_jsonl"})

#: Fields whose wire value must be a JSON boolean.
_BOOL_FIELDS = frozenset(
    name
    for name in OPTION_FIELDS
    if isinstance(getattr(Ms2Options(), name), bool)
)


def _check_field(name: str, value: Any) -> Any:
    """Validate one wire value for :meth:`Ms2Options.from_json`."""
    if name in _BOOL_FIELDS:
        if not isinstance(value, bool):
            raise ValueError(f"option {name!r} must be a boolean")
        return value
    if name == "max_errors":
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValueError(f"option {name!r} must be an integer")
        return value
    if name in ("max_expansions", "max_output_nodes"):
        if value is None:
            return None
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValueError(f"option {name!r} must be an integer or null")
        return value
    if name == "deadline_s":
        if value is None:
            return None
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(f"option {name!r} must be a number or null")
        return float(value)
    return value


@dataclass(slots=True)
class ExpandResult:
    """Everything one :meth:`MacroProcessor.expand` run produced.

    Replaces the legacy shape-shifting returns (``str`` in fail-fast
    mode, ``(str, diagnostics)`` with ``recover=True``) with one
    object carrying the output *and* the run's observability state.
    """

    #: Expanded C text (with ``keep_meta``, the full rendered unit).
    output: str
    #: The expanded translation unit the text was rendered from.
    unit: "TranslationUnit | None" = None
    #: Diagnostics collected during the run (empty in fail-fast mode,
    #: which raises instead).
    diagnostics: "list[Diagnostic]" = field(default_factory=list)
    #: The session's pipeline counters (shared with the processor).
    stats: "PipelineStats | None" = None
    #: Top-level expansion spans, program order (empty unless tracing).
    spans: "list[ExpansionSpan]" = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostic was recorded."""
        return not any(d.severity == "error" for d in self.diagnostics)

    def to_json(self) -> dict[str, Any]:
        """The wire form (server responses, batch-driver records,
        persistent snapshots).  Spans serialize flattened pre-order —
        every span of every recorded tree, parent ids preserving the
        shape — so :meth:`from_json` can rebuild the trees.  The
        expanded ``unit`` never crosses the wire: consumers that need
        the AST re-parse the output text."""
        spans: list[dict[str, Any]] = []
        for root in self.spans:
            stack = [root]
            while stack:
                span = stack.pop()
                spans.append(span.to_json())
                stack.extend(reversed(span.children))
        return {
            "ok": self.ok,
            "output": self.output,
            "diagnostics": [d.to_json() for d in self.diagnostics],
            "stats": self.stats.to_json() if self.stats else {},
            "spans": spans,
        }

    #: Legacy spelling of :meth:`to_json`.
    as_dict = to_json

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "ExpandResult":
        """Rebuild a result from a :meth:`to_json` payload (the
        client side of the server protocol).  ``unit`` is None; span
        trees are relinked from their parent ids."""
        from repro.diagnostics import Diagnostic
        from repro.stats import PipelineStats
        from repro.trace import ExpansionSpan

        if not isinstance(data, dict):
            raise ValueError("result payload must be a JSON object")
        diagnostics = [
            Diagnostic.from_json(d) for d in data.get("diagnostics", [])
        ]
        stats_data = data.get("stats")
        stats = PipelineStats.from_json(stats_data) if stats_data else None
        by_id: dict[int, Any] = {}
        roots = []
        for record in data.get("spans", []):
            span = ExpansionSpan.from_json(record)
            by_id[span.span_id] = span
            parent = by_id.get(span.parent_id)
            if parent is not None:
                parent.children.append(span)
            else:
                roots.append(span)
        return cls(
            output=data.get("output", ""),
            unit=None,
            diagnostics=diagnostics,
            stats=stats,
            spans=roots,
        )
