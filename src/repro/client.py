"""Synchronous client for the ``repro serve`` expansion daemon.

:class:`Ms2Client` speaks the newline-delimited JSON protocol of
:mod:`repro.server` over a Unix socket or TCP connection and converts
wire payloads back into the library's own objects
(:class:`~repro.options.ExpandResult`, raising
:class:`Ms2ServerError` — an :class:`~repro.errors.Ms2Error` — for
error frames), so switching ``MacroProcessor.expand`` calls to a warm
daemon is a one-line change::

    from repro.client import Ms2Client

    with Ms2Client("/tmp/ms2.sock") as client:
        result = client.expand("int x = quad(1);", "prog.c")

``repro expand --server ADDR`` routes the ordinary CLI through this
client transparently.
"""

from __future__ import annotations

import json
import os
import socket
import time
from pathlib import Path
from typing import Any, Sequence

from repro.errors import Ms2Error
from repro.options import ExpandResult, Ms2Options
from repro.telemetry import new_request_id

__all__ = ["Ms2Client", "Ms2ServerError", "parse_address"]

#: Default per-request socket timeout, seconds.
DEFAULT_TIMEOUT_S = 60.0


class Ms2ServerError(Ms2Error):
    """An error frame from the daemon, as a raisable
    :class:`~repro.errors.Ms2Error` (so ``repro expand --server``
    reports failures through the same path as local expansion).

    Attributes
    ----------
    code:
        The protocol error code (``busy``, ``bad_request``,
        ``expansion_error``, ...).
    payload:
        The complete ``error`` object from the frame (may carry a
        serialized diagnostic for ``expansion_error``).
    """

    def __init__(self, code: str, message: str, payload: dict[str, Any]):
        super().__init__(message)
        self.code = code
        self.payload = payload

    def __str__(self) -> str:
        rendered = (self.payload.get("diagnostic") or {}).get("rendered")
        if rendered:
            return rendered
        return f"[{self.code}] {self.message}"


def parse_address(spec: str | Path) -> tuple[Any, ...]:
    """``("unix", path)`` or ``("tcp", host, port)`` from an address
    spelling: a filesystem path (anything containing a separator, or
    any existing path), ``HOST:PORT``, ``:PORT`` or a bare port
    number."""
    text = str(spec)
    if text.isdigit():
        return ("tcp", "127.0.0.1", int(text))
    host, sep, port = text.rpartition(":")
    if sep and port.isdigit() and os.sep not in text:
        return ("tcp", host or "127.0.0.1", int(port))
    return ("unix", text)


class Ms2Client:
    """One connection to a running daemon.  Not thread-safe: requests
    on one client are strictly sequential (open one client per thread
    — the daemon multiplexes connections)."""

    def __init__(
        self,
        address: str | Path,
        *,
        timeout: float = DEFAULT_TIMEOUT_S,
    ) -> None:
        self.address = parse_address(address)
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._reader: Any = None
        self._next_id = 0
        #: Correlation ID of the most recent request — quote it to
        #: ``repro trace --events`` to pull that request's event-log
        #: records and spans out of the daemon's JSONL log.
        self.last_request_id: str | None = None

    # ------------------------------------------------------------------
    # Connection lifecycle
    # ------------------------------------------------------------------

    def connect(self) -> "Ms2Client":
        if self._sock is not None:
            return self
        if self.address[0] == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self.address[1])
        else:
            sock = socket.create_connection(
                (self.address[1], self.address[2]), timeout=self.timeout
            )
        self._sock = sock
        self._reader = sock.makefile("rb")
        return self

    def close(self) -> None:
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:
                pass
            self._reader = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "Ms2Client":
        return self.connect()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def wait_ready(self, timeout: float = 10.0) -> None:
        """Block until the daemon answers ``ping`` (daemon startup is
        asynchronous: the socket may not exist yet)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                self.connect()
                self.ping()
                return
            except (OSError, Ms2ServerError):
                self.close()
                if time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"no server at {self.address} within "
                        f"{timeout:.1f}s"
                    ) from None
                time.sleep(0.05)

    # ------------------------------------------------------------------
    # Raw protocol
    # ------------------------------------------------------------------

    def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Send one frame (an ``id`` and a ``request_id`` are
        assigned when missing) and return the raw response frame.
        The server echoes the correlation ID in every response and
        stamps it onto event-log records and trace spans."""
        self.connect()
        assert self._sock is not None
        if "id" not in payload:
            self._next_id += 1
            payload = {"id": self._next_id, **payload}
        if "request_id" not in payload:
            payload = {**payload, "request_id": new_request_id()}
        self.last_request_id = payload["request_id"]
        self._sock.sendall(json.dumps(payload).encode("utf-8") + b"\n")
        line = self._reader.readline()
        if not line:
            self.close()
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    def call(self, op: str, **fields: Any) -> dict[str, Any]:
        """One operation: send, check, unwrap ``result`` (raising
        :class:`Ms2ServerError` on error frames)."""
        response = self.request({"op": op, **fields})
        if response.get("ok"):
            return response.get("result", {})
        error = response.get("error") or {}
        raise Ms2ServerError(
            error.get("code", "internal"),
            error.get("message", "unknown server error"),
            error,
        )

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def ping(self) -> dict[str, Any]:
        return self.call("ping")

    def stats(self) -> dict[str, Any]:
        return self.call("stats")

    def shutdown(self) -> dict[str, Any]:
        """Ask the daemon to drain and exit (the response arrives
        before the drain starts)."""
        result = self.call("shutdown")
        self.close()
        return result

    def expand(
        self,
        source: str,
        filename: str = "<client>",
        *,
        options: Ms2Options | None = None,
        packages: Sequence[str] | None = None,
        package_sources: Sequence[tuple[str, str]] | None = None,
    ) -> ExpandResult:
        """Expand ``source`` on a warm server worker.  ``options``
        default to the *server's* options; naming ``packages`` /
        ``package_sources`` overrides the server preamble entirely."""
        result = self.call(
            "expand",
            **self._work_fields(
                source, filename, options, packages, package_sources
            ),
        )
        return ExpandResult.from_json(result)

    def trace(
        self,
        source: str,
        filename: str = "<client>",
        *,
        options: Ms2Options | None = None,
        packages: Sequence[str] | None = None,
        package_sources: Sequence[tuple[str, str]] | None = None,
    ) -> tuple[ExpandResult, str]:
        """Like :meth:`expand` with tracing forced on; returns the
        result plus the rendered span tree."""
        result = self.call(
            "trace",
            **self._work_fields(
                source, filename, options, packages, package_sources
            ),
        )
        return ExpandResult.from_json(result), result.get("tree", "")

    def expand_file(
        self,
        path: str | Path,
        *,
        options: Ms2Options | None = None,
        packages: Sequence[str] | None = None,
        package_sources: Sequence[tuple[str, str]] | None = None,
    ) -> dict[str, Any]:
        """Build one file *on the server's filesystem* through its
        persistent snapshot cache; returns the
        :meth:`~repro.driver.report.FileResult.to_json` payload."""
        fields: dict[str, Any] = {"path": str(path)}
        if options is not None:
            fields["options"] = options.to_json()
        self._preamble_fields(fields, packages, package_sources)
        return self.call("expand_file", **fields)

    # ------------------------------------------------------------------

    @staticmethod
    def _preamble_fields(
        fields: dict[str, Any],
        packages: Sequence[str] | None,
        package_sources: Sequence[tuple[str, str]] | None,
    ) -> None:
        if packages is not None:
            fields["packages"] = list(packages)
        if package_sources is not None:
            fields["package_sources"] = [
                [str(name), source] for name, source in package_sources
            ]
            fields.setdefault("packages", [])

    def _work_fields(
        self,
        source: str,
        filename: str,
        options: Ms2Options | None,
        packages: Sequence[str] | None,
        package_sources: Sequence[tuple[str, str]] | None,
    ) -> dict[str, Any]:
        fields: dict[str, Any] = {
            "source": source, "filename": filename
        }
        if options is not None:
            fields["options"] = options.to_json()
        self._preamble_fields(fields, packages, package_sources)
        return fields
