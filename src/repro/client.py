"""Synchronous client for the ``repro serve`` expansion daemon.

:class:`Ms2Client` speaks the newline-delimited JSON protocol of
:mod:`repro.server` over a Unix socket or TCP connection — or the
same frames over the HTTP/JSON gateway (``http://host:port``
addresses, ``POST /v1/expand``) — and converts
wire payloads back into the library's own objects
(:class:`~repro.options.ExpandResult`, raising
:class:`Ms2ServerError` — an :class:`~repro.errors.Ms2Error` — for
error frames), so switching ``MacroProcessor.expand`` calls to a warm
daemon is a one-line change::

    from repro.client import Ms2Client

    with Ms2Client("/tmp/ms2.sock") as client:
        result = client.expand("int x = quad(1);", "prog.c")

``repro expand --server ADDR`` routes the ordinary CLI through this
client transparently.
"""

from __future__ import annotations

import json
import os
import random
import socket
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Sequence

from repro.errors import Ms2Error
from repro.options import ExpandResult, Ms2Options
from repro.telemetry import new_request_id

__all__ = [
    "Ms2Client",
    "Ms2ServerError",
    "RetryPolicy",
    "client_counters",
    "parse_address",
    "parse_server_address",
]

#: Default per-request socket timeout, seconds.
DEFAULT_TIMEOUT_S = 60.0

#: Protocol error codes that signal a *transient* server condition —
#: the request was not the problem, trying again may succeed.
RETRYABLE_CODES = frozenset({"busy", "shutting_down", "unavailable"})

# Process-wide resilience counters (every client instance sums into
# these; the server's telemetry collector mirrors them into the
# ``ms2_client_retries_total`` / ``ms2_client_fallbacks_total``
# series, and ``repro expand --server`` reports them on fallback).
_COUNTER_LOCK = threading.Lock()
RETRIES_TOTAL = 0
FALLBACKS_TOTAL = 0


def _count_retry(n: int = 1) -> None:
    global RETRIES_TOTAL
    with _COUNTER_LOCK:
        RETRIES_TOTAL += n


def count_fallback() -> None:
    """Record one degradation to local in-process expansion."""
    global FALLBACKS_TOTAL
    with _COUNTER_LOCK:
        FALLBACKS_TOTAL += 1


def client_counters() -> dict[str, int]:
    """Process-wide client resilience counters (telemetry mirror)."""
    with _COUNTER_LOCK:
        return {
            "retries": RETRIES_TOTAL,
            "fallbacks": FALLBACKS_TOTAL,
        }


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Exponential backoff with full jitter for transient failures.

    Retries connection-level errors (refused, reset, server closed
    the connection mid-request) and :data:`RETRYABLE_CODES` error
    frames (``busy``, ``shutting_down``, ``unavailable``).  Safe by
    construction: every protocol op is idempotent — expansion is a
    pure function of the request, so replaying a request whose
    response was lost cannot change the outcome.

    Backoff sleeps ``random.uniform(0, min(max_delay_s, base_delay_s
    * 2**attempt))`` (AWS-style *full jitter*, which de-synchronizes
    client herds better than equal jitter).  A ``retry_after_ms``
    hint in a busy frame overrides the computed ceiling for that
    attempt.  ``deadline_s`` bounds the *total* time spent including
    sleeps; ``max_attempts`` bounds the number of tries.
    """

    max_attempts: int = 5
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    deadline_s: float = 30.0

    def retryable_error(self, exc: BaseException) -> bool:
        """Whether ``exc`` is worth a retry under this policy."""
        if isinstance(exc, Ms2ServerError):
            return exc.code in RETRYABLE_CODES
        return isinstance(exc, (ConnectionError, socket.timeout, OSError))

    def backoff_s(
        self, attempt: int, retry_after_ms: float | None = None
    ) -> float:
        """Sleep before retry number ``attempt`` (1-based)."""
        ceiling = min(
            self.max_delay_s, self.base_delay_s * (2 ** (attempt - 1))
        )
        if retry_after_ms is not None:
            ceiling = max(ceiling, retry_after_ms / 1000.0)
            ceiling = min(ceiling, self.max_delay_s)
        return random.uniform(0.0, ceiling)


class Ms2ServerError(Ms2Error):
    """An error frame from the daemon, as a raisable
    :class:`~repro.errors.Ms2Error` (so ``repro expand --server``
    reports failures through the same path as local expansion).

    Attributes
    ----------
    code:
        The protocol error code (``busy``, ``bad_request``,
        ``expansion_error``, ...).
    payload:
        The complete ``error`` object from the frame (may carry a
        serialized diagnostic for ``expansion_error``).
    """

    def __init__(self, code: str, message: str, payload: dict[str, Any]):
        super().__init__(message)
        self.code = code
        self.payload = payload

    def __str__(self) -> str:
        rendered = (self.payload.get("diagnostic") or {}).get("rendered")
        if rendered:
            return rendered
        return f"[{self.code}] {self.message}"


def parse_server_address(spec: str | Path) -> tuple[Any, ...]:
    """``("unix", path)``, ``("tcp", host, port)`` or
    ``("http", host, port)`` from an address spelling.

    The one shared parser for every place a daemon address is typed —
    ``Ms2Client``, ``repro expand --server``, ``repro top``.  URL
    forms are explicit about the transport::

        unix:///run/ms2.sock     Unix socket, NDJSON protocol
        tcp://build-host:7777    TCP, NDJSON protocol
        http://build-host:9100   the HTTP/JSON gateway (POST /v1/expand)

    The historical bare forms still parse: a filesystem path
    (anything containing a separator, or any existing path),
    ``HOST:PORT``, ``:PORT``, or a bare port number.
    """
    text = str(spec)
    if text.startswith("unix://"):
        path = text[len("unix://"):]
        if not path:
            raise ValueError(f"unix:// address missing a path: {spec!r}")
        return ("unix", path)
    for scheme, default_port in (("tcp", None), ("http", 80)):
        prefix = scheme + "://"
        if not text.startswith(prefix):
            continue
        rest = text[len(prefix):].split("/", 1)[0]
        host, sep, port = rest.rpartition(":")
        if sep and port.isdigit():
            return (scheme, host or "127.0.0.1", int(port))
        if rest and ":" not in rest and default_port is not None:
            return (scheme, rest, default_port)
        raise ValueError(
            f"bad {scheme}:// address {spec!r}: expected "
            f"{scheme}://HOST:PORT"
        )
    if text.isdigit():
        return ("tcp", "127.0.0.1", int(text))
    host, sep, port = text.rpartition(":")
    if sep and port.isdigit() and os.sep not in text:
        return ("tcp", host or "127.0.0.1", int(port))
    return ("unix", text)


#: Historical name of :func:`parse_server_address`.
parse_address = parse_server_address


class Ms2Client:
    """One connection to a running daemon.  Not thread-safe: requests
    on one client are strictly sequential (open one client per thread
    — the daemon multiplexes connections)."""

    def __init__(
        self,
        address: str | Path,
        *,
        timeout: float = DEFAULT_TIMEOUT_S,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.address = parse_address(address)
        self.timeout = timeout
        #: Retry/backoff policy for transient failures, or None for
        #: the historical fail-fast behavior (one attempt, caller
        #: handles ``busy``).
        self.retry = retry
        self._sock: socket.socket | None = None
        self._reader: Any = None
        self._next_id = 0
        #: Correlation ID of the most recent request — quote it to
        #: ``repro trace --events`` to pull that request's event-log
        #: records and spans out of the daemon's JSONL log.
        self.last_request_id: str | None = None
        #: Transient failures this client retried past (also summed
        #: process-wide into :func:`client_counters`).
        self.retries = 0

    # ------------------------------------------------------------------
    # Connection lifecycle
    # ------------------------------------------------------------------

    def connect(self) -> "Ms2Client":
        if self.address[0] == "http":
            # The HTTP gateway is connectionless from the client's
            # point of view: each request opens its own connection
            # (stdlib http.client), so there is nothing to hold open.
            return self
        if self._sock is not None:
            return self
        if self.address[0] == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self.address[1])
        else:
            sock = socket.create_connection(
                (self.address[1], self.address[2]), timeout=self.timeout
            )
        self._sock = sock
        self._reader = sock.makefile("rb")
        return self

    def close(self) -> None:
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:
                pass
            self._reader = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "Ms2Client":
        return self.connect()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def wait_ready(self, timeout: float = 10.0) -> None:
        """Block until the daemon answers ``ping`` (daemon startup is
        asynchronous: the socket may not exist yet).

        Polls with exponential backoff — 50 ms doubling to a 1 s cap
        — rather than a fixed interval, so a slow-starting daemon is
        not hammered, and the final sleep is clipped to the time
        remaining so the overall ``timeout`` is honoured exactly.
        """
        deadline = time.monotonic() + timeout
        delay = 0.05
        while True:
            try:
                self.connect()
                self.ping()
                return
            except (OSError, Ms2ServerError):
                self.close()
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"no server at {self.address} within "
                        f"{timeout:.1f}s"
                    ) from None
                time.sleep(min(delay, remaining))
                delay = min(delay * 2, 1.0)

    # ------------------------------------------------------------------
    # Raw protocol
    # ------------------------------------------------------------------

    def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Send one frame (an ``id`` and a ``request_id`` are
        assigned when missing) and return the raw response frame.
        The server echoes the correlation ID in every response and
        stamps it onto event-log records and trace spans."""
        if "id" not in payload:
            self._next_id += 1
            payload = {"id": self._next_id, **payload}
        if "request_id" not in payload:
            payload = {**payload, "request_id": new_request_id()}
        self.last_request_id = payload["request_id"]
        if self.address[0] == "http":
            return self._http_request(payload)
        self.connect()
        assert self._sock is not None
        self._sock.sendall(json.dumps(payload).encode("utf-8") + b"\n")
        line = self._reader.readline()
        if not line:
            self.close()
            raise ConnectionError("server closed the connection")
        try:
            return json.loads(line)
        except ValueError:
            # A garbled frame (truncated write, corrupted transport)
            # leaves the stream unsynchronized — treat it exactly
            # like a dropped connection so a RetryPolicy can recover.
            self.close()
            raise ConnectionError(
                "undecodable response frame from server"
            ) from None

    def _http_request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """One protocol frame over the HTTP/JSON gateway:
        ``POST /v1/expand`` with the frame as the body, the response
        body being the response frame.  Transport-level failures
        (connect refused, reset, truncated/undecodable body) surface
        as :class:`ConnectionError` so a :class:`RetryPolicy` treats
        the gateway exactly like the NDJSON transports."""
        import http.client

        conn = http.client.HTTPConnection(
            self.address[1], self.address[2], timeout=self.timeout
        )
        try:
            try:
                conn.request(
                    "POST",
                    "/v1/expand",
                    body=json.dumps(payload).encode("utf-8"),
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                body = response.read()
            except (OSError, http.client.HTTPException) as exc:
                raise ConnectionError(
                    f"gateway request failed: {exc}"
                ) from exc
        finally:
            conn.close()
        try:
            return json.loads(body)
        except ValueError:
            raise ConnectionError(
                "undecodable response body from gateway "
                f"(HTTP {response.status})"
            ) from None

    def call(self, op: str, **fields: Any) -> dict[str, Any]:
        """One operation: send, check, unwrap ``result`` (raising
        :class:`Ms2ServerError` on error frames).

        With a :class:`RetryPolicy` attached, transient failures —
        connection errors and ``busy``/``shutting_down``/
        ``unavailable`` frames — are retried with jittered
        exponential backoff, honouring a ``retry_after_ms`` hint when
        the server provides one.  ``shutdown`` is never retried (a
        dropped connection there means the drain already started).
        """
        policy = self.retry if op != "shutdown" else None
        deadline = (
            time.monotonic() + policy.deadline_s
            if policy is not None
            else None
        )
        attempt = 0
        while True:
            attempt += 1
            try:
                return self._call_once(op, fields)
            except (Ms2ServerError, OSError) as exc:
                if (
                    policy is None
                    or not policy.retryable_error(exc)
                    or attempt >= policy.max_attempts
                ):
                    raise
                self.close()  # next attempt reconnects cleanly
                hint = None
                if isinstance(exc, Ms2ServerError):
                    hint = exc.payload.get("retry_after_ms")
                sleep_s = policy.backoff_s(attempt, hint)
                assert deadline is not None
                if time.monotonic() + sleep_s >= deadline:
                    raise
                self.retries += 1
                _count_retry()
                time.sleep(sleep_s)

    def _call_once(self, op: str, fields: dict[str, Any]) -> dict[str, Any]:
        response = self.request({"op": op, **fields})
        if response.get("ok"):
            return response.get("result", {})
        error = response.get("error") or {}
        raise Ms2ServerError(
            error.get("code", "internal"),
            error.get("message", "unknown server error"),
            error,
        )

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def ping(self) -> dict[str, Any]:
        return self.call("ping")

    def stats(self) -> dict[str, Any]:
        return self.call("stats")

    def telemetry(self) -> dict[str, Any]:
        """The server's raw metrics snapshot (the ``telemetry`` op) —
        mergeable across shards with
        :func:`repro.telemetry.merge_snapshots`."""
        return self.call("telemetry").get("snapshot", {})

    def shutdown(self) -> dict[str, Any]:
        """Ask the daemon to drain and exit (the response arrives
        before the drain starts)."""
        result = self.call("shutdown")
        self.close()
        return result

    def expand(
        self,
        source: str,
        filename: str = "<client>",
        *,
        options: Ms2Options | None = None,
        packages: Sequence[str] | None = None,
        package_sources: Sequence[tuple[str, str]] | None = None,
    ) -> ExpandResult:
        """Expand ``source`` on a warm server worker.  ``options``
        default to the *server's* options; naming ``packages`` /
        ``package_sources`` overrides the server preamble entirely."""
        result = self.call(
            "expand",
            **self._work_fields(
                source, filename, options, packages, package_sources
            ),
        )
        return ExpandResult.from_json(result)

    def trace(
        self,
        source: str,
        filename: str = "<client>",
        *,
        options: Ms2Options | None = None,
        packages: Sequence[str] | None = None,
        package_sources: Sequence[tuple[str, str]] | None = None,
    ) -> tuple[ExpandResult, str]:
        """Like :meth:`expand` with tracing forced on; returns the
        result plus the rendered span tree."""
        result = self.call(
            "trace",
            **self._work_fields(
                source, filename, options, packages, package_sources
            ),
        )
        return ExpandResult.from_json(result), result.get("tree", "")

    def expand_file(
        self,
        path: str | Path,
        *,
        options: Ms2Options | None = None,
        packages: Sequence[str] | None = None,
        package_sources: Sequence[tuple[str, str]] | None = None,
    ) -> dict[str, Any]:
        """Build one file *on the server's filesystem* through its
        persistent snapshot cache; returns the
        :meth:`~repro.driver.report.FileResult.to_json` payload."""
        fields: dict[str, Any] = {"path": str(path)}
        if options is not None:
            fields["options"] = options.to_json()
        self._preamble_fields(fields, packages, package_sources)
        return self.call("expand_file", **fields)

    # ------------------------------------------------------------------
    # Remote cache (the daemon as a fleet cache authority)
    # ------------------------------------------------------------------

    def cache_get(self, key: str) -> dict[str, Any]:
        """One snapshot lookup at the cache authority: ``{"found":
        bool, "snapshot": dict | None, "digest": str | None}``.  The
        digest covers the snapshot's canonical JSON body; callers
        (see :class:`repro.driver.cachebackend.RemoteCacheBackend`)
        verify it end-to-end."""
        return self.call("cache_get", key=str(key))

    def cache_put(
        self, key: str, snapshot: dict[str, Any], digest: str
    ) -> dict[str, Any]:
        """Publish one snapshot to the cache authority; returns
        ``{"stored": bool}``.  ``digest`` must be
        :func:`repro.driver.cachebackend.snapshot_digest` of the
        snapshot — the server rejects mismatches as ``bad_request``
        so a payload corrupted in transit can never land."""
        return self.call(
            "cache_put", key=str(key), snapshot=snapshot, digest=digest
        )

    def cache_stats(self) -> dict[str, Any]:
        """The authority's own cache counters (dir, hits, misses,
        latency totals)."""
        return self.call("cache_stats")

    # ------------------------------------------------------------------

    @staticmethod
    def _preamble_fields(
        fields: dict[str, Any],
        packages: Sequence[str] | None,
        package_sources: Sequence[tuple[str, str]] | None,
    ) -> None:
        if packages is not None:
            fields["packages"] = list(packages)
        if package_sources is not None:
            fields["package_sources"] = [
                [str(name), source] for name, source in package_sources
            ]
            fields.setdefault("packages", [])

    def _work_fields(
        self,
        source: str,
        filename: str,
        options: Ms2Options | None,
        packages: Sequence[str] | None,
        package_sources: Sequence[tuple[str, str]] | None,
    ) -> dict[str, Any]:
        fields: dict[str, Any] = {
            "source": source, "filename": filename
        }
        if options is not None:
            fields["options"] = options.to_json()
        self._preamble_fields(fields, packages, package_sources)
        return fields
