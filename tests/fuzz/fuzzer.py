"""Seeded fault-injection for the macro pipeline.

The corpus is the example programs shipped in ``examples/`` (each
exposes a ``PROGRAM`` string and registers the macro packages it
needs).  A :class:`Mutator` applies token-level faults — deletion,
adjacent swap, duplication, truncation, punctuation injection — under
a seeded :class:`random.Random`, so every run is reproducible from
``(seed, index)`` alone.

The crash-safety contract being fuzzed: for *any* mutant, the
pipeline either produces output or raises an
:class:`~repro.errors.Ms2Error` subclass (fail-fast mode), and in
recovery mode it always returns ``(output, diagnostics)`` — no raw
Python exception may ever escape.
"""

from __future__ import annotations

import importlib.util
import random
import re
from pathlib import Path

from repro import MacroProcessor, Ms2Options
from repro.errors import Ms2Error

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

#: Splits source into fuzzable units: identifiers/numbers, whitespace
#: runs, and single punctuation characters.
_TOKEN_RE = re.compile(r"\w+|\s+|[^\w\s]")


def load_corpus() -> list[tuple[str, str, list]]:
    """``(name, program, loaders)`` per example script.

    ``loaders`` mixes package registrars and macro source strings
    (``TRACE_SOURCES``), mirroring what ``repro trace`` preloads for
    the same example.
    """
    corpus = []
    for path in sorted(EXAMPLES_DIR.glob("*.py")):
        spec = importlib.util.spec_from_file_location(
            f"fuzz_corpus_{path.stem}", path
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        program = getattr(module, "PROGRAM", None) or getattr(
            module, "TRACE_PROGRAM", None
        )
        if not program:
            continue
        loaders = [
            value
            for value in vars(module).values()
            if getattr(value, "__name__", "").startswith("repro.packages.")
            and hasattr(value, "register")
        ]
        loaders.extend(getattr(module, "TRACE_SOURCES", []))
        corpus.append((path.stem, program, loaders))
    return corpus


class Mutator:
    """Applies one seeded token-level fault per call."""

    OPS = ("delete", "swap", "duplicate", "truncate", "punct", "splice")

    def __init__(self, seed: int) -> None:
        self.rng = random.Random(seed)

    def mutate(self, source: str) -> tuple[str, str]:
        """Returns ``(mutant, op_name)``."""
        tokens = _TOKEN_RE.findall(source)
        op = self.rng.choice(self.OPS)
        if len(tokens) < 4:
            op = "truncate"
        rng = self.rng
        if op == "delete":
            del tokens[rng.randrange(len(tokens))]
        elif op == "swap":
            i = rng.randrange(len(tokens) - 1)
            tokens[i], tokens[i + 1] = tokens[i + 1], tokens[i]
        elif op == "duplicate":
            i = rng.randrange(len(tokens))
            tokens.insert(i, tokens[i])
        elif op == "truncate":
            return source[: rng.randrange(max(1, len(source)))], op
        elif op == "punct":
            i = rng.randrange(len(tokens))
            tokens.insert(i, rng.choice(list("{}();,$`|@#:=+*")))
        elif op == "splice":
            # Move a random chunk somewhere else (gross structural damage).
            n = len(tokens)
            a, b = sorted(rng.randrange(n) for _ in range(2))
            chunk = tokens[a:b + 1]
            del tokens[a:b + 1]
            i = rng.randrange(len(tokens) + 1)
            tokens[i:i] = chunk
        return "".join(tokens), op


class SnapshotMutator:
    """Applies one seeded byte-level fault to a persistent-cache
    snapshot blob.

    The contract being fuzzed mirrors the token-level harness, one
    layer down: for *any* damaged snapshot, a rebuild must fall back
    to re-expansion — same outputs as a clean build, no exception,
    never silently-wrong cached text.
    """

    OPS = ("truncate", "bitflip", "header", "version", "empty", "garbage")

    def __init__(self, seed: int) -> None:
        self.rng = random.Random(seed)

    def mutate(self, blob: bytes) -> tuple[bytes, str]:
        """Returns ``(mutant, op_name)``."""
        rng = self.rng
        op = rng.choice(self.OPS)
        if len(blob) < 6:
            op = "garbage"
        if op == "truncate":
            return blob[: rng.randrange(len(blob))], op
        if op == "bitflip":
            i = rng.randrange(len(blob))
            damaged = bytearray(blob)
            damaged[i] ^= 1 << rng.randrange(8)
            return bytes(damaged), op
        if op == "header":
            return b"XXXX" + blob[4:], op
        if op == "version":
            return blob[:4] + bytes([blob[4] ^ 0xFF]) + blob[5:], op
        if op == "empty":
            return b"", op
        return bytes(
            rng.randrange(256) for _ in range(rng.randrange(1, 64))
        ), "garbage"


def make_processor(
    loaders: list, options: Ms2Options | None = None
) -> MacroProcessor:
    """A fresh processor with the example's macros preloaded."""
    mp = MacroProcessor(options=options)
    for item in loaders:
        if isinstance(item, str):
            mp.load(item)
        else:
            item.register(mp)
    return mp


def run_mutant(
    program: str, loaders: list, *, recover: bool
) -> tuple[bool, BaseException | None]:
    """Expand one mutant; returns ``(crash_safe, escaped_exception)``.

    ``crash_safe`` is False exactly when a non-``Ms2Error`` exception
    escaped the pipeline — the condition the harness exists to catch.
    In recovery mode *any* raise is an escape.
    """
    try:
        mp = make_processor(
            loaders, Ms2Options(recover=True) if recover else None
        )
        mp.expand_to_c(program, "<fuzz>")
    except Ms2Error as exc:
        if recover:
            return False, exc
        return True, None
    except BaseException as exc:  # noqa: BLE001 - the point of the harness
        return False, exc
    return True, None
