"""Crash-safety: no mutant may escape the ``Ms2Error`` hierarchy.

Runs a seeded sweep of mutated example programs through the pipeline
in both fail-fast and recovery modes.  Knobs (environment variables):

- ``FUZZ_SEED``     — base RNG seed (default ``0xC0FFEE``)
- ``FUZZ_MUTANTS``  — mutants per mode (default ``200``)
- ``FUZZ_ARTIFACT_DIR`` — if set, failing mutants are written there
  as ``escape-<mode>-<index>.c`` plus a ``.txt`` with the traceback
  (CI uploads these as artifacts).
"""

import os
import pickle
import random
import traceback
from pathlib import Path

import pytest

from repro import MacroProcessor
from repro.macros.cache import _HEADER

from .fuzzer import Mutator, load_corpus, make_processor, run_mutant

FUZZ_SEED = int(os.environ.get("FUZZ_SEED", str(0xC0FFEE)), 0)
FUZZ_MUTANTS = int(os.environ.get("FUZZ_MUTANTS", "200"))
ARTIFACT_DIR = os.environ.get("FUZZ_ARTIFACT_DIR", "")

CORPUS = load_corpus()


def _dump_artifact(mode: str, index: int, mutant: str, exc) -> None:
    if not ARTIFACT_DIR:
        return
    out = Path(ARTIFACT_DIR)
    out.mkdir(parents=True, exist_ok=True)
    (out / f"escape-{mode}-{index}.c").write_text(mutant)
    (out / f"escape-{mode}-{index}.txt").write_text(
        "".join(traceback.format_exception(exc))
    )


def _sweep(mode: str) -> list[str]:
    """Run FUZZ_MUTANTS mutants; return failure descriptions."""
    recover = mode == "recover"
    mutator = Mutator(FUZZ_SEED if recover else FUZZ_SEED ^ 0x5EED)
    failures = []
    for i in range(FUZZ_MUTANTS):
        name, program, registrars = CORPUS[i % len(CORPUS)]
        mutant, op = mutator.mutate(program)
        safe, exc = run_mutant(mutant, registrars, recover=recover)
        if not safe:
            _dump_artifact(mode, i, mutant, exc)
            failures.append(
                f"mutant {i} ({name}, {op}, {mode}): "
                f"{type(exc).__name__}: {exc}"
            )
    return failures


def test_corpus_is_nonempty():
    assert len(CORPUS) >= 5
    for name, program, _ in CORPUS:
        assert program.strip(), name


def test_corpus_expands_cleanly_unmutated():
    # Baseline sanity: the unmutated corpus must not trip the harness.
    for name, program, registrars in CORPUS:
        safe, exc = run_mutant(program, registrars, recover=False)
        assert safe, f"{name}: {exc!r}"


@pytest.mark.parametrize("mode", ["failfast", "recover"])
def test_seeded_mutants_never_escape(mode):
    # ISSUE acceptance: 200 seeded mutants, zero non-Ms2Error escapes
    # in fail-fast mode; zero raises of any kind in recover mode.
    failures = _sweep(mode)
    assert not failures, "\n".join(failures[:20])


def test_mutations_are_reproducible():
    _, program, _ = CORPUS[0]
    a = Mutator(1234).mutate(program)
    b = Mutator(1234).mutate(program)
    assert a == b


class TestCacheCorruptionFuzz:
    """Random byte-flips in cache snapshots must degrade to
    re-expansion (counted in stats), never to a crash or wrong
    output escaping as a raw unpickling error."""

    SRC = (
        "syntax stmt Twice {| $$stmt::body |} "
        "{ return(`{$body; $body;}); }\n"
    )

    def _primed(self):
        mp = MacroProcessor()
        mp.load(self.SRC)
        expected = mp.expand_to_c("void f(void) { Twice {a();} }")
        assert mp.cache._entries
        return mp, expected

    def test_random_byte_flips(self):
        rng = random.Random(FUZZ_SEED)
        for trial in range(40):
            mp, expected = self._primed()
            key, blob = next(iter(mp.cache._entries.items()))
            blob = bytearray(blob)
            # Flip 1-4 random bytes anywhere, header included.
            for _ in range(rng.randint(1, 4)):
                pos = rng.randrange(len(blob))
                blob[pos] ^= 1 << rng.randrange(8)
            mp.cache._entries[key] = bytes(blob)
            out = mp.expand_to_c("void f(void) { Twice {a();} }")
            assert out == expected, f"trial {trial}: wrong output"

    def test_random_truncation(self):
        rng = random.Random(FUZZ_SEED ^ 1)
        for trial in range(20):
            mp, expected = self._primed()
            key, blob = next(iter(mp.cache._entries.items()))
            cut = rng.randrange(len(blob))
            mp.cache._entries[key] = blob[:cut]
            out = mp.expand_to_c("void f(void) { Twice {a();} }")
            assert out == expected, f"trial {trial}: wrong output"

    def test_garbage_pickle_payload(self):
        # A well-formed header with a pickle of the wrong shape must
        # also fall back (replay_result blows up past unpickling).
        mp, expected = self._primed()
        key = next(iter(mp.cache._entries))
        mp.cache._entries[key] = _HEADER + pickle.dumps({"not": "a node"})
        out = mp.expand_to_c("void f(void) { Twice {a();} }")
        assert out == expected
        assert mp.stats.cache_replay_failures >= 1
