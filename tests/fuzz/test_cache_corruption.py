"""Persistent-cache corruption fuzzing.

Counterpart of :mod:`tests.fuzz.test_crash_safety`, one layer down:
instead of mutating *source text* fed to the pipeline, mutate the
*snapshot files* the batch driver persists, then rebuild.  The
contract for every mutant:

- the rebuild never raises — damaged snapshots read as misses;
- outputs are byte-identical to a clean cold build (a corrupted
  snapshot may cost a re-expansion, never wrong text);
- detectably-damaged snapshots bump the ``failures`` counter and are
  evicted from disk.

Seeded like the source-level harness; reproduce one case with
``(FUZZ_SEED, index)``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.driver import BuildSession

from tests.driver.corpus import SHARED_MACROS, synthetic_sources
from tests.fuzz.fuzzer import SnapshotMutator

FUZZ_SEED = int(os.environ.get("FUZZ_SEED", "20260806"))
FUZZ_CACHE_MUTANTS = int(os.environ.get("FUZZ_CACHE_MUTANTS", "40"))

SOURCES = synthetic_sources(3)


def make_session(cache_root: Path) -> BuildSession:
    return BuildSession(
        package_sources=[("shared.ms2", SHARED_MACROS)],
        cache=cache_root,
    )


@pytest.fixture(scope="module")
def clean_outputs(tmp_path_factory) -> list[str]:
    """Outputs of a cold, cache-less build — the ground truth."""
    report = BuildSession(
        package_sources=[("shared.ms2", SHARED_MACROS)], cache=None
    ).build_sources(SOURCES)
    assert report.ok
    return [r.output for r in report.results]


def seed_cache(cache_root: Path) -> list[Path]:
    """A fully-populated snapshot cache; returns the snapshot files."""
    session = make_session(cache_root)
    report = session.build_sources(SOURCES)
    assert report.ok
    snapshots = session.cache.entries()
    assert len(snapshots) == len(SOURCES)
    return snapshots


def test_cache_corruption_never_breaks_a_rebuild(
    tmp_path: Path, clean_outputs: list[str]
) -> None:
    cache_root = tmp_path / "cache"
    snapshots = seed_cache(cache_root)
    pristine = {path: path.read_bytes() for path in snapshots}
    mutator = SnapshotMutator(FUZZ_SEED)
    failures: list[str] = []

    for index in range(FUZZ_CACHE_MUTANTS):
        # Restore a fully-populated cache, then damage one snapshot.
        for path, blob in pristine.items():
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_bytes(blob)
        victim = mutator.rng.choice(sorted(pristine))
        mutant, op = mutator.mutate(pristine[victim])
        victim.write_bytes(mutant)

        session = make_session(cache_root)
        try:
            report = session.build_sources(SOURCES)
        except Exception as exc:  # noqa: BLE001 - the point of the harness
            failures.append(
                f"[{index}] {op}: {type(exc).__name__}: {exc}"
            )
            continue
        if not report.ok:
            failures.append(f"[{index}] {op}: report not ok")
        elif [r.output for r in report.results] != clean_outputs:
            failures.append(f"[{index}] {op}: output diverged")
        elif mutant != pristine[victim] and session.cache.failures == 0:
            # Any actual damage must be *detected*, not deserialized
            # into service (hits on the intact snapshots are fine).
            failures.append(f"[{index}] {op}: damage went undetected")

    assert not failures, (
        f"{len(failures)}/{FUZZ_CACHE_MUTANTS} corrupt-cache rebuilds "
        f"misbehaved (seed {FUZZ_SEED}):\n" + "\n".join(failures[:10])
    )


def test_every_mutation_op_is_exercised() -> None:
    mutator = SnapshotMutator(FUZZ_SEED)
    blob = b"MS2C\x01" + bytes(range(64))
    seen = set()
    for _ in range(200):
        _, op = mutator.mutate(blob)
        seen.add(op)
    assert seen == set(SnapshotMutator.OPS)
