"""Seeded crash-safety fuzzing of the expansion pipeline."""
