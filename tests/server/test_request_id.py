"""Request-ID correlation: every response frame echoes the ID, spans
and event-log records carry it, the client mints one when absent."""

from __future__ import annotations

import json
import re
import threading

import pytest

from repro.client import Ms2ServerError

from .conftest import doubler_program

HEX16 = re.compile(r"^[0-9a-f]{16}$")

PROGRAM = (
    "syntax stmt Twice {| $$stmt::body |} "
    "{ return(`{$body; $body;}); }\n"
    "void f(void) { Twice { a(); } }\n"
)


def test_client_supplied_id_echoed_in_ok_frame(server):
    with server.client() as client:
        response = client.request(
            {"op": "ping", "request_id": "feedfacefeedface"}
        )
    assert response["ok"]
    assert response["request_id"] == "feedfacefeedface"


def test_client_mints_id_when_absent(server):
    with server.client() as client:
        response = client.request({"op": "ping"})
        assert HEX16.match(client.last_request_id)
        assert response["request_id"] == client.last_request_id
        # A second request gets a fresh ID.
        first = client.last_request_id
        client.request({"op": "ping"})
        assert client.last_request_id != first


def test_server_mints_id_for_raw_frames(server):
    """A raw-protocol caller that sends no (or an empty) request_id
    still gets a correlatable response."""
    with server.client() as client:
        response = client.request({"op": "ping", "request_id": ""})
    assert HEX16.match(response["request_id"])


def test_error_frames_echo_the_id(server):
    with server.client() as client:
        response = client.request(
            {"op": "no_such_op", "request_id": "aaaaaaaaaaaaaaaa"}
        )
        assert not response["ok"]
        assert response["error"]["code"] == "bad_request"
        assert response["request_id"] == "aaaaaaaaaaaaaaaa"
        # Expansion errors too.
        response = client.request(
            {
                "op": "expand",
                "source": "syntax int Broken {| |} { return(1 }\n",
                "request_id": "bbbbbbbbbbbbbbbb",
            }
        )
        assert not response["ok"]
        assert response["request_id"] == "bbbbbbbbbbbbbbbb"


def test_busy_frames_echo_the_id(server_factory):
    """Backpressure rejections carry the ID like any other response."""
    handle = server_factory(max_inflight=1, queue_limit=0)
    slow = doubler_program(11)
    started = threading.Event()
    outcome: dict = {}

    def occupy() -> None:
        with handle.client() as client:
            started.set()
            outcome["slow"] = client.request(
                {"op": "expand", "source": slow,
                 "request_id": "cccccccccccccccc"}
            )

    worker = threading.Thread(target=occupy)
    worker.start()
    started.wait(10)
    busy = None
    with handle.client() as client:
        for _ in range(200):
            response = client.request(
                {"op": "expand", "source": "int x;\n",
                 "request_id": "dddddddddddddddd"}
            )
            if (
                not response.get("ok")
                and response["error"]["code"] == "busy"
            ):
                busy = response
                break
    worker.join(30)
    assert outcome["slow"]["ok"]
    assert outcome["slow"]["request_id"] == "cccccccccccccccc"
    if busy is not None:  # the slow request may finish first
        assert busy["request_id"] == "dddddddddddddddd"


def test_trace_spans_are_stamped_with_the_request_id(server):
    with server.client() as client:
        result, _tree = client.trace(PROGRAM, "prog.c")
        rid = client.last_request_id
    assert result.spans, "traced result must carry spans"

    def walk(spans):
        for span in spans:
            yield span
            yield from walk(span.children)

    for span in walk(result.spans):
        assert span.request_id == rid


def test_event_log_correlates_one_request_end_to_end(
    server_factory, tmp_path
):
    log_path = tmp_path / "events.jsonl"
    handle = server_factory(event_log=log_path)
    with handle.client() as client:
        client.ping()
        _result, _tree = client.trace(PROGRAM, "prog.c")
        rid = client.last_request_id
    handle.stop()  # drain closes (and flushes) the event log

    records = [
        json.loads(line)
        for line in log_path.read_text().splitlines()
    ]
    mine = [r for r in records if r.get("request_id") == rid]
    events = [r["event"] for r in mine]
    assert events[0] == "request"
    assert "response" in events
    assert "span" in events
    request = mine[0]
    assert request["op"] == "trace"
    response = next(r for r in mine if r["event"] == "response")
    assert response["status"] == "ok"
    assert response["ms"] >= 0
    spans = [r for r in mine if r["event"] == "span"]
    assert {s["macro"] for s in spans} == {"Twice"}
    # Other requests' records never borrow this ID.
    other = [
        r for r in records
        if r["event"] in ("request", "response")
        and r.get("request_id") != rid
    ]
    assert other, "the ping must be logged under its own ID"


def test_expand_helper_raises_but_still_tracks_id(server):
    with server.client() as client:
        with pytest.raises(Ms2ServerError):
            client.expand("syntax int B {| |} { return(1 }\n")
        assert HEX16.match(client.last_request_id)
