"""The daemon as fleet cache authority: ``cache_get`` /
``cache_put`` / ``cache_stats`` over the real NDJSON socket, and the
two-machine workflow they exist for — a build on one machine warming
a build on another through a shared daemon."""

from __future__ import annotations

import http.client

import pytest

from repro.client import Ms2ServerError
from repro.driver import BuildSession, CacheConfig
from repro.driver.cachebackend import snapshot_digest

from tests.driver.corpus import SHARED_MACROS, synthetic_sources

SOURCES = synthetic_sources(4)


def make_snapshot(key: str) -> dict:
    return {"key": key, "output": "int cached_fn(void);\n"}


@pytest.fixture
def authority(server_factory, tmp_path):
    """A daemon whose ``--cache-dir`` doubles as the fleet cache."""
    return server_factory(cache_dir=tmp_path / "authority")


# ---------------------------------------------------------------------------
# Wire ops
# ---------------------------------------------------------------------------


def test_put_get_round_trip(authority):
    key = "a" * 64
    snapshot = make_snapshot(key)
    with authority.client() as client:
        put = client.cache_put(key, snapshot, snapshot_digest(snapshot))
        assert put["stored"] is True
        got = client.cache_get(key)
    assert got["found"] is True
    assert got["snapshot"]["output"] == snapshot["output"]
    assert got["digest"] == snapshot_digest(got["snapshot"])


def test_get_miss(authority):
    with authority.client() as client:
        got = client.cache_get("b" * 64)
    assert got == {"found": False, "snapshot": None, "digest": None}


def test_put_digest_mismatch_is_rejected(authority):
    key = "c" * 64
    with authority.client() as client:
        with pytest.raises(Ms2ServerError) as excinfo:
            client.cache_put(key, make_snapshot(key), "0" * 16)
        assert excinfo.value.code == "bad_request"
        # And nothing was stored.
        assert client.cache_get(key)["found"] is False


def test_put_malformed_snapshot_is_rejected(authority):
    with authority.client() as client:
        for bad in (
            {"output": "x"},                       # missing key
            {"key": "d" * 64, "output": 7},        # non-string output
            "not a dict",
        ):
            with pytest.raises(Ms2ServerError) as excinfo:
                client.cache_put(
                    "d" * 64, bad, snapshot_digest({"key": "d" * 64})
                )
            assert excinfo.value.code == "bad_request"


def test_empty_key_is_rejected(authority):
    with authority.client() as client:
        with pytest.raises(Ms2ServerError) as excinfo:
            client.cache_get("")
        assert excinfo.value.code == "bad_request"


def test_cacheless_daemon_answers_unavailable(server_factory):
    handle = server_factory()  # no cache_dir
    with handle.client() as client:
        with pytest.raises(Ms2ServerError) as excinfo:
            client.cache_get("e" * 64)
        assert excinfo.value.code == "unavailable"
        assert "cache" in str(excinfo.value)


def test_cache_stats_reports_authority_counters(authority, tmp_path):
    key = "f" * 64
    snapshot = make_snapshot(key)
    with authority.client() as client:
        client.cache_put(key, snapshot, snapshot_digest(snapshot))
        client.cache_get(key)
        client.cache_get("0" * 64)  # miss
        stats = client.cache_stats()
    assert stats["dir"] == str(tmp_path / "authority")
    assert stats["hits"] >= 1
    assert stats["misses"] >= 1
    assert stats["stores"] >= 1


def test_corrupt_entry_at_rest_reads_as_miss(authority):
    """A snapshot rotted on the authority's disk is the authority's
    problem: the wire answers a clean miss, never corrupt bytes."""
    key = "9" * 64
    snapshot = make_snapshot(key)
    with authority.client() as client:
        client.cache_put(key, snapshot, snapshot_digest(snapshot))
    path = authority.server.cache_authority.path_for(key)
    path.write_bytes(b"MS2C\x01garbage")
    with authority.client() as client:
        assert client.cache_get(key)["found"] is False


# ---------------------------------------------------------------------------
# The two-machine workflow
# ---------------------------------------------------------------------------


def build_with(cache_config: CacheConfig):
    session = BuildSession(
        package_sources=[("shared.ms2", SHARED_MACROS)],
        cache=cache_config,
    )
    try:
        return session.build_sources(SOURCES), session
    finally:
        session.close()


def test_remote_warm_build_is_byte_identical(authority, tmp_path):
    """Machine A builds cold; machine B (distinct local cache dir,
    same daemon) replays every file from the remote tier with
    byte-identical output."""
    remote = f"unix://{authority.socket_path}"
    cold, _ = build_with(
        CacheConfig(
            local_dir=str(tmp_path / "machine-a"),
            remote=remote,
            write_behind=0,  # publish synchronously: deterministic
        )
    )
    assert cold.ok
    assert cold.files_expanded == len(SOURCES)

    warm, warm_session = build_with(
        CacheConfig(
            local_dir=str(tmp_path / "machine-b"),  # empty!
            remote=remote,
            write_behind=0,
        )
    )
    assert warm.ok
    assert warm.files_from_cache == len(SOURCES)
    assert warm.files_expanded == 0
    assert [r.output for r in warm.results] == [
        r.output for r in cold.results
    ], "remote-warm build must be byte-identical to the cold build"
    # The hits really came over the wire.
    remote_tier = warm.cache["tiers"]["remote"]
    assert remote_tier["hits"] == len(SOURCES)
    # ...and were promoted: machine B now holds local snapshots.
    local_tier = warm.cache["tiers"]["local"]
    assert local_tier["stores"] == len(SOURCES)


def test_write_behind_publishes_before_close(authority, tmp_path):
    """The default (queued) configuration publishes everything by the
    time close() returns — a second machine sees the snapshots."""
    remote = f"unix://{authority.socket_path}"
    cold, _ = build_with(
        CacheConfig(
            local_dir=str(tmp_path / "machine-a"),
            remote=remote,
            # default write_behind: publishes ride the uploader
        )
    )
    assert cold.ok
    wb = cold.cache["write_behind"]
    assert wb["queued"] == len(SOURCES)
    warm, _ = build_with(
        CacheConfig(
            local_dir=str(tmp_path / "machine-b"), remote=remote
        )
    )
    assert warm.files_from_cache == len(SOURCES)


def test_expand_file_sessions_share_the_authority_root(
    authority, tmp_path
):
    """The daemon's own expand_file sessions store into the same root
    the cache ops serve: an expand_file on the daemon warms a remote
    build elsewhere."""
    prog = tmp_path / "prog.c"
    prog.write_text("int main(void) { return 7; }\n")
    with authority.client() as client:
        daemon_result = client.expand_file(str(prog))
    assert daemon_result["status"] == "ok"

    warm = BuildSession(cache=CacheConfig(
        local_dir=str(tmp_path / "fresh-local"),
        remote=f"unix://{authority.socket_path}",
        write_behind=0,
    ))
    try:
        report = warm.build([prog])
    finally:
        warm.close()
    assert report.ok
    assert report.files_from_cache == 1
    assert report.results[0].output == daemon_result["output"]


# ---------------------------------------------------------------------------
# Telemetry
# ---------------------------------------------------------------------------


def test_cache_backend_metrics_exported(server_factory, tmp_path):
    from tests.telemetry.test_registry import assert_valid_exposition

    handle = server_factory(
        cache_dir=tmp_path / "authority", metrics_port=0
    )
    key = "8" * 64
    snapshot = make_snapshot(key)
    with handle.client() as client:
        client.cache_put(key, snapshot, snapshot_digest(snapshot))
        client.cache_get(key)
    conn = http.client.HTTPConnection(
        "127.0.0.1", handle.server.sidecar.bound_port, timeout=10
    )
    try:
        conn.request("GET", "/metrics")
        body = conn.getresponse().read().decode("utf-8")
    finally:
        conn.close()
    assert_valid_exposition(body)
    assert (
        'ms2_cache_backend_ops_total{kind="hits",tier="authority"} 1'
        in body
        or 'ms2_cache_backend_ops_total{tier="authority",kind="hits"} 1'
        in body
    )
    assert "ms2_cache_backend_load_ms_total" in body
    assert "ms2_cache_backend_write_behind_depth" in body


def test_stats_payload_carries_cache_backends(authority):
    key = "7" * 64
    snapshot = make_snapshot(key)
    with authority.client() as client:
        client.cache_put(key, snapshot, snapshot_digest(snapshot))
        stats = client.stats()
    section = stats["cache_backends"]
    assert section["dir"] == str(authority.server.cache_dir)
    assert section["tiers"]["authority"]["stores"] >= 1
    assert "write_behind" in section
