"""The sharded fleet: N processes on one port, supervised restarts,
the HTTP/JSON gateway, and cross-shard observability.

These tests spawn real shard subprocesses (``python -m repro.shard``)
through a :class:`~repro.shard.ShardSupervisor` running in a
background thread, then talk to the fleet exactly like production
clients: raw NDJSON over the shared TCP port, and HTTP frames through
the gateway.
"""

from __future__ import annotations

import asyncio
import json
import signal
import socket
import threading
import time
import urllib.request

import pytest

from repro.client import Ms2Client, RetryPolicy
from repro.options import Ms2Options
from repro.serveconfig import ServeConfig
from repro.shard import (
    ShardSupervisor,
    aggregate_stats,
    shard_for_options_hash,
)

from .conftest import DOUBLER, doubler_program

pytestmark = pytest.mark.skipif(
    not hasattr(socket, "SO_REUSEPORT"),
    reason="sharded serving needs SO_REUSEPORT",
)

#: A generous policy for chaos tests: a restart costs a fresh
#: interpreter spawn, and the kill fault can take *both* shards down
#: in the same window, so the backoff budget must outlast a full
#: fleet respawn even when the jitter rolls low.
CHAOS_RETRY = RetryPolicy(
    max_attempts=30, base_delay_s=0.2, max_delay_s=2.0, deadline_s=120.0
)


class FleetHandle:
    """A shard fleet in a background thread (the supervisor's asyncio
    loop lives there; the shards are real subprocesses)."""

    def __init__(self, config: ServeConfig, options=None) -> None:
        self.config = config
        self.options = options
        self.supervisor: ShardSupervisor | None = None
        self.loop: asyncio.AbstractEventLoop | None = None
        self.error: BaseException | None = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def start(self) -> "FleetHandle":
        self._thread.start()
        assert self._ready.wait(120), "fleet failed to start"
        if self.error is not None:
            raise self.error
        return self

    def _run(self) -> None:
        async def main() -> None:
            try:
                self.supervisor = ShardSupervisor(
                    self.options, self.config
                )
                await self.supervisor.start()
                self.loop = asyncio.get_running_loop()
            except BaseException as exc:  # surface to the test thread
                self.error = exc
                self._ready.set()
                return
            self._ready.set()
            await self.supervisor.serve_until_stopped()

        asyncio.run(main())

    @property
    def address(self) -> str:
        assert self.supervisor is not None
        return f"tcp://{self.supervisor.address}"

    @property
    def gateway_url(self) -> str:
        assert self.supervisor is not None
        assert self.supervisor.gateway is not None
        return f"http://{self.supervisor.gateway.address}"

    def client(self, **kwargs) -> Ms2Client:
        return Ms2Client(self.address, **kwargs)

    def stop(self) -> None:
        if self.loop is not None and self._thread.is_alive():
            assert self.supervisor is not None
            self.loop.call_soon_threadsafe(
                self.supervisor.request_shutdown
            )
        self._thread.join(60)
        assert not self._thread.is_alive(), "fleet failed to stop"


@pytest.fixture
def fleet_factory():
    """``factory(**ServeConfig changes) -> FleetHandle`` (started);
    every fleet is drained at teardown."""
    handles: list[FleetHandle] = []

    def factory(options=None, **changes) -> FleetHandle:
        changes.setdefault("port", 0)
        changes.setdefault("shards", 2)
        changes.setdefault("warm_spares", 1)
        handle = FleetHandle(ServeConfig(**changes), options=options)
        handles.append(handle)
        return handle.start()

    yield factory
    for handle in handles:
        handle.stop()


def _local_expand(source: str, filename: str = "prog.c"):
    from repro.api import expand

    return expand(source, filename)


CORPUS = [
    "int x = 1;\nint y = x + 2;\n",
    DOUBLER + "void f(void) { Twice { a(); } }\n",
    doubler_program(4),
    (
        "syntax exp quad {| ( $$exp::e ) |} "
        "{ return(`((4 * ($e)))); }\n"
        "int q = quad(3 + 4);\n"
    ),
]


# ---------------------------------------------------------------------------
# Parity
# ---------------------------------------------------------------------------


def test_two_shard_byte_parity_with_library(fleet_factory) -> None:
    """Every corpus program expands to the same bytes on every path:
    in-process library, and the fleet's shared TCP port (whichever
    shard the kernel picks)."""
    fleet = fleet_factory()
    with fleet.client() as client:
        for index, source in enumerate(CORPUS):
            filename = f"prog{index}.c"
            local = _local_expand(source, filename)
            # Several connections so the kernel gets chances to land
            # on both shards; every answer must be byte-identical.
            remote = client.expand(source, filename)
            assert remote.output == local.output, filename
            assert remote.ok == local.ok


def test_gateway_vs_ndjson_equivalence(fleet_factory) -> None:
    """The HTTP gateway answers the same frames with the same
    payloads as the NDJSON port."""
    fleet = fleet_factory(metrics_port=0)
    source = CORPUS[1]
    with fleet.client() as tcp_client:
        via_tcp = tcp_client.expand(source, "prog.c")
    with Ms2Client(fleet.gateway_url) as http_client:
        via_http = http_client.expand(source, "prog.c")
        assert http_client.ping()["pong"] is True
    assert via_http.output == via_tcp.output
    assert via_http.output == _local_expand(source, "prog.c").output


def test_gateway_http_statuses(fleet_factory) -> None:
    """Ordinary HTTP tooling sees meaningful statuses: 200 for ok
    frames, 400 for garbage, 404/405 on wrong routes."""
    fleet = fleet_factory(metrics_port=0)
    url = fleet.gateway_url

    frame = {"op": "ping", "id": 1}
    request = urllib.request.Request(
        f"{url}/v1/expand",
        data=json.dumps(frame).encode(),
        method="POST",
    )
    with urllib.request.urlopen(request) as response:
        assert response.status == 200
        assert json.loads(response.read())["ok"] is True

    bad = urllib.request.Request(
        f"{url}/v1/expand", data=b"not json", method="POST"
    )
    with pytest.raises(urllib.error.HTTPError) as err:
        urllib.request.urlopen(bad)
    assert err.value.code == 400

    wrong = urllib.request.Request(
        f"{url}/metrics", data=b"{}", method="POST"
    )
    with pytest.raises(urllib.error.HTTPError) as err:
        urllib.request.urlopen(wrong)
    assert err.value.code == 405


# ---------------------------------------------------------------------------
# Supervision: shard death is invisible to retrying clients
# ---------------------------------------------------------------------------


def _hammer(fleet: FleetHandle, stop: threading.Event, failures: list):
    source = CORPUS[0]
    expected = _local_expand(source, "prog0.c").output
    with fleet.client(retry=CHAOS_RETRY) as client:
        while not stop.is_set():
            try:
                result = client.expand(source, "prog0.c")
                if result.output != expected:
                    failures.append("output mismatch")
            except Exception as exc:  # noqa: BLE001 - recorded, asserted
                failures.append(repr(exc))


def test_shard_sigkill_mid_load_zero_client_failures(
    fleet_factory,
) -> None:
    """SIGKILL one shard while clients hammer the port: the
    supervisor restarts it, retries absorb the blip, zero failures
    surface, and the restart is visible in the supervisor's
    counters."""
    fleet = fleet_factory(prewarm=False)
    supervisor = fleet.supervisor
    assert supervisor is not None
    stop = threading.Event()
    failures: list[str] = []
    threads = [
        threading.Thread(
            target=_hammer, args=(fleet, stop, failures), daemon=True
        )
        for _ in range(3)
    ]
    for thread in threads:
        thread.start()
    try:
        time.sleep(0.5)  # get real load flowing
        victim = supervisor.shards[0]
        assert victim.proc is not None
        victim.proc.send_signal(signal.SIGKILL)
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if victim.restarts >= 1 and victim.alive():
                break
            time.sleep(0.1)
        assert victim.restarts >= 1, "supervisor never restarted shard"
        assert victim.alive(), "restarted shard is not running"
        time.sleep(1.0)  # keep load on the restarted fleet
    finally:
        stop.set()
        for thread in threads:
            thread.join(60)
    assert failures == [], failures
    assert supervisor.restarts_total >= 1


def test_injected_kill_fault_restarts_and_recovers(
    fleet_factory,
) -> None:
    """A ``kill`` fault (the repro.faults machinery, armed through
    ServeConfig) takes shards down mid-response; the fleet recovers
    and retrying clients never see a failure."""
    fleet = fleet_factory(
        prewarm=False,
        fault_specs=("server.frame_write@expand:1.0:kill:6:1",),
        fault_seed=7,
    )
    supervisor = fleet.supervisor
    assert supervisor is not None
    source = CORPUS[0]
    expected = _local_expand(source, "prog0.c").output
    with fleet.client(retry=CHAOS_RETRY) as client:
        # Each shard dies after its 6th expand response (and each
        # *restarted* shard re-arms the same plan), so this loop is
        # guaranteed to trip the fault; stop once it has.
        for _ in range(60):
            result = client.expand(source, "prog0.c")
            assert result.output == expected
            if supervisor.restarts_total >= 1:
                break
        assert supervisor.restarts_total >= 1, (
            "the armed kill fault never took a shard down"
        )
        # The fleet keeps answering correctly after the blip.
        assert client.expand(source, "prog0.c").output == expected


# ---------------------------------------------------------------------------
# Cross-shard observability
# ---------------------------------------------------------------------------


def test_fleet_metrics_and_statusz_aggregate(fleet_factory) -> None:
    fleet = fleet_factory(metrics_port=0)
    url = fleet.gateway_url
    with fleet.client() as client:
        for _ in range(6):
            client.expand(CORPUS[0], "prog0.c")

    with urllib.request.urlopen(f"{url}/metrics") as response:
        metrics = response.read().decode()
    assert "ms2_shards_alive 2" in metrics
    assert "ms2_shard_restarts_total" in metrics
    assert "ms2_requests_total" in metrics

    with urllib.request.urlopen(f"{url}/statusz") as response:
        payload = json.loads(response.read())
    assert payload["server"]["shards"] == 2
    assert payload["server"]["shards_alive"] == 2
    assert len(payload["shards"]) == 2
    # Fleet totals are at least what this test sent (>= per-shard by
    # construction: totals are the sum over the breakdown).
    fleet_requests = sum(payload["requests"].values())
    assert fleet_requests >= 6
    for shard_entry in payload["shards"]:
        assert shard_entry["requests_total"] <= fleet_requests

    with urllib.request.urlopen(f"{url}/healthz") as response:
        assert response.read() == b"ok\n"


def test_fleet_top_dashboard_shows_shard_breakdown(
    fleet_factory,
) -> None:
    from repro.top import render_dashboard

    fleet = fleet_factory(metrics_port=0)
    with Ms2Client(fleet.gateway_url) as client:
        client.expand(CORPUS[0], "prog0.c")
        payload = client.stats()
    text = render_dashboard(payload)
    assert "shards     2 reporting of 2 configured" in text
    assert "shard 0" in text
    assert "shard 1" in text


# ---------------------------------------------------------------------------
# Pure helpers
# ---------------------------------------------------------------------------


def test_shard_affinity_is_stable_and_in_range() -> None:
    options_hash = Ms2Options().options_hash()
    first = shard_for_options_hash(options_hash, 4)
    assert first == shard_for_options_hash(options_hash, 4)
    assert 0 <= first < 4
    assert shard_for_options_hash(options_hash, 1) == 0
    assert shard_for_options_hash(None, 4) == 0
    assert shard_for_options_hash("zzz", 4) == 0  # not hex: shard 0


def test_aggregate_stats_sums_and_merges() -> None:
    shard0 = {
        "uptime_s": 10.0,
        "requests": {"expand": 3, "ping": 1},
        "responses": {"ok": 4},
        "error_codes": {},
        "busy_rejections": 1,
        "in_flight": 1,
        "latency_ms": {
            "count": 2,
            "mean": 4.0,
            "buckets": {"5": 2, "+Inf": 0},
        },
        "expansion_cache": {"hits": 2, "misses": 2},
        "server": {"shard": 0, "pid": 11, "version": "x"},
        "workers": {"warm_hits": 2, "idle": {"k": 1}},
        "resilience": {"worker_restarts": 1},
        "faults": {"armed": False, "seed": None, "injected": {}},
        "disk_cache": {"dir": "/c", "hits": 1},
        "telemetry": {"event_log_records": 5},
    }
    shard1 = {
        "uptime_s": 8.0,
        "requests": {"expand": 5},
        "responses": {"ok": 5},
        "error_codes": {"busy": 1},
        "busy_rejections": 2,
        "in_flight": 0,
        "latency_ms": {
            "count": 4,
            "mean": 2.0,
            "buckets": {"5": 3, "+Inf": 1},
        },
        "expansion_cache": {"hits": 0, "misses": 4},
        "server": {"shard": 1, "pid": 12, "version": "x"},
        "workers": {"warm_hits": 4, "idle": {"k": 2}},
        "resilience": {"worker_restarts": 0},
        "faults": {"armed": True, "seed": 9, "injected": {"s": 2}},
        "disk_cache": {"hits": 2},
        "telemetry": {"event_log_records": 7},
    }
    merged = aggregate_stats([shard0, shard1])
    assert merged["uptime_s"] == 10.0
    assert merged["requests"] == {"expand": 8, "ping": 1}
    assert merged["busy_rejections"] == 3
    assert merged["in_flight"] == 1
    assert merged["latency_ms"]["count"] == 6
    # 2 * 4.0 + 4 * 2.0 = 16 over 6 observations, not mean-of-means.
    assert merged["latency_ms"]["mean"] == pytest.approx(16 / 6, abs=1e-3)
    assert merged["latency_ms"]["buckets"] == {"5": 5, "+Inf": 1}
    assert merged["expansion_cache"]["hits"] == 2
    assert merged["expansion_cache"]["hit_rate"] == pytest.approx(0.25)
    assert merged["faults"]["armed"] is True
    assert merged["faults"]["seed"] == 9
    assert merged["faults"]["injected"] == {"s": 2}
    assert merged["telemetry"]["event_log_records"] == 12
    assert [entry["shard"] for entry in merged["shards"]] == [0, 1]


def test_load_tiers_on_an_unstarted_server(tmp_path) -> None:
    """The tiered admission thresholds, driven directly."""
    from repro.server import Ms2Server

    server = Ms2Server(
        Ms2Options(),
        socket_path=tmp_path / "unused.sock",
        max_inflight=2,
        queue_limit=4,
    )
    assert server.shed_threshold() == 2 + (4 + 1) // 2
    assert server.load_tier() == "accept"
    server._active = server.shed_threshold()
    assert server.load_tier() == "shed_expensive"
    server._active = 2 + 4
    assert server.load_tier() == "busy"
    server._active = 0
    assert server.load_tier() == "accept"
    # expand_file is always expensive; expand is expensive only when
    # no warm worker is idle for its pool key.
    assert server._is_expensive({"op": "expand_file", "path": "x.c"})
    assert server._is_expensive({"op": "expand", "source": ""}) is True
    server._executor.shutdown(wait=False)
